PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast properties lint ruff bench obs-bench server-smoke crash-sim replication-sim sharding-sim exhaustion-sim recovery-sim fsck-smoke audit all

all: test lint

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q --ignore=tests/properties

properties:
	$(PYTHON) -m pytest -x -q tests/properties

# static analysis over everything we ship: the stdlib and every example
lint:
	$(PYTHON) -m repro lint --stdlib
	@set -e; for f in examples/*.tl; do \
		echo "lint $$f"; \
		$(PYTHON) -m repro lint $$f; \
	done

# ruff is optional tooling; the config lives in pyproject.toml
ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (config in pyproject.toml)"; \
	fi

# boot the daemon as a subprocess and drive it with concurrent clients
# (transactional commits, code-cache hits, one PGO round, graceful shutdown);
# scratch outputs land in the ignored artifacts/ directory
server-smoke:
	$(PYTHON) scripts/server_smoke.py --image artifacts/server-smoke.tyc --trace artifacts/server-smoke-trace.ndjson

# exhaustive crash-point sweep: simulate power loss at every I/O operation
# of a multi-commit workload, in four failure models, and require recovery
# to an adjacent commit's state every time (see docs/durability.md)
crash-sim:
	$(PYTHON) scripts/crash_sim.py --json crash-sim-report.json

# replication chaos sweep: link faults, kill/restart of both roles and
# sync-replicated failover across a primary + 2 replicas; asserts no acked
# write lost, convergence to the primary's fsck-clean state, and a single
# highest-term primary (see docs/replication.md)
replication-sim:
	$(PYTHON) scripts/replication_sim.py --json replication-sim-report.json

# sharding chaos sweep: coordinator-link faults, shard failover and
# coordinator failpoint crashes inside the 2PC commit window across two
# shard groups; asserts no acked cross-shard write lost or half-applied
# and no staging/decision residue (see docs/sharding.md)
sharding-sim:
	$(PYTHON) scripts/sharding_sim.py --json sharding-sim-report.json

# resource-exhaustion chaos sweep: ENOSPC/EDQUOT/EIO write and fsync
# failures (one-shot and persistent) against a live multi-session daemon,
# plus memory-ceiling and open-loop-overload scenarios; asserts the daemon
# never dies, reads keep answering, degraded read-only mode is entered and
# auto-recovered, and no acked write is lost (see docs/durability.md)
exhaustion-sim:
	$(PYTHON) scripts/exhaustion_sim.py --json exhaustion-sim-report.json

# disaster-recovery sweep: full + incremental backups under write traffic,
# point-in-time restore past a poison commit, bit rot caught by the scrub
# and healed by anti-entropy repair, crashes injected mid-backup and
# mid-restore; then the negative control — archiving without fsync MUST
# lose a restore point (see docs/recovery.md)
recovery-sim:
	$(PYTHON) scripts/recovery_sim.py --json recovery-sim-report.json
	! $(PYTHON) scripts/recovery_sim.py --negative-control

# integrity-check the image the server smoke test leaves behind
fsck-smoke: server-smoke
	$(PYTHON) -m repro fsck artifacts/server-smoke.tyc --json fsck-report.json -v

# whole-image semantic audit of the server-smoke image: verify + abstractly
# interpret every stored code object over the call graph and refresh the
# persisted analysis-fact cache (see docs/analysis.md); then the negative
# control — a bit-flipped stored opcode must turn the audit red
audit: server-smoke
	$(PYTHON) -m repro audit artifacts/server-smoke.tyc --json audit-report.json -v
	$(PYTHON) scripts/audit_negative_control.py --json audit-negative-control.json

# experiment benchmarks, then the machine-readable artifacts
# (BENCH_vm.json / BENCH_opt.json / BENCH_server.json / BENCH_shard.json /
# BENCH_analysis.json / BENCH_obs.json / BENCH_recovery.json, schema docs
# in docs/observability.md, docs/analysis.md, docs/sharding.md and
# docs/recovery.md)
bench:
	$(PYTHON) -m pytest benchmarks -q
	$(PYTHON) -m repro bench --scale 0.3 --artifacts .
	$(PYTHON) scripts/server_bench.py --json BENCH_server.json
	$(PYTHON) scripts/shard_bench.py --json BENCH_shard.json
	$(PYTHON) scripts/analysis_bench.py --json BENCH_analysis.json
	$(PYTHON) scripts/obs_bench.py --json BENCH_obs.json
	$(PYTHON) scripts/recovery_bench.py --json BENCH_recovery.json

# the observability gate on its own: fails when always-on metrics cost
# more than 5% over metrics-disabled (see docs/observability.md)
obs-bench:
	$(PYTHON) scripts/obs_bench.py --json BENCH_obs.json
