"""The paper's section 4.1 example, end to end: reflect.optimize(abs).

Run:  python examples/reflective_optimization.py

A module `complex` exports a hidden record type and accessor functions; a
separately compiled function `abs` uses them through the module interface.
Statically, the implementation behind the interface is invisible — the
abstraction barrier.  At runtime all bindings exist, so the reflective
optimizer can collect every contributing declaration into one scope,
re-optimize, and produce `optimizedAbs`, equivalent to

    let optimizedAbs(c : complex.T) : Real = sqrt(c.x*c.x + c.y*c.y)

exactly as printed in the paper.
"""

from repro import TycoonSystem, pretty, reflect

COMPLEX_SRC = """
module complex export T new x y
-- the representation of T is an implementation detail of this module
type T = tuple x: Int, y: Int end
let new(a: Int, b: Int): T = tuple x = a, y = b end
let x(c: T): Int = c.x
let y(c: T): Int = c.y
end
"""

APP_SRC = """
module app export abs
import complex
let abs(c: complex.T): Int =
  sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end
"""


def main() -> None:
    system = TycoonSystem()
    system.compile(COMPLEX_SRC)
    system.compile(APP_SRC)

    point = system.call("complex", "new", [3, 4]).value
    print(f"complex.new(3, 4) = {point}")

    slow = system.call("app", "abs", [point])
    print(f"abs(c) = {slow.value}   [{slow.instructions} instructions]")

    # let optimizedAbs = reflect.optimize(abs)
    result = reflect.optimize_result(system, "app", "abs")
    optimized_abs = result.closure

    print(
        f"\ncollected {result.entities} declarations across 2 modules "
        f"and the standard library"
    )
    print("--- optimizedAbs (TML) ---")
    print(pretty(result.term))

    fast = system.vm().call(optimized_abs, [point])
    print(
        f"\noptimizedAbs(c) = {fast.value}   [{fast.instructions} instructions, "
        f"was {slow.instructions}]"
    )
    assert fast.value == slow.value == 5

    # the derived attributes the optimizer persists (section 4.1)
    attrs = reflect.record_attributes(
        system.heap, "app.abs", reflect.DYNAMIC_CONFIG, result
    )
    print(
        f"\npersisted derived attributes: cost {attrs.cost_before} -> "
        f"{attrs.cost_after} (savings {attrs.savings}), "
        f"code size {attrs.code_size} instructions"
    )


if __name__ == "__main__":
    main()
