"""Code shipping between store images (paper section 6 outlook).

Run:  python examples/code_shipping.py

The paper closes by pointing at "code shipping in distributed systems
[Mathiske et al. 1995]" as another application of uniform persistent code.
This example plays it out: a procedure compiled in image A is shipped — as
its PTML, the mobile representation — to image B, which re-optimizes it
against *its own* runtime bindings (a different, indexed relation) before
executing it.  The same code runs with a full scan in A and an index scan
in B.
"""

from repro import TycoonSystem, pretty
from repro.query import Relation, optimize_query_function
from repro.reflect.reach import term_of_closure
from repro.store.heap import ObjectHeap
from repro.store.ptml import decode_ptml, encode_ptml

SOURCE = """
module finder export by_key
import db
type Row = tuple key: Int, payload: Int end
let by_key(k: Int) =
  select r from db.data as r : Row where r.key == k end
end
"""


def build_image(name: str, n: int, indexed: bool):
    heap = ObjectHeap()
    system = TycoonSystem(heap=heap)
    data = Relation("data", ["key", "payload"])
    for i in range(n):
        data.insert((i, i * 11))
    if indexed:
        data.create_index("key")
    heap.store(data)
    system.register_data_module("db", {"data": data})
    print(f"image {name}: {n} rows, index={'yes' if indexed else 'no'}")
    return system, data


def main() -> None:
    # image A: small, unindexed; the code's birthplace
    system_a, _ = build_image("A", 500, indexed=False)
    system_a.compile(SOURCE)
    result_a = system_a.call("finder", "by_key", [42])
    print(f"  A runs by_key(42) with a scan: {result_a.instructions} instructions")

    # ship: PTML is the wire format for code
    closure = system_a.closure("finder", "by_key")
    term = term_of_closure(closure, system_a.heap)
    wire = encode_ptml(term)
    print(f"\nshipping finder.by_key as PTML: {len(wire.data)} bytes\n")

    # image B: large, indexed; receives and re-optimizes against local bindings
    system_b, data_b = build_image("B", 50_000, indexed=True)
    received = decode_ptml(wire)
    assert received.term == term  # byte-exact code mobility

    system_b.compile(SOURCE)  # (re-link the shipped term against B's bindings)
    optimized = optimize_query_function(system_b, "finder", "by_key")
    print(
        f"  B re-optimizes against its own store: index-select fired "
        f"{optimized.query_stats.count('index-select')}x"
    )
    print("  B's plan: " + pretty(optimized.term).split("\n")[1].strip())

    result_b = system_b.vm().call(optimized.closure, [42])
    print(
        f"  B runs by_key(42) via the index: {result_b.instructions} instructions "
        f"(A needed {result_a.instructions} on a store 100x smaller)"
    )
    assert result_b.value.to_tuples() == [(42, 462)]


if __name__ == "__main__":
    main()
