"""Quickstart: compile TL, run it, inspect TML, optimize reflectively.

Run:  python examples/quickstart.py

Walks the core loop of the paper in five steps:
1. compile a TL module (checker → CPS → TML → static optimizer → TAM code);
2. execute it on the VM;
3. look at the persistent intermediate representation (TML / PTML);
4. dissolve the abstraction barriers at runtime with reflect.optimize;
5. compare the executed instruction counts.
"""

from repro import TycoonSystem, pretty, reflect
from repro.reflect.reach import term_of_closure

SOURCE = """
module demo export sumsq
-- sum of squares 1..n; every operator is a dynamically bound library call
let sumsq(n: Int): Int =
  var acc := 0 in
  begin
    for i = 1 upto n do acc := acc + i * i end;
    acc
  end
end
"""


def main() -> None:
    # 1. one persistent programming environment: compiler + store + VM
    system = TycoonSystem()
    system.compile(SOURCE)

    # 2. link and execute
    slow = system.call("demo", "sumsq", [100])
    print(f"sumsq(100) = {slow.value}   [{slow.instructions} TAM instructions]")

    # 3. the persistent intermediate representation is attached to the code
    closure = system.closure("demo", "sumsq")
    term = term_of_closure(closure, system.heap)
    print("\n--- TML for demo.sumsq (decoded from PTML) ---")
    print(pretty(term))

    # 4. runtime optimization across the library abstraction barrier
    result = reflect.optimize_result(system, "demo", "sumsq")
    print(
        f"\nreflect.optimize: {result.entities} declarations collected, "
        f"estimated cost {result.cost_before} -> {result.cost_after}"
    )

    # 5. same answer, far fewer instructions
    fast = system.vm().call(result.closure, [100])
    print(
        f"optimized sumsq(100) = {fast.value}   "
        f"[{fast.instructions} instructions, "
        f"{slow.instructions / fast.instructions:.1f}x fewer]"
    )
    assert fast.value == slow.value == 338350


if __name__ == "__main__":
    main()
