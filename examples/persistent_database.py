"""A persistent database application across sessions.

Run:  python examples/persistent_database.py [store-file]

Shows the full open-database-environment story on one store file:

* session 1 creates relations and indexes, compiles and persists the
  application module (code, PTML and data live in the same store);
* session 2 reopens the image cold: loads the module, runs queries,
  reflectively re-optimizes them against the store's indexes, and persists
  the optimizer's derived attributes;
* session 3 demonstrates durability of all three kinds of state — data,
  code, and optimization metadata.
"""

import os
import sys
import tempfile

from repro import TycoonSystem
from repro.query import Relation, optimize_query_function
from repro.reflect import DYNAMIC_CONFIG, load_attributes, record_attributes
from repro.store.heap import ObjectHeap, Transaction

APP_SRC = """
module library export overdue by_member
import db
type Loan = tuple member: Int, title: String, days: Int end
let overdue(limit: Int) =
  select l from db.loans as l : Loan where l.days > limit end
let by_member(m: Int) =
  select l from db.loans as l : Loan where l.member == m end
end
"""


def session_one(path: str) -> None:
    print("— session 1: create data, compile and persist the application")
    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)

    loans = Relation("loans", ["member", "title", "days"])
    for i in range(2000):
        loans.insert((i % 97, f"book-{i}", (i * 13) % 60))
    loans.create_index("member")
    with Transaction(heap):
        oid = heap.store(loans)
        heap.set_root("data:loans", oid)
        system.register_data_module("db", {"loans": loans})
        system.compile(APP_SRC)
        system.persist("library")
    print(f"  stored {len(loans)} loans (indexed on member) and module 'library'")
    heap.close()


def session_two(path: str) -> None:
    print("— session 2: cold start, query, re-optimize against the live index")
    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)
    loans = heap.load_root("data:loans")
    system.register_data_module("db", {"loans": loans})
    system.load("library")

    slow = system.call("library", "by_member", [42])
    print(f"  by_member(42): {len(slow.value)} loans, "
          f"{slow.instructions} instructions (full scan)")

    result = optimize_query_function(system, "library", "by_member")
    fast = system.vm().call(result.closure, [42])
    assert fast.value.to_tuples() == slow.value.to_tuples()
    print(f"  after runtime optimization: {fast.instructions} instructions "
          f"(index-select fired {result.query_stats.count('index-select')}x)")

    with Transaction(heap):
        attrs = record_attributes(heap, "library.by_member", DYNAMIC_CONFIG, result)
    print(f"  persisted derived attributes: savings {attrs.savings}")
    heap.close()


def session_three(path: str) -> None:
    print("— session 3: everything survived")
    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)
    loans = heap.load_root("data:loans")
    system.register_data_module("db", {"loans": loans})
    system.load("library")

    overdue = system.call("library", "overdue", [55])
    print(f"  overdue(55): {len(overdue.value)} loans")

    attrs = load_attributes(heap, "library.by_member", DYNAMIC_CONFIG)
    assert attrs is not None
    print(f"  optimizer metadata from session 2: cost {attrs.cost_before} -> "
          f"{attrs.cost_after}")
    heap.close()


def main() -> None:
    if len(sys.argv) > 1:
        path = sys.argv[1]
        cleanup = False
    else:
        path = os.path.join(tempfile.mkdtemp(), "library.tyc")
        cleanup = True
    print(f"store image: {path}\n")
    session_one(path)
    session_two(path)
    session_three(path)
    if cleanup:
        os.remove(path)
    print("\nOK")


if __name__ == "__main__":
    main()
