"""Integrated program and query optimization (paper section 4.2).

Run:  python examples/embedded_queries.py

Builds a small employee database in the persistent store, compiles TL code
with *embedded declarative queries* (programming-language expressions in the
where-clause, correlation variables, nested queries), and shows the three
§4.2 rewrites firing against runtime bindings:

* merge-select  — σp(σq(R)) → σp∧q(R): one scan, no temporary relation;
* index-select  — equality predicate + runtime index → indexscan;
* trivial-exists — range-variable-free predicate → O(1) emptiness test.
"""

from repro import TycoonSystem, pretty
from repro.query import Relation, optimize_query_function
from repro.store.heap import ObjectHeap

SOURCE = """
module payroll export wellpaid_seniors by_badge any_budget
import db
type Emp = tuple badge: Int, name: String, age: Int, salary: Int end

-- nested queries: the classic merge-select shape
let wellpaid_seniors() =
  select e from
    (select p from db.emps as p : Emp where p.salary >= 5000 end)
    as e : Emp
  where e.age >= 60 end

-- equality on an indexed field: becomes an index scan at runtime
let by_badge(k: Int) =
  select e from db.emps as e : Emp where e.badge == k end

-- the quantified predicate never mentions e: trivial-exists
let any_budget(budget: Int): Bool =
  exists e : Emp in db.emps : budget > 100000
end
"""


def main() -> None:
    heap = ObjectHeap()
    system = TycoonSystem(heap=heap)

    emps = Relation("emps", ["badge", "name", "age", "salary"])
    for i in range(5000):
        emps.insert((i, f"emp{i}", 20 + (i * 13) % 50, 3000 + (i * 7) % 4000))
    emps.create_index("badge")
    heap.store(emps)
    system.register_data_module("db", {"emps": emps})
    system.compile(SOURCE)

    print(f"database: {len(emps)} employees, index on 'badge'\n")

    # --- merge-select -----------------------------------------------------
    slow = system.call("payroll", "wellpaid_seniors", [])
    merged = optimize_query_function(system, "payroll", "wellpaid_seniors")
    fast = system.vm().call(merged.closure, [])
    assert slow.value.to_tuples() == fast.value.to_tuples()
    print(
        f"merge-select fired {merged.query_stats.count('merge-select')}x: "
        f"{len(fast.value)} wellpaid seniors, one scan, no temporary relation"
    )

    # --- index-select ------------------------------------------------------
    point = optimize_query_function(system, "payroll", "by_badge")
    print(
        f"index-select fired {point.query_stats.count('index-select')}x; "
        "optimized plan:"
    )
    print("  " + pretty(point.term).replace("\n", "\n  "))
    slow_point = system.call("payroll", "by_badge", [4321])
    fast_point = system.vm().call(point.closure, [4321])
    assert slow_point.value.to_tuples() == fast_point.value.to_tuples()
    print(
        f"  by_badge(4321): {slow_point.instructions} -> "
        f"{fast_point.instructions} instructions\n"
    )

    # --- trivial-exists -----------------------------------------------------
    exists_q = optimize_query_function(system, "payroll", "any_budget")
    slow_e = system.call("payroll", "any_budget", [50_000])
    fast_e = system.vm().call(exists_q.closure, [50_000])
    assert slow_e.value is fast_e.value is False
    print(
        f"trivial-exists fired {exists_q.query_stats.count('trivial-exists')}x: "
        f"any_budget scans 0 rows instead of {len(emps)} "
        f"({slow_e.instructions} -> {fast_e.instructions} instructions)"
    )


if __name__ == "__main__":
    main()
