"""Reproduce the paper's section 6 experiment at full scale.

Run:  python examples/stanford_suite.py [scale]

Compiles the Stanford suite three ways — unoptimized, statically (locally)
optimized, and dynamically (reflectively) optimized — and prints the paper's
table: per-program times and the geometric-mean speedups.

Expected shape (the paper's claims):
* static/local optimization: no significant speedup (~1.0-1.2x), because
  integer and array operations live in dynamically bound libraries;
* dynamic optimization: more than doubles execution speed (>= 2x geomean).
"""

import sys

from repro.bench.harness import format_table, run_stanford


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"running the Stanford suite (scale={scale}) ...\n")
    rows = run_stanford(scale=scale, repeats=3)
    print(format_table(rows))


if __name__ == "__main__":
    main()
