"""On-disk format versions and the v1 → v2 migration.

Format v1 (magic ``TYC1``, PRs 0–3): a single unchecksummed header at
offset 0 (``<4sIQQQQQ``), data pages with an 8-byte next-link and no
checksum trailer, and a free list threaded *through* the free pages
themselves.  Format v2 (magic ``TYC2``, :mod:`repro.store.pager`) adds
per-page checksums, dual header slots with a commit epoch, and a
shadow-paged free-list record.

Because v2 pages carry a checksum trailer (different chain capacity) and
the header moved, v1 images cannot be upgraded page-by-page.  Instead
:func:`migrate_v1_image` replays the image *logically*: it walks the v1
object table, lifts every object's serialized payload, and writes a fresh
v2 image with identical OIDs, roots and payload bytes.  The rewrite lands
in a temp file and is published with ``os.replace``, so a crash mid-way
leaves the original v1 image untouched.

``Pager`` calls this automatically when it opens a ``TYC1`` file (see
``Pager(..., migrate=...)``); ``python -m repro fsck`` reports the format
version either way.
"""

from __future__ import annotations

import os
import struct

from repro.store.serialize import Decoder, Encoder

__all__ = ["V1Image", "read_v1_image", "migrate_v1_image"]

MAGIC_V1 = b"TYC1"
_V1_HEADER_FMT = "<4sIQQQQQ"
_V1_HEADER_SIZE = struct.calcsize(_V1_HEADER_FMT)
_V1_CHAIN_LINK = 8


class V1Image:
    """The logical content of a format-v1 image, lifted off its pages."""

    def __init__(self, page_size: int, oid_counter: int):
        self.page_size = page_size
        self.oid_counter = oid_counter
        #: oid -> serialized payload bytes
        self.objects: dict[int, bytes] = {}
        #: root name -> oid
        self.roots: dict[str, int] = {}


def _v1_read_chain(data: bytes, page_size: int, head: int, length: int) -> bytes:
    """Read a v1 page chain from the raw file bytes (bounded, cycle-safe)."""
    from repro.store.pager import PageError

    npages = len(data) // page_size
    capacity = page_size - _V1_CHAIN_LINK
    out = bytearray()
    page_id = head
    remaining = length
    visited: set[int] = set()
    while remaining > 0:
        if not 1 <= page_id < npages:
            raise PageError(f"v1 chain page {page_id} out of range")
        if page_id in visited:
            raise PageError(f"v1 chain cycle at page {page_id}")
        visited.add(page_id)
        raw = data[page_id * page_size : (page_id + 1) * page_size]
        (next_id,) = struct.unpack("<Q", raw[:_V1_CHAIN_LINK])
        take = min(remaining, capacity)
        out += raw[_V1_CHAIN_LINK : _V1_CHAIN_LINK + take]
        remaining -= take
        page_id = next_id
    return bytes(out)


def read_v1_image(path: str | os.PathLike) -> V1Image:
    """Lift a v1 image's objects and roots into memory."""
    from repro.store.pager import PageError

    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _V1_HEADER_SIZE or data[:4] != MAGIC_V1:
        raise PageError(f"{os.fspath(path)!r} is not a format v1 image")
    _, page_size, npages, _free_head, table_page, table_len, oid_counter = (
        struct.unpack(_V1_HEADER_FMT, data[:_V1_HEADER_SIZE])
    )
    if page_size == 0 or npages < 1 or table_page >= max(npages, 1):
        raise PageError("corrupt v1 header")
    image = V1Image(page_size=page_size, oid_counter=max(oid_counter, 1))
    if not table_page:
        return image
    table_raw = _v1_read_chain(data, page_size, table_page, table_len)
    decoder = Decoder(table_raw)
    count = decoder.uvarint()
    entries: list[tuple[int, int, int]] = []
    for _ in range(count):
        oid = decoder.uvarint()
        head = decoder.uvarint()
        length = decoder.uvarint()
        entries.append((oid, head, length))
    nroots = decoder.uvarint()
    for _ in range(nroots):
        name = decoder.text()
        image.roots[name] = decoder.uvarint()
    for oid, head, length in entries:
        image.objects[oid] = _v1_read_chain(data, page_size, head, length)
    return image


def migrate_v1_image(
    path: str | os.PathLike, checksum: str | None = None
) -> dict:
    """Rewrite a v1 image as v2 in place (atomic ``os.replace`` publish).

    OIDs, roots and serialized payloads are preserved byte-for-byte; only
    the page framing changes.  Returns a summary dict for logs/fsck.
    """
    from repro.store.pager import MIN_PAGE_SIZE, Pager

    path = os.fspath(path)
    image = read_v1_image(path)
    page_size = max(image.page_size, MIN_PAGE_SIZE)
    tmp = path + ".migrate"
    if os.path.exists(tmp):
        os.remove(tmp)
    pager = Pager(tmp, page_size, checksum=checksum)
    try:
        table = Encoder()
        table.uvarint(len(image.objects))
        for oid, payload in image.objects.items():
            head = pager.write_chain(payload)
            table.uvarint(oid)
            table.uvarint(head)
            table.uvarint(len(payload))
        table.uvarint(len(image.roots))
        for name, oid in image.roots.items():
            table.text(name)
            table.uvarint(oid)
        raw = table.getvalue()
        pager.header.table_page = pager.write_chain(raw)
        pager.header.table_len = len(raw)
        pager.header.oid_counter = image.oid_counter
        pager.sync_header()
    finally:
        pager.close()
    os.replace(tmp, path)
    return {
        "path": path,
        "from_format": 1,
        "to_format": 2,
        "objects": len(image.objects),
        "roots": len(image.roots),
        "page_size": page_size,
    }
