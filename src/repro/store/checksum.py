"""Page checksums for the v2 store format.

Every page (and each header slot) carries a 4-byte checksum trailer so a
flipped bit or a torn write is detected at *read* time as a structured
:class:`~repro.store.pager.PageError` instead of a garbage decode further
up the stack.  Two algorithms are supported and the image header records
which one it uses, so images stay portable across hosts:

* ``crc32`` — zlib's C-accelerated CRC-32 (IEEE polynomial).  The default:
  it costs nanoseconds per page and every CPython ships it.
* ``crc32c`` — CRC-32C (Castagnoli), the polynomial used by iSCSI, ext4
  and SSE4.2 hardware.  Uses the optional ``crc32c`` extension module when
  installed; otherwise a table-driven pure-Python fallback (correct but
  slower, so it is opt-in rather than the default).

Both detect all single-bit flips and all burst errors up to 32 bits, which
is the failure model the store defends against (media bit rot, torn sector
writes); the choice is recorded per image, not guessed.
"""

from __future__ import annotations

import zlib
from typing import Callable

__all__ = [
    "CHECKSUM_KINDS",
    "KIND_IDS",
    "checksum_fn",
    "kind_name",
    "crc32",
    "crc32c",
]

_CRC32C_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _build_crc32c_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_crc32c_table()


def _crc32c_pure(data: bytes, value: int = 0) -> int:
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # the C extension, when the host happens to have it
    import crc32c as _crc32c_mod

    def crc32c(data: bytes, value: int = 0) -> int:
        return _crc32c_mod.crc32c(data, value)

except ImportError:  # pragma: no cover - depends on host packages
    crc32c = _crc32c_pure


def crc32(data: bytes, value: int = 0) -> int:
    return zlib.crc32(data, value) & 0xFFFFFFFF


#: kind name -> (wire id, function); ids are persisted in header slots
CHECKSUM_KINDS: dict[str, tuple[int, Callable[[bytes], int]]] = {
    "crc32": (1, crc32),
    "crc32c": (2, crc32c),
}

#: wire id -> kind name
KIND_IDS: dict[int, str] = {wire: name for name, (wire, _) in CHECKSUM_KINDS.items()}


def checksum_fn(kind: str) -> Callable[[bytes], int]:
    """The checksum function for a kind name (raises ``KeyError`` if unknown)."""
    return CHECKSUM_KINDS[kind][1]


def kind_name(wire_id: int) -> str | None:
    """Kind name for a persisted wire id, or None if unsupported."""
    return KIND_IDS.get(wire_id)
