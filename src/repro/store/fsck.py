"""Offline integrity checking and repair — ``python -m repro fsck``.

:func:`fsck_image` walks every structure of a store image and reports
findings at three severities:

* **error** — integrity is violated: an invalid header slot pair, a page
  failing its checksum, an undecodable payload, a dangling OID reference,
  a root naming a missing object, a page claimed both free and in use, or
  an unreadable free-list record;
* **warn** — suspicious but safe: a torn (invalid, non-empty) header
  slot that dual-header recovery routed around, or an intact object no
  root can reach;
* **info** — bookkeeping: leaked pages (unreferenced and not on the free
  list — the expected residue of a crash between the two header syncs of
  a commit), format/geometry facts.

With ``repair=True`` the image is rewritten in place:

* corrupt objects are **quarantined** — removed from the object table and
  recorded (OID → reason) in a ``__fsck_quarantine__`` root, so intact
  objects are never lost and the damage stays diagnosable;
* roots that named a corrupt object are detached (and recorded);
* unreachable-but-intact objects are kept and listed in the quarantine
  record, which *makes* them reachable for later triage;
* the free list is rebuilt from scratch (every page that no live chain
  references becomes free), clearing leaks and free/in-use conflicts;
* a fresh table and header are committed through the normal dual-slot
  protocol, which also overwrites any torn header slot.

Format v1 images are checked logically (via :mod:`repro.store.format`)
and left untouched unless ``repair=True``, which migrates them to v2
first.  The crash harness (:mod:`repro.store.crashsim`) runs fsck over
every post-crash image and requires zero errors.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any

from repro.core.syntax import Oid
from repro.obs.metrics import METRICS
from repro.store.pager import (
    DEFAULT_PAGE_SIZE,
    MAGIC_V1,
    PageError,
    Pager,
)
from repro.store.serialize import Decoder, Encoder, decode_value, encode_value

__all__ = ["Finding", "FsckResult", "fsck_image", "QUARANTINE_ROOT"]

_FSCK_RUNS = METRICS.counter("store.fsck.runs", "fsck invocations")
_FSCK_ERRORS = METRICS.counter("store.fsck.errors_found", "error findings")
_FSCK_QUARANTINED = METRICS.counter(
    "store.fsck.objects_quarantined", "objects quarantined by --repair"
)
_FSCK_PAGES_RECLAIMED = METRICS.counter(
    "store.fsck.pages_reclaimed", "leaked pages returned to the free list"
)

QUARANTINE_ROOT = "__fsck_quarantine__"


@dataclass(slots=True)
class Finding:
    severity: str  # "error" | "warn" | "info"
    code: str  # stable machine-readable kind, e.g. "checksum-mismatch"
    message: str
    page: int | None = None
    oid: int | None = None

    def as_dict(self) -> dict:
        out = {"severity": self.severity, "code": self.code, "message": self.message}
        if self.page is not None:
            out["page"] = self.page
        if self.oid is not None:
            out["oid"] = self.oid
        return out


@dataclass
class FsckResult:
    path: str
    format: int | None = None
    findings: list[Finding] = field(default_factory=list)
    objects_checked: int = 0
    pages_referenced: int = 0
    leaked_pages: list[int] = field(default_factory=list)
    repaired: bool = False
    quarantined: dict[int, str] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, code: str, message: str, **kw) -> None:
        self.findings.append(Finding(severity, code, message, **kw))
        if severity == "error":
            _FSCK_ERRORS.inc()

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "format": self.format,
            "objects_checked": self.objects_checked,
            "pages_referenced": self.pages_referenced,
            "leaked_pages": len(self.leaked_pages),
            "repaired": self.repaired,
            "quarantined": {str(k): v for k, v in self.quarantined.items()},
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.as_dict() for f in self.findings],
        }


def _collect_refs(obj: Any, refs: set[int], seen: set[int]) -> None:
    """Find every :class:`Oid` inside a decoded object graph.

    The decoder's resolver hook catches most references, but some decode
    paths deliberately bypass it (``CodeObject.ptml_ref`` stays a lazy
    reference), so reachability needs this structural walk as well.
    """
    if isinstance(obj, Oid):
        refs.add(obj.value)
        return
    if isinstance(obj, (str, bytes, int, float, bool, type(None))):
        return
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, dict):
        for key, value in obj.items():
            _collect_refs(key, refs, seen)
            _collect_refs(value, refs, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            _collect_refs(value, refs, seen)
    elif dataclasses.is_dataclass(obj):
        for f in dataclasses.fields(obj):
            _collect_refs(getattr(obj, f.name, None), refs, seen)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs:
            for value in attrs.values():
                _collect_refs(value, refs, seen)


def _fsck_v1(path: str, result: FsckResult, repair: bool) -> FsckResult:
    from repro.store.format import migrate_v1_image, read_v1_image

    result.format = 1
    try:
        image = read_v1_image(path)
    except Exception as exc:
        result.add("error", "v1-unreadable", f"format v1 image unreadable: {exc}")
        return result
    result.objects_checked = len(image.objects)
    result.add(
        "info",
        "format-v1",
        f"format v1 image ({len(image.objects)} objects, "
        f"{len(image.roots)} roots); opens migrate it to v2",
    )
    for oid, payload in image.objects.items():
        try:
            decode_value(payload, resolver=lambda ref: ref)
        except Exception as exc:
            result.add(
                "error", "undecodable", f"oid {oid} does not decode: {exc}", oid=oid
            )
    if repair and result.ok:
        summary = migrate_v1_image(path)
        result.repaired = True
        result.add(
            "info", "migrated", f"migrated to format v2 ({summary['objects']} objects)"
        )
    return result


def fsck_image(
    path: str | os.PathLike,
    page_size: int = DEFAULT_PAGE_SIZE,
    repair: bool = False,
) -> FsckResult:
    """Check (and optionally repair) a store image; see module docstring."""
    _FSCK_RUNS.inc()
    path = os.fspath(path)
    result = FsckResult(path=path)
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        result.add("error", "missing", f"no such image: {path}")
        return result
    with open(path, "rb") as fh:
        magic = fh.read(4)
    if magic == MAGIC_V1:
        return _fsck_v1(path, result, repair)

    try:
        pager = Pager(path, page_size, migrate=False)
    except PageError as exc:
        result.add("error", "unopenable", f"image does not open: {exc}")
        return result
    try:
        return _fsck_v2(pager, result, repair)
    finally:
        pager.close()


def _fsck_v2(pager: Pager, result: FsckResult, repair: bool) -> FsckResult:
    header = pager.header
    result.format = 2
    result.add(
        "info",
        "geometry",
        f"format v2, page_size={header.page_size}, npages={header.npages}, "
        f"epoch={header.epoch}, checksum={header.checksum_kind}",
    )

    # --- header slots -----------------------------------------------------
    for slot, (slot_header, err) in enumerate(pager.slot_status):
        if slot_header is None:
            result.add(
                "warn",
                "torn-header-slot",
                f"header slot {slot} invalid ({err}); recovered via the other slot",
            )
    if pager.free_list_error is not None:
        result.add(
            "error",
            "free-list-unreadable",
            f"free-list record unreadable: {pager.free_list_error}; "
            "its pages leak until repaired",
        )

    # --- object table -----------------------------------------------------
    table: dict[int, tuple[int, int]] = {}
    roots: dict[str, int] = {}
    referenced: set[int] = set()
    if header.free_page and pager.free_list_error is None:
        referenced.update(pager.chain_pages(header.free_page, header.free_len))
    if header.table_page:
        try:
            table_pages = pager.chain_pages(header.table_page, header.table_len)
            raw = pager.read_chain(header.table_page, header.table_len)
            decoder = Decoder(raw)
            for _ in range(decoder.uvarint()):
                oid = decoder.uvarint()
                head = decoder.uvarint()
                length = decoder.uvarint()
                table[oid] = (head, length)
            for _ in range(decoder.uvarint()):
                name = decoder.text()
                roots[name] = decoder.uvarint()
            referenced.update(table_pages)
        except Exception as exc:
            result.add(
                "error",
                "table-unreadable",
                f"object table unreadable: {exc}; object walk impossible",
                page=header.table_page,
            )
            return result

    # --- objects: chains, checksums, payload decode, references -----------
    corrupt: dict[int, str] = {}
    outrefs: dict[int, set[int]] = {}
    chain_pages: dict[int, list[int]] = {}
    for oid, (head, length) in sorted(table.items()):
        result.objects_checked += 1
        try:
            pages = pager.chain_pages(head, length)
        except PageError as exc:
            corrupt[oid] = f"chain unreadable: {exc}"
            result.add("error", "chain-corrupt", f"oid {oid}: {exc}", oid=oid)
            continue
        overlap = referenced.intersection(pages)
        if overlap:
            corrupt[oid] = f"chain shares pages {sorted(overlap)} with another record"
            result.add(
                "error",
                "chain-overlap",
                f"oid {oid}: {corrupt[oid]}",
                oid=oid,
                page=min(overlap),
            )
            continue
        chain_pages[oid] = pages
        referenced.update(pages)
        try:
            raw = pager.read_chain(head, length)
            refs: set[int] = set()

            def _record(ref: Oid, _refs=refs) -> Oid:
                _refs.add(ref.value)
                return ref

            obj = decode_value(raw, resolver=_record)
            _collect_refs(obj, refs, set())
            outrefs[oid] = refs
        except Exception as exc:
            corrupt[oid] = f"payload does not decode: {exc}"
            result.add("error", "undecodable", f"oid {oid}: {corrupt[oid]}", oid=oid)

    # --- reference and root integrity -------------------------------------
    for oid, refs in sorted(outrefs.items()):
        for ref in sorted(refs):
            if ref not in table:
                result.add(
                    "error",
                    "dangling-ref",
                    f"oid {oid} references missing oid {ref}",
                    oid=oid,
                )
    for name, oid in sorted(roots.items()):
        if oid not in table:
            result.add(
                "error", "dangling-root", f"root {name!r} names missing oid {oid}",
                oid=oid,
            )
        elif oid in corrupt:
            result.add(
                "error",
                "root-corrupt",
                f"root {name!r} names corrupt oid {oid}",
                oid=oid,
            )

    # --- reachability ------------------------------------------------------
    reachable: set[int] = set()
    stack = [oid for oid in roots.values() if oid in table]
    while stack:
        oid = stack.pop()
        if oid in reachable:
            continue
        reachable.add(oid)
        stack.extend(
            ref for ref in outrefs.get(oid, ()) if ref in table and ref not in reachable
        )
    unreachable = sorted(set(table) - reachable - set(corrupt))
    for oid in unreachable:
        result.add(
            "warn", "unreachable", f"oid {oid} is reachable from no root", oid=oid
        )

    # --- page accounting ---------------------------------------------------
    free = set(pager.free_pages())
    conflicts = sorted(free & referenced)
    for page in conflicts:
        result.add(
            "error", "free-in-use", f"page {page} is both free and referenced",
            page=page,
        )
    result.pages_referenced = len(referenced)
    all_pages = set(range(1, header.npages))
    result.leaked_pages = sorted(all_pages - referenced - free)
    if result.leaked_pages:
        result.add(
            "info",
            "leaked-pages",
            f"{len(result.leaked_pages)} leaked pages "
            "(expected after a crash; --repair reclaims them)",
        )

    if repair:
        _repair_v2(pager, result, table, roots, corrupt, unreachable)
    return result


def _repair_v2(
    pager: Pager,
    result: FsckResult,
    table: dict[int, tuple[int, int]],
    roots: dict[str, int],
    corrupt: dict[int, str],
    unreachable: list[int],
) -> None:
    """Rewrite the image: quarantine damage, rebuild the free list."""
    header = pager.header
    keep = {oid: entry for oid, entry in table.items() if oid not in corrupt}
    quarantine: dict[int, str] = dict(corrupt)
    for oid in unreachable:
        quarantine.setdefault(oid, "unreachable from any root")
    new_roots = {}
    for name, oid in roots.items():
        if oid in corrupt or oid not in table:
            quarantine[oid] = (
                quarantine.get(oid, "missing") + f"; was root {name!r}"
            )
            result.add(
                "info", "root-detached", f"root {name!r} detached by repair", oid=oid
            )
        else:
            new_roots[name] = oid

    # rebuild the free list from first principles: every page no kept chain
    # uses is free (this also clears leaks and free/in-use conflicts, and
    # retires the old free-list record and table chains wholesale)
    referenced: set[int] = set()
    for oid, (head, length) in list(keep.items()):
        try:
            referenced.update(pager.chain_pages(head, length))
        except PageError as exc:  # pragma: no cover - caught in the check pass
            keep.pop(oid)
            quarantine[oid] = f"chain unreadable: {exc}"
    free = sorted(set(range(1, header.npages)) - referenced, reverse=True)
    reclaimed = len(free) - (header.npages - 1 - result.pages_referenced)
    pager._free = free
    pager._free_set = set(free)
    header.free_page = 0  # superseded record is already in the rebuilt list
    header.free_len = 0

    if quarantine:
        payload = encode_value({str(oid): why for oid, why in quarantine.items()})
        qoid = header.oid_counter
        header.oid_counter += 1
        keep[qoid] = (pager.write_chain(payload), len(payload))
        new_roots[QUARANTINE_ROOT] = qoid
        _FSCK_QUARANTINED.inc(len(quarantine))

    encoder = Encoder()
    encoder.uvarint(len(keep))
    for oid, (head, length) in keep.items():
        encoder.uvarint(oid)
        encoder.uvarint(head)
        encoder.uvarint(length)
    encoder.uvarint(len(new_roots))
    for name, oid in new_roots.items():
        encoder.text(name)
        encoder.uvarint(oid)
    raw = encoder.getvalue()
    header.table_page = pager.write_chain(raw)
    header.table_len = len(raw)
    pager.sync_header()

    result.repaired = True
    result.quarantined = quarantine
    _FSCK_PAGES_RECLAIMED.inc(max(len(result.leaked_pages), 0))
    result.add(
        "info",
        "repaired",
        f"repair committed: {len(keep)} objects kept, "
        f"{len(quarantine)} quarantined, free list rebuilt "
        f"({len(free)} free pages, {max(reclaimed, 0)} newly reclaimed)",
    )
