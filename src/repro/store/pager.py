"""Fixed-size page file — the lowest storage layer (on-disk format v2).

A single file of ``page_size``-byte pages.  Page 0 holds **two** header
slots (magic, format version, checksum kind, geometry, free-list record,
object-table location, OID counter, commit epoch); pages are allocated
from the free list or by extending the file.

Integrity model (format v2, magic ``TYC2``):

* every data page carries a 4-byte checksum trailer
  (:mod:`repro.store.checksum`), verified on every read — a flipped bit or
  a torn page write surfaces as :class:`PageError`, never a garbage decode;
* commits are **dual-header**: the two header slots in page 0 are written
  alternately, each carrying a monotonically increasing epoch and its own
  checksum.  Recovery picks the newest slot that verifies, so a torn
  header write rolls back to the previous commit instead of bricking the
  image;
* the free list is **shadow-paged**: free page ids live in a chained
  record republished by every ``sync_header``, never inside the free
  pages themselves.  A freed page's content is therefore meaningless, and
  a crashed commit that tore a half-reused free page cannot corrupt the
  free list of the durable snapshot (the v1 design kept next-pointers in
  the free pages, where exactly that tear was fatal);
* chain walks are bounded and cycle-checked — a corrupt next-pointer is
  detected, not followed forever (and never double-freed).

Records larger than one page are chained: each data page reserves its
first 8 payload bytes for the next page id (0 = end of chain) — see
:meth:`Pager.write_chain` / :meth:`Pager.read_chain`.

Durability protocol (shadow-paging-lite): all data pages and the new
free-list record are written first and made durable with an fsync; then
the *inactive* header slot is written with ``epoch + 1`` and fsynced —
the single commit point.  A crash anywhere in between leaves the previous
consistent state reachable (exhaustively verified by
:mod:`repro.store.crashsim`).

Version 1 images (magic ``TYC1``, no checksums, single header, on-page
free list) are migrated in place on first open — see
:mod:`repro.store.format`.

All file I/O goes through a pluggable ``file_factory`` so the fault
injector (:mod:`repro.store.faults`) can interpose torn writes, short
reads, fsync failures and simulated crashes under the real pager code.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import METRICS
from repro.store.checksum import CHECKSUM_KINDS, checksum_fn, kind_name

__all__ = [
    "PageError",
    "Header",
    "Pager",
    "DEFAULT_PAGE_SIZE",
    "MIN_PAGE_SIZE",
    "FORMAT_VERSION",
    "MAGIC",
    "MAGIC_V1",
    "HEADER_SLOTS",
    "SLOT_SIZE",
    "CHECKSUM_LEN",
]

_PAGE_READS = METRICS.counter("store.pager.page_reads", "pages read from disk")
_PAGE_WRITES = METRICS.counter("store.pager.page_writes", "pages written to disk")
_BYTES_READ = METRICS.counter("store.pager.bytes_read", "payload bytes read")
_BYTES_WRITTEN = METRICS.counter("store.pager.bytes_written", "payload bytes written")
_PAGES_ALLOCATED = METRICS.counter("store.pager.pages_allocated", "page allocations")
_HEADER_SYNCS = METRICS.counter(
    "store.pager.header_syncs", "header slot writes + fsync (commit points)"
)
_CHECKSUM_FAILURES = METRICS.counter(
    "store.pager.checksum_failures", "page reads rejected by the checksum"
)
_HEADER_RECOVERIES = METRICS.counter(
    "store.pager.header_recoveries",
    "opens that fell back to the other header slot (torn header write)",
)
_FREE_LIST_RESETS = METRICS.counter(
    "store.pager.free_list_resets",
    "opens that dropped an unreadable free-list record (leak, not loss)",
)
_SHORT_READS = METRICS.counter(
    "store.pager.short_reads", "page reads completed across several read calls"
)

MAGIC = b"TYC2"
MAGIC_V1 = b"TYC1"
FORMAT_VERSION = 2
DEFAULT_PAGE_SIZE = 4096
#: magic, version, checksum kind, page_size, epoch, npages, free_page,
#: free_len, table_page, table_len, oid_counter
_SLOT_FMT = "<4sHHIQQQQQQQ"
_SLOT_STRUCT_SIZE = struct.calcsize(_SLOT_FMT)
CHECKSUM_LEN = 4
SLOT_SIZE = _SLOT_STRUCT_SIZE + CHECKSUM_LEN  # 72 bytes
HEADER_SLOTS = 2
#: page 0 must hold both header slots; data pages need room for the chain
#: link, the checksum trailer, and a useful payload
MIN_PAGE_SIZE = HEADER_SLOTS * SLOT_SIZE
MAX_PAGE_SIZE = 1 << 24
_CHAIN_LINK = 8  # bytes reserved per data page for the next-page pointer


class PageError(Exception):
    """Corrupt page file or invalid page operation."""


@dataclass(slots=True)
class Header:
    """The mutable header state of a page file (one slot's worth)."""

    page_size: int
    npages: int
    free_page: int
    free_len: int
    table_page: int
    table_len: int
    oid_counter: int
    epoch: int = 0
    checksum_kind: str = "crc32"

    def pack(self) -> bytes:
        """Serialize into one checksummed header slot."""
        kind_id, crc = CHECKSUM_KINDS[self.checksum_kind]
        packed = struct.pack(
            _SLOT_FMT,
            MAGIC,
            FORMAT_VERSION,
            kind_id,
            self.page_size,
            self.epoch,
            self.npages,
            self.free_page,
            self.free_len,
            self.table_page,
            self.table_len,
            self.oid_counter,
        )
        return packed + struct.pack("<I", crc(packed))

    @classmethod
    def unpack(cls, raw: bytes) -> "Header":
        """Parse and *validate* one header slot.

        A garbage slot fails here with a specific :class:`PageError` —
        checksum mismatch, bad magic, unsupported version/kind, or an
        absurd field value — never a downstream ``struct`` error.
        """
        if len(raw) < SLOT_SIZE:
            raise PageError("truncated header slot")
        (
            magic,
            version,
            kind_id,
            page_size,
            epoch,
            npages,
            free_page,
            free_len,
            table_page,
            table_len,
            oid_counter,
        ) = struct.unpack(_SLOT_FMT, raw[:_SLOT_STRUCT_SIZE])
        if magic != MAGIC:
            if magic == MAGIC_V1:
                raise PageError("format v1 header in a v2 slot")
            raise PageError("bad magic: not a Tycoon store file")
        if version != FORMAT_VERSION:
            raise PageError(f"unsupported format version {version}")
        kind = kind_name(kind_id)
        if kind is None:
            raise PageError(f"unsupported checksum kind id {kind_id}")
        (stored_crc,) = struct.unpack(
            "<I", raw[_SLOT_STRUCT_SIZE : _SLOT_STRUCT_SIZE + CHECKSUM_LEN]
        )
        if checksum_fn(kind)(raw[:_SLOT_STRUCT_SIZE]) != stored_crc:
            raise PageError("header slot checksum mismatch")
        if page_size == 0 or not MIN_PAGE_SIZE <= page_size <= MAX_PAGE_SIZE:
            raise PageError(f"absurd page size {page_size}")
        if npages < 1:
            raise PageError(f"absurd page count {npages}")
        if free_page >= npages:
            raise PageError(f"free-list record page {free_page} beyond {npages} pages")
        if table_page >= npages:
            raise PageError(f"object table page {table_page} beyond {npages} pages")
        if table_len > npages * page_size or free_len > npages * page_size:
            raise PageError("record length exceeds the file")
        return cls(
            page_size=page_size,
            npages=npages,
            free_page=free_page,
            free_len=free_len,
            table_page=table_page,
            table_len=table_len,
            oid_counter=oid_counter,
            epoch=epoch,
            checksum_kind=kind,
        )


def _default_file_factory(path: str, mode: str):
    return open(path, mode)


class Pager:
    """Page allocation and chained-record I/O over a single file."""

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        checksum: str | None = None,
        file_factory: Callable[[str, str], object] | None = None,
        migrate: bool = True,
    ):
        if page_size < MIN_PAGE_SIZE or page_size < _CHAIN_LINK + CHECKSUM_LEN + 16:
            raise PageError(f"page size {page_size} too small")
        if checksum is not None and checksum not in CHECKSUM_KINDS:
            raise PageError(f"unknown checksum kind {checksum!r}")
        self.path = os.fspath(path)
        self._open_file = file_factory or _default_file_factory
        #: LIFO of reusable page ids (shadow-paged: persisted by sync_header)
        self._free: list[int] = []
        self._free_set: set[int] = set()
        #: per-slot status from the last recovery: (header | None, error | None)
        self.slot_status: list[tuple[Header | None, str | None]] = []
        #: non-None when the free-list record could not be read at open
        self.free_list_error: str | None = None
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = self._open_file(self.path, "r+b" if existed else "w+b")
        if existed:
            self._file.seek(0)
            if _read_exact(self._file, 4) == MAGIC_V1:
                self._migrate_v1(migrate)
            self._recover(page_size, checksum)
        else:
            self.header = Header(
                page_size=page_size,
                npages=1,
                free_page=0,
                free_len=0,
                table_page=0,
                table_len=0,
                oid_counter=1,
                epoch=0,
                checksum_kind=checksum or "crc32",
            )
            self._checksum = checksum_fn(self.header.checksum_kind)
            # fresh page 0: all zeros, both slots invalid until the first sync
            self._file.seek(0)
            self._file.write(b"\x00" * page_size)
            self._active_slot = 1  # first sync_header publishes into slot 0
            self.sync_header()

    # ------------------------------------------------------------- recovery

    def _migrate_v1(self, migrate: bool) -> None:
        """Rewrite a v1 image in place as v2, then continue the open."""
        if not migrate:
            raise PageError(
                "format v1 image: open with migrate=True or run "
                "`python -m repro fsck`"
            )
        self._file.close()
        from repro.store.format import migrate_v1_image  # circular-import guard

        migrate_v1_image(self.path)
        self._file = self._open_file(self.path, "r+b")

    def _recover(self, page_size: int, checksum: str | None) -> None:
        """Pick the newest header slot that verifies (dual-header recovery)."""
        self._file.seek(0)
        raw = _read_exact(self._file, HEADER_SLOTS * SLOT_SIZE)
        self.slot_status = []
        candidates: list[tuple[int, Header]] = []
        torn_slots = 0
        for slot in range(HEADER_SLOTS):
            slice_ = raw[slot * SLOT_SIZE : (slot + 1) * SLOT_SIZE]
            try:
                header = Header.unpack(slice_)
            except PageError as exc:
                self.slot_status.append((None, str(exc)))
                if any(slice_):  # a written-then-corrupted slot, not fresh zeros
                    torn_slots += 1
                continue
            self.slot_status.append((header, None))
            candidates.append((slot, header))
        if not candidates:
            raise PageError(
                f"no valid header slot in {self.path!r}: "
                + "; ".join(err or "ok" for _, err in self.slot_status)
            )
        slot, header = max(candidates, key=lambda item: item[1].epoch)
        if torn_slots:
            _HEADER_RECOVERIES.inc()
        self._active_slot = slot
        self.header = header
        self._checksum = checksum_fn(header.checksum_kind)
        if header.page_size != page_size and page_size != DEFAULT_PAGE_SIZE:
            raise PageError(
                f"file has page size {header.page_size}, asked {page_size}"
            )
        if checksum is not None and checksum != header.checksum_kind:
            raise PageError(
                f"file uses checksum {header.checksum_kind!r}, asked {checksum!r}"
            )
        self._load_free_list()

    def reload(self) -> None:
        """Re-read the durable header, free list and page count from disk.

        After a commit fails mid-publish on an I/O error (disk full, EIO,
        fsync failure), the in-memory header, free list and ``npages`` may
        have diverged from the durable state — pages were allocated and
        chains written for a commit that never reached its commit point.
        Re-running recovery discards that divergence: the pager returns to
        exactly the state the last *successful* ``sync_header`` persisted,
        and the orphaned pages are reclaimable by ``fsck --repair``.
        """
        self._recover(self.header.page_size, None)

    def _load_free_list(self) -> None:
        """Load the shadow-paged free-list record into memory.

        An unreadable record (media fault on its pages) degrades to an
        empty free list: the affected pages *leak* until ``repro fsck
        --repair`` rebuilds the list, but no live data is ever at risk.
        """
        self._free = []
        self._free_set = set()
        self.free_list_error = None
        if not self.header.free_page:
            return
        try:
            raw = self.read_chain(self.header.free_page, self.header.free_len)
            count = len(raw) // 8
            ids = struct.unpack(f"<{count}Q", raw[: count * 8])
        except PageError as exc:
            self.free_list_error = str(exc)
            _FREE_LIST_RESETS.inc()
            return
        for page_id in ids:
            if 1 <= page_id < self.header.npages and page_id not in self._free_set:
                self._free.append(page_id)
                self._free_set.add(page_id)

    # ------------------------------------------------------------- raw I/O

    @property
    def page_size(self) -> int:
        return self.header.page_size

    @property
    def page_capacity(self) -> int:
        """Payload bytes per page (page size minus the checksum trailer)."""
        return self.header.page_size - CHECKSUM_LEN

    @property
    def chain_capacity(self) -> int:
        """Payload bytes per chained-record page."""
        return self.page_capacity - _CHAIN_LINK

    def _read_raw(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.header.page_size)
        raw = _read_exact(self._file, self.header.page_size)
        _PAGE_READS.inc()
        _BYTES_READ.inc(self.header.page_size)
        return raw

    def _write_raw(self, page_id: int, data: bytes) -> None:
        if len(data) > self.header.page_size:
            raise PageError("page overflow")
        padded = data + b"\x00" * (self.header.page_size - len(data))
        self._file.seek(page_id * self.header.page_size)
        self._file.write(padded)
        _PAGE_WRITES.inc()
        _BYTES_WRITTEN.inc(len(data))

    def _write_page(self, page_id: int, payload: bytes) -> None:
        """Write a data page: zero-padded payload plus checksum trailer."""
        capacity = self.page_capacity
        if len(payload) > capacity:
            raise PageError("page overflow")
        body = payload + b"\x00" * (capacity - len(payload))
        self._write_raw(page_id, body + struct.pack("<I", self._checksum(body)))

    def _read_page(self, page_id: int, verify: bool = True) -> bytes:
        """Read a data page's payload, verifying the checksum trailer."""
        raw = self._read_raw(page_id)
        body = raw[: self.page_capacity]
        if verify:
            (stored,) = struct.unpack("<I", raw[self.page_capacity :][:CHECKSUM_LEN])
            if self._checksum(body) != stored:
                _CHECKSUM_FAILURES.inc()
                raise PageError(f"checksum mismatch on page {page_id}")
        return body

    def read(self, page_id: int, verify: bool = True) -> bytes:
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"page {page_id} out of range")
        return self._read_page(page_id, verify=verify)

    def write(self, page_id: int, data: bytes) -> None:
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"page {page_id} out of range")
        self._write_page(page_id, data)

    # --------------------------------------------------------- allocation

    def allocate(self) -> int:
        """Take a page from the free list, or grow the file."""
        _PAGES_ALLOCATED.inc()
        if self._free:
            page_id = self._free.pop()
            self._free_set.discard(page_id)
            return page_id
        return self._grow()

    def _grow(self) -> int:
        page_id = self.header.npages
        self.header.npages += 1
        self._write_page(page_id, b"")
        return page_id

    def release(self, page_id: int) -> None:
        """Return a page to the free list (pure bookkeeping, no page write)."""
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"cannot release page {page_id}")
        if page_id in self._free_set:
            raise PageError(f"double free of page {page_id}")
        self._free.append(page_id)
        self._free_set.add(page_id)

    def free_pages(self) -> list[int]:
        """The current reusable page ids (newest first)."""
        return list(reversed(self._free))

    # ------------------------------------------------------------- chains

    def write_chain(self, payload: bytes) -> int:
        """Store a record across chained pages; returns the head page id."""
        chunks = self._chunks(payload)
        pages = [self.allocate() for _ in chunks]
        self._write_chain_into(pages, chunks)
        return pages[0]

    def _chunks(self, payload: bytes) -> list[bytes]:
        capacity = self.chain_capacity
        chunks = [payload[i : i + capacity] for i in range(0, len(payload), capacity)]
        return chunks or [b""]

    def _write_chain_into(self, pages: list[int], chunks: list[bytes]) -> None:
        for index, (page_id, chunk) in enumerate(zip(pages, chunks)):
            next_id = pages[index + 1] if index + 1 < len(pages) else 0
            self._write_page(page_id, struct.pack("<Q", next_id) + chunk)

    def _next_link(self, page_id: int, raw: bytes, visited: set[int]) -> int:
        """Decode and validate a chain's next-pointer (cycle/range checks)."""
        (next_id,) = struct.unpack("<Q", raw[:_CHAIN_LINK])
        if next_id:
            if not 1 <= next_id < self.header.npages:
                raise PageError(
                    f"chain link {next_id} out of range on page {page_id}"
                )
            if next_id in visited:
                raise PageError(f"chain cycle: page {next_id} linked twice")
        return next_id

    def read_chain(self, head: int, length: int) -> bytes:
        """Read ``length`` payload bytes from a page chain."""
        capacity = self.chain_capacity
        out = bytearray()
        page_id = head
        remaining = length
        visited: set[int] = set()
        while remaining > 0:
            if page_id == 0:
                raise PageError("record chain truncated")
            visited.add(page_id)
            raw = self.read(page_id)
            take = min(remaining, capacity)
            out += raw[_CHAIN_LINK : _CHAIN_LINK + take]
            remaining -= take
            page_id = self._next_link(page_id, raw, visited)
        return bytes(out)

    def release_chain(self, head: int, length: int) -> None:
        """Free every page of a record chain (cycle-safe, never double-frees)."""
        for page_id in self.chain_pages(head, length):
            self.release(page_id)

    def chain_pages(self, head: int, length: int) -> list[int]:
        """The page ids of a record chain, in order (checksum-verified)."""
        capacity = self.chain_capacity
        pages: list[int] = []
        page_id = head
        remaining = max(length, 1)  # zero-length records still own one page
        visited: set[int] = set()
        while remaining > 0 and page_id:
            if not 1 <= page_id < self.header.npages:
                raise PageError(f"chain page {page_id} out of range")
            visited.add(page_id)
            pages.append(page_id)
            raw = self.read(page_id)
            remaining -= capacity
            page_id = self._next_link(page_id, raw, visited)
        return pages

    # ------------------------------------------------------------ durability

    def _fsync(self) -> None:
        fsync = getattr(self._file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            self._file.flush()
            os.fsync(self._file.fileno())

    def sync_header(self) -> None:
        """Publish the current state — the dual-slot commit point.

        Persists the free list as a fresh shadow-paged record (never onto
        pages the durable snapshot still references — callers must release
        pages the previous snapshot uses only *after* a sync, as the heap
        does), makes all data durable, then writes the *inactive* header
        slot with a bumped epoch and fsyncs.  A torn slot write leaves the
        previous slot — and thus the previous commit — authoritative.
        """
        _HEADER_SYNCS.inc()
        old_free = (self.header.free_page, self.header.free_len)
        spares: list[int] = []
        if self._free:
            # the record's own pages may come from the free list: free pages
            # hold no meaningful content, and the *durable* old record's
            # chain pages are never in the in-memory list at this point.
            # Pop an upper bound first (popping shrinks the list, so the
            # final payload can only need fewer pages, never more).  When
            # the list is too small to survive the popping, grow instead —
            # the record must never swallow the last reusable pages.
            needed = max(1, -(-(8 * len(self._free)) // self.chain_capacity))
            if len(self._free) > needed:
                pages = [self.allocate() for _ in range(needed)]
            else:
                pages = [self._grow() for _ in range(needed)]
            payload = struct.pack(f"<{len(self._free)}Q", *self._free)
            chunks = self._chunks(payload)
            spares = pages[len(chunks) :]
            pages = pages[: len(chunks)]
            self._write_chain_into(pages, chunks)
            self.header.free_page = pages[0]
            self.header.free_len = len(payload)
        else:
            self.header.free_page = 0
            self.header.free_len = 0
        self._file.flush()
        self._fsync()  # data durable before the header points at it
        self.header.epoch += 1
        target = (self._active_slot + 1) % HEADER_SLOTS
        self._file.seek(target * SLOT_SIZE)
        self._file.write(self.header.pack())
        self._file.flush()
        self._fsync()  # the commit point
        self._active_slot = target
        # the superseded free-list record (and any over-reserved spare
        # pages) are reclaimable now; they are persisted as free by the
        # *next* sync (a crash before then leaks them — bounded, and
        # `repro fsck --repair` sweeps leaks)
        for page_id in spares:
            self.release(page_id)
        if old_free[0]:
            for page_id in self.chain_pages(*old_free):
                if page_id not in self._free_set:
                    self.release(page_id)

    def close(self) -> None:
        if not getattr(self._file, "closed", True):
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def file_size(self) -> int:
        return self.header.npages * self.header.page_size

    def image_info(self) -> dict:
        """Identity and durability state of the open image (ping/fsck)."""
        return {
            "path": self.path,
            "format": FORMAT_VERSION,
            "page_size": self.header.page_size,
            "npages": self.header.npages,
            "epoch": self.header.epoch,
            "checksum": self.header.checksum_kind,
            "active_slot": self._active_slot,
            "free_pages": len(self._free),
        }


def _read_exact(file, count: int) -> bytes:
    """Read ``count`` bytes, retrying short reads; zero-pad at EOF."""
    chunks: list[bytes] = []
    remaining = count
    short = False
    while remaining > 0:
        chunk = file.read(remaining)
        if not chunk:
            break  # EOF: pages past the end read as zeros (caught by checksums)
        if len(chunk) < remaining:
            short = True
        chunks.append(chunk)
        remaining -= len(chunk)
    if short and remaining == 0:
        _SHORT_READS.inc()
    raw = b"".join(chunks)
    if remaining > 0:
        raw += b"\x00" * remaining
    return raw
