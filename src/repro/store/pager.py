"""Fixed-size page file — the lowest storage layer.

A single file of ``page_size``-byte pages.  Page 0 is the header (magic,
geometry, free-list head, object-table location, root directory, OID
counter); pages are allocated from the free list or by extending the file.

Records larger than one page are chained: each data page reserves its first
8 bytes for the next page id (0 = end of chain) — see
:meth:`Pager.write_chain` / :meth:`Pager.read_chain`.

Durability model (shadow-paging-lite): all data pages are written first,
then the header is rewritten last and the file synced; a crash before the
header write leaves the previous consistent state reachable.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

from repro.obs.metrics import METRICS

__all__ = ["PageError", "Header", "Pager", "DEFAULT_PAGE_SIZE"]

_PAGE_READS = METRICS.counter("store.pager.page_reads", "pages read from disk")
_PAGE_WRITES = METRICS.counter("store.pager.page_writes", "pages written to disk")
_BYTES_READ = METRICS.counter("store.pager.bytes_read", "payload bytes read")
_BYTES_WRITTEN = METRICS.counter("store.pager.bytes_written", "payload bytes written")
_PAGES_ALLOCATED = METRICS.counter("store.pager.pages_allocated", "page allocations")
_HEADER_SYNCS = METRICS.counter(
    "store.pager.header_syncs", "header writes + fsync (commit points)"
)

MAGIC = b"TYC1"
DEFAULT_PAGE_SIZE = 4096
_HEADER_FMT = "<4sIQQQQQ"  # magic, page_size, npages, free_head, table_page, table_len, oid_counter
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_CHAIN_LINK = 8  # bytes reserved per data page for the next-page pointer


class PageError(Exception):
    """Corrupt page file or invalid page operation."""


@dataclass(slots=True)
class Header:
    """The mutable header state of a page file."""

    page_size: int
    npages: int
    free_head: int
    table_page: int
    table_len: int
    oid_counter: int

    def pack(self) -> bytes:
        return struct.pack(
            _HEADER_FMT,
            MAGIC,
            self.page_size,
            self.npages,
            self.free_head,
            self.table_page,
            self.table_len,
            self.oid_counter,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "Header":
        magic, page_size, npages, free_head, table_page, table_len, oid_counter = (
            struct.unpack(_HEADER_FMT, raw[:_HEADER_SIZE])
        )
        if magic != MAGIC:
            raise PageError("bad magic: not a Tycoon store file")
        return cls(page_size, npages, free_head, table_page, table_len, oid_counter)


class Pager:
    """Page allocation and chained-record I/O over a single file."""

    def __init__(self, path: str | os.PathLike, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < _HEADER_SIZE or page_size < _CHAIN_LINK + 16:
            raise PageError(f"page size {page_size} too small")
        self.path = os.fspath(path)
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if existed else "w+b")
        if existed:
            self._file.seek(0)
            raw = self._file.read(_HEADER_SIZE)
            if len(raw) < _HEADER_SIZE:
                raise PageError("truncated header page")
            self.header = Header.unpack(raw)
            if self.header.page_size != page_size and page_size != DEFAULT_PAGE_SIZE:
                raise PageError(
                    f"file has page size {self.header.page_size}, asked {page_size}"
                )
        else:
            self.header = Header(
                page_size=page_size,
                npages=1,
                free_head=0,
                table_page=0,
                table_len=0,
                oid_counter=1,
            )
            self._write_raw(0, self.header.pack())
            self.sync_header()

    # ------------------------------------------------------------- raw I/O

    @property
    def page_size(self) -> int:
        return self.header.page_size

    def _read_raw(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.header.page_size if page_id else 0)
        raw = self._file.read(self.header.page_size)
        if len(raw) < self.header.page_size:
            raw = raw + b"\x00" * (self.header.page_size - len(raw))
        _PAGE_READS.inc()
        _BYTES_READ.inc(self.header.page_size)
        return raw

    def _write_raw(self, page_id: int, data: bytes) -> None:
        if len(data) > self.header.page_size:
            raise PageError("page overflow")
        padded = data + b"\x00" * (self.header.page_size - len(data))
        self._file.seek(page_id * self.header.page_size)
        self._file.write(padded)
        _PAGE_WRITES.inc()
        _BYTES_WRITTEN.inc(len(data))

    def read(self, page_id: int) -> bytes:
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"page {page_id} out of range")
        return self._read_raw(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"page {page_id} out of range")
        self._write_raw(page_id, data)

    # --------------------------------------------------------- allocation

    def allocate(self) -> int:
        """Take a page from the free list, or grow the file."""
        _PAGES_ALLOCATED.inc()
        if self.header.free_head:
            page_id = self.header.free_head
            raw = self.read(page_id)
            (next_free,) = struct.unpack("<Q", raw[:8])
            self.header.free_head = next_free
            return page_id
        page_id = self.header.npages
        self.header.npages += 1
        self._write_raw(page_id, b"")
        return page_id

    def release(self, page_id: int) -> None:
        """Return a page to the free list."""
        if not 1 <= page_id < self.header.npages:
            raise PageError(f"cannot release page {page_id}")
        self._write_raw(page_id, struct.pack("<Q", self.header.free_head))
        self.header.free_head = page_id

    # ------------------------------------------------------------- chains

    def write_chain(self, payload: bytes) -> int:
        """Store a record across chained pages; returns the head page id."""
        capacity = self.header.page_size - _CHAIN_LINK
        chunks = [payload[i : i + capacity] for i in range(0, len(payload), capacity)]
        if not chunks:
            chunks = [b""]
        pages = [self.allocate() for _ in chunks]
        for index, (page_id, chunk) in enumerate(zip(pages, chunks)):
            next_id = pages[index + 1] if index + 1 < len(pages) else 0
            self._write_raw(page_id, struct.pack("<Q", next_id) + chunk)
        return pages[0]

    def read_chain(self, head: int, length: int) -> bytes:
        """Read ``length`` payload bytes from a page chain."""
        capacity = self.header.page_size - _CHAIN_LINK
        out = bytearray()
        page_id = head
        remaining = length
        while remaining > 0:
            if page_id == 0:
                raise PageError("record chain truncated")
            raw = self.read(page_id)
            (next_id,) = struct.unpack("<Q", raw[:8])
            take = min(remaining, capacity)
            out += raw[_CHAIN_LINK : _CHAIN_LINK + take]
            remaining -= take
            page_id = next_id
        return bytes(out)

    def release_chain(self, head: int, length: int) -> None:
        """Free every page of a record chain."""
        capacity = self.header.page_size - _CHAIN_LINK
        page_id = head
        remaining = length
        while remaining > 0 and page_id:
            raw = self.read(page_id)
            (next_id,) = struct.unpack("<Q", raw[:8])
            self.release(page_id)
            remaining -= capacity
            page_id = next_id

    # ------------------------------------------------------------ durability

    def sync_header(self) -> None:
        """Write the header page and flush — the commit point."""
        _HEADER_SYNCS.inc()
        self._file.flush()
        self._write_raw(0, self.header.pack())
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def file_size(self) -> int:
        return self.header.npages * self.header.page_size
