"""Resource-exhaustion chaos harness: proving the daemon under a dying disk.

The durability story so far covered *crashes* (:mod:`repro.store.crashsim`:
the process dies, the image must recover) and *network* failure
(:mod:`repro.server.netchaos`).  This harness covers the third way storage
fails in production: the process stays up but the disk stops cooperating —
``ENOSPC`` on a full volume, ``EDQUOT`` on a quota, ``EIO`` on a dying
device, and the quiet killer, a *failing fsync* (the kernel may drop the
dirty pages after reporting the error: retrying the fsync is not a
recovery strategy).

Every scenario runs a real :class:`~repro.server.daemon.ReproServer` on a
loopback socket with a :class:`~repro.store.faults.FaultPlan` slid under
its pager, drives a concurrent multi-session write workload while
injecting write/fsync failures (one-shot at the n-th I/O op, or a
persistent outage healed later), and asserts the survival invariants:

1. **the daemon never dies** — ``ping`` answers throughout, including
   while degraded;
2. **reads keep succeeding** — a poller reads a pre-seeded root during
   the outage; degraded mode is *read-only*, not *down*;
3. **degraded entry and exit** — a commit-path I/O failure flips the
   daemon into degraded mode (writes answer ``read_only``), and once the
   fault is healed the background probe recovers it without a restart;
4. **no acked write lost, no torn write resurrected** — after shutdown
   the image passes ``fsck`` clean and every root holds a value the
   workload actually acknowledged (or a later attempted value whose ack
   was lost in flight — never a rolled-back one below the acked floor);
5. under the **memory ceiling** writes shed busy-style and recover, and
   under **open-loop overload** introspection stays responsive while
   excess load sheds with typed errors — never a hung connection.

:func:`scenario_negative_control` disables degraded mode
(``unsafe_no_degraded``): a failed commit then leaves the heap's
in-memory table pointing at half-written state, and the *next* successful
commit publishes the torn write the client was told had failed — the
acked-values check must detect the resurrection.  CI inverts the
invocation; a passing negative control means the detector is broken.

Wired as ``scripts/exhaustion_sim.py`` / ``make exhaustion-sim``.
"""

from __future__ import annotations

import errno
import os
import threading
import time

from repro.obs.metrics import METRICS
from repro.server.client import (
    BusyError,
    ClientError,
    ReadOnlyError,
    ServerError,
    connect,
)
from repro.server.daemon import ReproServer, ServerConfig
from repro.store.faults import FaultPlan
from repro.store.fsck import fsck_image
from repro.store.heap import HeapError, ObjectHeap

__all__ = [
    "ExhaustError",
    "ExhaustionHarness",
    "ScenarioResult",
    "build_scenarios",
    "scenario_negative_control",
    "run_sweep",
]

_SCENARIOS = METRICS.counter("store.exhaustsim.scenarios", "exhaustion scenarios run")
_FAILURES = METRICS.counter("store.exhaustsim.failures", "exhaustion scenarios failed")


class ExhaustError(AssertionError):
    """A scenario invariant was violated."""


class ScenarioResult:
    def __init__(self, name, ok, detail="", elapsed_s=0.0, checks=None):
        self.name = name
        self.ok = ok
        self.detail = detail
        self.elapsed_s = elapsed_s
        self.checks = checks or {}

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": self.checks,
        }


class ExhaustionHarness:
    """One daemon over a fault-planned image + a recorded write workload."""

    #: concurrent writer sessions (one key each)
    WRITERS = 3

    def __init__(self, root: str, **config_overrides):
        os.makedirs(root, exist_ok=True)
        self.image = os.path.join(root, "exhaust.tyc")
        self.plan = FaultPlan()
        defaults = dict(
            workers=2,
            queue_size=32,
            pgo_interval=None,
            history_interval=None,
            profile=False,
            # fast probe so recovery is observable within a scenario
            degraded_probe_interval=0.05,
            io_factory=self.plan.file_factory,
            enable_debug_ops=True,
        )
        defaults.update(config_overrides)
        self.server = ReproServer(self.image, ServerConfig(**defaults))
        self.server.start()
        #: per key: last value the server *acknowledged* (ok response)
        self.acked: dict[str, int] = {}
        #: per key: every value a set() was attempted with
        self.attempted: dict[str, set[int]] = {}
        self._record_lock = threading.Lock()
        self.read_failures: list[str] = []
        self.write_errors: list[str] = []
        # a stable pre-seeded root the read poller watches during outages
        with connect(self.server.port) as db:
            db.set("sentinel", 41)
        self.acked["sentinel"] = 41
        self.attempted["sentinel"] = {41}

    # ------------------------------------------------------------- workload

    def write(self, db, key: str, value: int, retry_window: float = 0.0) -> bool:
        """One recorded write; with a retry window, read_only/busy answers
        are retried until the window closes (modeling a patient client)."""
        with self._record_lock:
            self.attempted.setdefault(key, set()).add(value)
        deadline = time.monotonic() + retry_window
        while True:
            try:
                db.set(key, value)
            except (ReadOnlyError, BusyError) as exc:
                if time.monotonic() >= deadline:
                    with self._record_lock:
                        self.write_errors.append(f"{key}={value}: {exc}")
                    return False
                hint = exc.details.get("retry_after") or 0.05
                time.sleep(min(float(hint), 0.2))
            except (ClientError, ServerError) as exc:
                with self._record_lock:
                    self.write_errors.append(f"{key}={value}: {exc}")
                return False
            else:
                with self._record_lock:
                    self.acked[key] = value
                return True

    def run_writers(
        self, per_writer: int, inject_at: int | None = None, inject=None,
        retry_window: float = 5.0,
    ) -> None:
        """``WRITERS`` concurrent sessions, each writing an increasing
        sequence to its own key; ``inject()`` fires (once, from the main
        thread) when any writer reaches sequence ``inject_at``."""
        def writer(index: int) -> None:
            key = f"k{index}"
            with connect(self.server.port) as db:
                for seq in range(1, per_writer + 1):
                    if index == 0 and seq == inject_at and inject is not None:
                        inject()
                    self.write(db, key, seq, retry_window=retry_window)

        threads = [
            threading.Thread(target=writer, args=(i,), name=f"exhaust-writer-{i}")
            for i in range(self.WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            if thread.is_alive():
                raise ExhaustError("writer thread hung — daemon stopped answering")

    def start_read_poller(self, stop: threading.Event) -> threading.Thread:
        """Continuously read the sentinel root + ping: reads must always
        answer, degraded or not."""

        def poll() -> None:
            with connect(self.server.port) as db:
                while not stop.is_set():
                    try:
                        if db.ping().get("pong") is not True:
                            self.read_failures.append("ping answered oddly")
                        if db.get("sentinel")["sentinel"] != 41:
                            self.read_failures.append("sentinel value wrong")
                    except (ClientError, ServerError) as exc:
                        self.read_failures.append(f"{type(exc).__name__}: {exc}")
                    time.sleep(0.01)

        thread = threading.Thread(target=poll, name="exhaust-reader", daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------ assertions

    def ping(self) -> dict:
        with connect(self.server.port) as db:
            return db.ping()

    def assert_alive(self) -> None:
        try:
            info = self.ping()
        except (ClientError, ServerError) as exc:
            raise ExhaustError(f"daemon stopped answering ping: {exc}") from exc
        if info.get("pong") is not True:
            raise ExhaustError(f"bad ping reply: {info}")

    def assert_degraded(self, expected: bool, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while True:
            info = self.ping()
            if bool(info.get("degraded")) == expected:
                return
            if time.monotonic() >= deadline:
                raise ExhaustError(
                    f"daemon degraded={info.get('degraded')}, expected {expected} "
                    f"(reason={info.get('degraded_reason')!r})"
                )
            time.sleep(0.02)

    def assert_write_rejected_read_only(self) -> None:
        with connect(self.server.port) as db:
            try:
                db.set("rejected", 1)
            except ReadOnlyError as exc:
                if not exc.details.get("reason"):
                    raise ExhaustError("read_only error carries no reason")
                return
            raise ExhaustError("write was accepted while degraded")

    def check_no_read_failures(self) -> None:
        if self.read_failures:
            raise ExhaustError(
                f"{len(self.read_failures)} read failures during the outage; "
                f"first: {self.read_failures[0]}"
            )

    def verify_image(self) -> dict:
        """Post-shutdown: fsck clean + every root holds a sane value.

        A root's final value must be ≥ the last acknowledged one and must
        be a value some attempt actually wrote: below the acked floor
        means an acked write was rolled back (lost); above it is legal
        only for a post-commit-point failure (durable but unacked); a
        value never attempted means corruption.
        """
        report = fsck_image(self.image)
        if not report.ok:
            raise ExhaustError(f"image failed fsck after the scenario: {report}")
        heap = ObjectHeap(self.image)
        try:
            final = {}
            for name in self.acked:
                try:
                    final[name] = heap.load_root(name)
                except HeapError:
                    final[name] = None
        finally:
            heap.close()
        for key, acked_value in sorted(self.acked.items()):
            value = final.get(key)
            if value is None:
                raise ExhaustError(f"acked root {key!r} missing from the image")
            if value < acked_value:
                raise ExhaustError(
                    f"acked write lost: {key!r} is {value}, "
                    f"last acked was {acked_value}"
                )
            if value not in self.attempted.get(key, set()):
                raise ExhaustError(
                    f"root {key!r} holds {value!r}, which no attempt ever wrote"
                )
        return {"roots": len(final), "acked": dict(self.acked)}

    def teardown(self) -> None:
        self.plan.heal()
        try:
            self.server.stop()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def _finish(harness: ExhaustionHarness) -> dict:
    """Common tail: recovered daemon takes writes again, image verifies."""
    harness.assert_degraded(False, timeout=10.0)
    with connect(harness.server.port) as db:
        db.set("post-recovery", 7)
    harness.acked["post-recovery"] = 7
    harness.attempted.setdefault("post-recovery", set()).add(7)
    harness.server.stop()
    return harness.verify_image()


def scenario_one_shot(root: str, kind: str, nth: int, fault_errno: int) -> dict:
    """One write/fsync op fails mid-workload; the daemon degrades, rolls
    back cleanly, auto-recovers (the fault is one-shot) and keeps going."""
    harness = ExhaustionHarness(root)
    stop = threading.Event()
    try:
        harness.start_read_poller(stop)
        arm = (
            harness.plan.arm_write_failure
            if kind == "write"
            else harness.plan.arm_fsync_failure
        )
        harness.run_writers(
            per_writer=8,
            inject_at=3,
            inject=lambda: arm(nth, fault_errno=fault_errno),
        )
        harness.assert_alive()
        harness.check_no_read_failures()
        return _finish(harness)
    finally:
        stop.set()
        harness.teardown()


def scenario_persistent_outage(root: str, fault_errno: int) -> dict:
    """The disk goes away entirely and comes back: degraded for the whole
    outage (reads fine, writes read_only), auto-recovery after heal()."""
    harness = ExhaustionHarness(root)
    stop = threading.Event()
    try:
        harness.start_read_poller(stop)
        with connect(harness.server.port) as db:
            harness.write(db, "before", 1)
            harness.plan.exhaust(fault_errno)
            # this commit hits the dead disk: rejected, daemon degrades
            harness.write(db, "during", 1, retry_window=0.0)
        harness.assert_degraded(True)
        harness.assert_alive()
        harness.assert_write_rejected_read_only()
        # degraded for a few probe cycles: probes fail, daemon stays up
        time.sleep(0.3)
        harness.assert_degraded(True)
        harness.check_no_read_failures()
        harness.plan.heal()
        return _finish(harness)
    finally:
        stop.set()
        harness.teardown()


def scenario_memory_ceiling(root: str) -> dict:
    """A tiny heap budget: oversized load sheds busy-style with a
    retry-after hint, the watchdog squeezes the cache back under budget,
    and writes succeed again without a restart."""
    # the budget must clear the boot working set (a few KB of stdlib and
    # system objects) but be small enough that the bulk load blows it
    harness = ExhaustionHarness(
        root, mem_budget_bytes=16_384, mem_watchdog_interval=0.05,
    )
    stop = threading.Event()
    try:
        harness.start_read_poller(stop)
        saw_memory_busy = False
        with connect(harness.server.port) as db:
            for index in range(60):
                try:
                    # raw request: single-shot, so the typed rejection is
                    # observable instead of absorbed by the retry layer
                    db.request("set", root=f"bulk{index}", value="x" * 1024)
                except BusyError as exc:
                    if exc.details.get("reason") != "memory":
                        raise
                    saw_memory_busy = True
                    if exc.details.get("retry_after") is None:
                        raise ExhaustError("memory rejection has no retry_after")
                    break
        if not saw_memory_busy:
            raise ExhaustError("memory budget never rejected a write")
        # the watchdog sheds cache below budget; then writes flow again
        deadline = time.monotonic() + 5.0
        recovered = False
        with connect(harness.server.port) as db:
            while time.monotonic() < deadline:
                try:
                    db.set("after-shed", 1)
                except BusyError:
                    time.sleep(0.05)
                else:
                    recovered = True
                    break
        if not recovered:
            raise ExhaustError("writes never recovered after memory shedding")
        harness.acked["after-shed"] = 1
        harness.attempted.setdefault("after-shed", set()).add(1)
        harness.check_no_read_failures()
        harness.assert_alive()
        info = harness.ping()
        if info.get("degraded"):
            raise ExhaustError("memory pressure must not flip degraded mode")
        harness.server.stop()
        return harness.verify_image()
    finally:
        stop.set()
        harness.teardown()


def scenario_open_loop_overload(root: str) -> dict:
    """Open-loop flood of slow requests against a tiny pool: introspection
    (fast lane) keeps answering, excess load sheds with typed errors
    (backpressure/overloaded), nothing hangs, shutdown is clean."""
    harness = ExhaustionHarness(
        root, workers=1, queue_size=4, queue_wait_limit=0.2,
    )
    errors: dict[str, int] = {}
    errors_lock = threading.Lock()
    stop = threading.Event()
    try:
        def flooder() -> None:
            with connect(harness.server.port) as db:
                while not stop.is_set():
                    try:
                        db.request("sleep", seconds=0.15)
                    except ServerError as exc:
                        with errors_lock:
                            errors[exc.code] = errors.get(exc.code, 0) + 1
                    except ClientError:
                        return

        threads = [
            threading.Thread(target=flooder, name=f"flood-{i}", daemon=True)
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        # under full overload, ping and stats must answer promptly
        slow_pings = 0
        with connect(harness.server.port) as db:
            for _ in range(20):
                started = time.monotonic()
                db.ping()
                db.stats()
                if time.monotonic() - started > 1.0:
                    slow_pings += 1
                time.sleep(0.05)
        if slow_pings:
            raise ExhaustError(
                f"{slow_pings}/20 introspection rounds took >1s under overload"
            )
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
            if thread.is_alive():
                raise ExhaustError("flooder hung — a connection wedged")
        with errors_lock:
            shed = errors.get("backpressure", 0) + errors.get("overloaded", 0)
        if not shed:
            raise ExhaustError(f"overload never shed a request (errors: {errors})")
        harness.assert_alive()
        harness.server.stop()
        report = fsck_image(harness.image)
        if not report.ok:
            raise ExhaustError("image failed fsck after the overload")
        return {"shed": shed, "errors": dict(errors)}
    finally:
        stop.set()
        harness.teardown()


def _measure_commit_writes(harness: ExhaustionHarness, db, key: str, value) -> int:
    """Count the write ops of one steady-state single-key commit."""
    plan = harness.plan
    plan.record_ops = True
    before = len(plan.op_log)
    db.set(key, value)
    writes = plan.op_log[before:].count("write")
    plan.record_ops = False
    return writes


def scenario_negative_control(root: str) -> dict:
    """Degraded mode OFF: the torn-write resurrection MUST be detected.

    A steady-state single-key commit's write sequence is: payload chain,
    table chain, (data fsync), the header-slot write, (the commit-point
    fsync), then the free-list resync — free-list record and a second
    header-slot write.  Failing the *first header-slot write* (the last
    write before the commit point — position ``W-2`` of a ``W``-write
    commit, measured on an identical steady-state commit; the last two
    writes belong to the post-commit free-list sync) leaves durable
    state untouched but the in-memory table torn.  Without
    ``rollback_to_durable`` the next successful commit publishes that
    table — resurrecting the value the client was told had failed.  The
    check must catch exactly that; CI inverts this script's exit code.
    """
    harness = ExhaustionHarness(root, unsafe_no_degraded=True)
    try:
        with connect(harness.server.port) as db:
            db.set("ctrl", 100)   # acked
            db.set("ctrl", 140)   # warm-up: free list reaches steady state
            # identical-size commits in steady state: same write count as
            # the armed one (pages come from the free list, no growth);
            # measure twice and demand agreement so the arming is exact
            writes = _measure_commit_writes(harness, db, "ctrl", 150)
            again = _measure_commit_writes(harness, db, "ctrl", 160)
            if writes != again or writes < 4:
                raise ExhaustError(
                    f"commit write count unstable ({writes} vs {again}); "
                    "cannot arm the header-write failure deterministically"
                )
            # W-2: the pre-commit-point header-slot write (W-1 and W are
            # the post-commit free-list record + second header write)
            harness.plan.arm_write_failure(writes - 2)
            try:
                db.set("ctrl", 200)  # fails: the client is told "no"
            except (ClientError, ServerError):
                pass
            else:
                raise ExhaustError("armed write failure did not fail the write")
            db.set("other", 1)  # unrelated commit publishes the torn table
            resurrected = db.get("ctrl")["ctrl"]
        harness.server.stop()
        if resurrected == 200:
            raise ExhaustError(
                "torn write resurrected: a value the client was told had "
                "failed became visible after an unrelated commit"
            )
        return {"ctrl": resurrected}
    finally:
        harness.teardown()


def build_scenarios(quick: bool = False) -> list[tuple[str, callable]]:
    """The sweep: (name, thunk(root)) pairs — write/fsync one-shot faults
    across op positions and errnos, a persistent outage per errno, the
    memory ceiling and the open-loop overload."""
    scenarios: list[tuple[str, callable]] = []

    def add(name, fn, *args, **kwargs):
        scenarios.append((name, lambda root, a=args, k=kwargs: fn(root, *a, **k)))

    errnos = {"enospc": errno.ENOSPC, "eio": errno.EIO, "edquot": errno.EDQUOT}
    if quick:
        errnos = {"enospc": errno.ENOSPC, "eio": errno.EIO}
    nths = [1, 2] if quick else [1, 2, 3, 5, 8]
    for label, code in errnos.items():
        for kind in ("write", "fsync"):
            for nth in nths:
                add(f"one-shot/{kind}/{label}/n{nth}",
                    scenario_one_shot, kind, nth, code)
        add(f"outage/{label}", scenario_persistent_outage, code)
    add("memory/ceiling", scenario_memory_ceiling)
    add("overload/open-loop", scenario_open_loop_overload)
    return scenarios


def run_sweep(
    root: str,
    quick: bool = False,
    negative_control: bool = False,
    progress=None,
) -> dict:
    """Run the sweep (or just the negative control); returns the report."""
    if negative_control:
        scenarios = [("negative-control/no-degraded", scenario_negative_control)]
    else:
        scenarios = build_scenarios(quick=quick)
    results: list[ScenarioResult] = []
    for index, (name, thunk) in enumerate(scenarios):
        _SCENARIOS.inc()
        scenario_root = os.path.join(root, f"s{index:03d}")
        started = time.monotonic()
        try:
            checks = thunk(scenario_root)
            result = ScenarioResult(
                name, True, elapsed_s=time.monotonic() - started, checks=checks
            )
        except Exception as exc:
            _FAILURES.inc()
            result = ScenarioResult(
                name,
                False,
                detail=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.monotonic() - started,
            )
        results.append(result)
        if progress is not None:
            progress(index + 1, len(scenarios), result)
    failed = [r for r in results if not r.ok]
    return {
        "scenarios": len(results),
        "passed": len(results) - len(failed),
        "failed": len(failed),
        "failures": [r.as_dict() for r in failed],
        "results": [r.as_dict() for r in results],
    }
