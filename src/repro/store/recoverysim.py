"""Disaster-recovery chaos harness: backup, restore, scrub and repair.

The crash (:mod:`repro.store.crashsim`) and exhaustion
(:mod:`repro.store.exhaustsim`) harnesses prove the *image* survives; this
one proves the operator can get data back when the image itself is the
casualty — an operator error committed durably (a poison write), bit rot
on a cold replica page, or a machine lost mid-backup/mid-restore:

1. **point-in-time restore beats a poison write** — under live traffic a
   full backup plus rolling incrementals accumulate; after a poison write
   lands (acked, durable, replicated — undo is not an option) a restore
   to the pre-poison version must be *digest-identical* to an oracle
   captured at that commit boundary, and no write acked after the restore
   point may survive into the restored image;
2. **scrub + anti-entropy converge a rotten replica** — a flipped byte on
   a cold page is found by the background scrub (not by a lucky read),
   flips the replica into degraded read-only mode, and anti-entropy
   repair re-fetches only the diverged OID buckets from the primary — a
   clean re-scrub exits degraded mode, without a full snapshot resync;
3. **a crash mid-backup or mid-restore never publishes a bad artifact** —
   both paths build under temporary names and rename only after fsck, so
   an injected I/O failure leaves either nothing or the previous good
   artifact, and a retry succeeds.

:func:`scenario_negative_control` re-runs the point-in-time flow with the
archiver's fsync *disabled* over a write-back fault plan (buffered segment
bytes die with the "machine"): the restore point is lost and the restore
MUST fail — CI inverts the invocation, so a passing negative control
means the lost-restore-point detector is broken.

Wired as ``scripts/recovery_sim.py`` / ``make recovery-sim``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs.metrics import METRICS
from repro.server.client import ClientError, ServerError, connect
from repro.server.daemon import ReproServer, ServerConfig
from repro.store.faults import FaultPlan
from repro.store.fsck import fsck_image
from repro.store.heap import HeapError, ObjectHeap
from repro.store.recovery import (
    ArchiveError,
    LogArchiver,
    backup_info,
    full_backup,
    incremental_backup,
    restore_image,
)

__all__ = [
    "RecoveryError",
    "RecoveryHarness",
    "ScenarioResult",
    "build_scenarios",
    "scenario_negative_control",
    "run_sweep",
]

_SCENARIOS = METRICS.counter("store.recoverysim.scenarios", "recovery scenarios run")
_FAILURES = METRICS.counter("store.recoverysim.failures", "recovery scenarios failed")


class RecoveryError(AssertionError):
    """A scenario invariant was violated."""


class ScenarioResult:
    def __init__(self, name, ok, detail="", elapsed_s=0.0, checks=None):
        self.name = name
        self.ok = ok
        self.detail = detail
        self.elapsed_s = elapsed_s
        self.checks = checks or {}

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": self.checks,
        }


class RecoveryHarness:
    """A replicating primary (optionally with a replica) plus recorded writes."""

    def __init__(self, root: str, replica: bool = False, **config_overrides):
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.image = os.path.join(root, "primary.tyc")
        defaults = dict(
            workers=2,
            queue_size=32,
            pgo_interval=None,
            history_interval=None,
            profile=False,
            replicate=True,
            node_id="p1",
        )
        defaults.update(config_overrides)
        self.server = ReproServer(self.image, ServerConfig(**defaults))
        self.server.start()
        self.replica: ReproServer | None = None
        if replica:
            self.replica_image = os.path.join(root, "replica.tyc")
            self.replica = ReproServer(
                self.replica_image,
                ServerConfig(
                    workers=2,
                    queue_size=32,
                    pgo_interval=None,
                    history_interval=None,
                    profile=False,
                    replica_of=("127.0.0.1", self.server.port),
                    node_id="r1",
                ),
            )
            self.replica.start()
        #: key -> last acknowledged value
        self.acked: dict[str, object] = {}

    # ------------------------------------------------------------- workload

    def write_batch(self, prefix: str, count: int, start: int = 0) -> None:
        with connect(self.server.port) as db:
            for i in range(start, start + count):
                key = f"{prefix}{i}"
                db.set(key, {"i": i, "blob": "x" * 120})
                self.acked[key] = i

    def set(self, key: str, value) -> None:
        with connect(self.server.port) as db:
            db.set(key, value)
        self.acked[key] = value

    def start_traffic(self, stop: threading.Event) -> threading.Thread:
        """A background writer that keeps commits (and archive material)
        flowing while backups run — backups must be safe against a live
        writer, not just a quiesced image."""

        def loop() -> None:
            seq = 0
            with connect(self.server.port) as db:
                while not stop.is_set():
                    seq += 1
                    try:
                        db.set("traffic", seq)
                    except (ClientError, ServerError):
                        return
                    self.acked["traffic"] = seq
                    time.sleep(0.002)

        thread = threading.Thread(target=loop, name="recovery-traffic", daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------- helpers

    def oracle(self) -> tuple[int, str]:
        """(version, logical digest) at the current commit boundary."""
        with self.server.txns.read():
            return self.server.repl_version(), self.server.heap.logical_digest()

    def backup_kwargs(self) -> dict:
        replication = self.server.replication
        return {
            "txns": self.server.txns,
            "log": replication.log if replication is not None else None,
            "archiver": self.server.archiver,
        }

    def wait_replica_caught_up(self, timeout: float = 15.0) -> None:
        if self.replica is None:
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.replica.repl_version() == self.server.repl_version():
                return
            time.sleep(0.02)
        raise RecoveryError(
            f"replica never caught up (replica at {self.replica.repl_version()}, "
            f"primary at {self.server.repl_version()})"
        )

    def flip_cold_replica_page(self) -> int:
        """Flip one byte inside a committed object's page on the replica's
        disk — bit rot no request will notice until scrub re-reads it.
        Returns the OID whose chain was rotted."""
        assert self.replica is not None
        heap = self.replica.heap
        oid = heap.committed_oids()[-1]
        head, length = heap._table[oid]
        page = heap._pager.chain_pages(head, length)[0]
        offset = page * heap._pager.header.page_size + 16
        with open(self.replica_image, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0xFF]))
        return oid

    def teardown(self) -> None:
        for server in (self.replica, self.server):
            if server is not None:
                try:
                    server.stop()
                except Exception:
                    pass


def _verify_restored(
    path: str, expected_version: int, expected_digest: str
) -> dict:
    """The restored image is fsck-clean, at the right version, digest-equal."""
    report = fsck_image(path)
    if not report.ok:
        raise RecoveryError(f"restored image failed fsck: {report.as_dict()}")
    heap = ObjectHeap(path)
    try:
        digest = heap.logical_digest()
        roots = len(heap.root_names())
    finally:
        heap.close()
    if digest != expected_digest:
        raise RecoveryError(
            f"restored digest {digest[:16]}… differs from the oracle "
            f"{expected_digest[:16]}… at version {expected_version}"
        )
    return {"digest": digest, "roots": roots}


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def scenario_pitr_poison(root: str, quick: bool = False) -> dict:
    """Rolling backups under live traffic; restore to just before a poison
    write; the result must equal the oracle bit for logical bit."""
    harness = RecoveryHarness(root)
    dest = os.path.join(root, "backups")
    out = os.path.join(root, "restored.tyc")
    stop = threading.Event()
    batches = 2 if quick else 4
    try:
        harness.write_batch("seed", 10 if quick else 25)
        traffic = harness.start_traffic(stop)
        full = full_backup(harness.image, dest, **harness.backup_kwargs())
        for round_no in range(batches):
            harness.write_batch("roll", 5, start=round_no * 5)
            incremental_backup(harness.image, dest, **harness.backup_kwargs())
        harness.set("victim", "clean")
        stop.set()
        traffic.join(timeout=10)
        # the oracle: the exact committed state the operator wants back
        oracle_version, oracle_digest = harness.oracle()
        # the disaster: an acked, durable, poison write — undo is not an option
        harness.set("victim", "POISON")
        harness.write_batch("after", 5)
        incremental_backup(harness.image, dest, **harness.backup_kwargs())
        restored = restore_image(dest, out, to_version=oracle_version)
        if restored["restored_version"] != oracle_version:
            raise RecoveryError(
                f"restore stopped at {restored['restored_version']}, "
                f"asked for {oracle_version}"
            )
        checks = _verify_restored(out, oracle_version, oracle_digest)
        # no write acked after the restore point may survive restore
        heap = ObjectHeap(out)
        try:
            victim = heap.load_root("victim")
            missing = [k for k in ("after0", "after4") if k not in heap.root_names()]
        finally:
            heap.close()
        if victim != "clean":
            raise RecoveryError(f"poison survived the restore: victim={victim!r}")
        if len(missing) != 2:
            raise RecoveryError("post-restore-point roots survived the restore")
        return {
            "base_version": full["base_version"],
            "restore_point": oracle_version,
            "records_applied": restored["records_applied"],
            **checks,
        }
    finally:
        stop.set()
        harness.teardown()


def scenario_bitrot_repair(root: str, quick: bool = False) -> dict:
    """Cold-page rot on a replica: scrub detects, degraded flips, repair
    converges from the primary bucket-by-bucket, clean re-scrub recovers."""
    harness = RecoveryHarness(root, replica=True)
    try:
        # enough keys that the committed OIDs span several >>OID_BUCKET_BITS
        # buckets — otherwise one diverged bucket IS the whole image and the
        # "no full resync" assertion below is vacuous
        harness.write_batch("data", 40 if quick else 80)
        harness.wait_replica_caught_up()
        replica = harness.replica
        total_oids = len(replica.heap.committed_oids())
        rotted = harness.flip_cold_replica_page()
        final = replica.run_scrub_cycle()
        info = replica.scrub_info()
        if info["corrupt_total"] < 1:
            raise RecoveryError("scrub never detected the flipped page")
        repair = info["last_repair"]
        if not repair or not repair.get("converged"):
            raise RecoveryError(f"anti-entropy repair did not converge: {repair}")
        if repair["objects_applied"] >= total_oids:
            raise RecoveryError(
                f"repair re-fetched {repair['objects_applied']}/{total_oids} "
                "objects — that is a full resync, not anti-entropy"
            )
        if not final["clean"]:
            raise RecoveryError(f"re-scrub after repair still dirty: {final}")
        if replica.degraded_info()["active"]:
            raise RecoveryError("replica still degraded after a clean re-scrub")
        # both sides agree again, via the wire op a cluster client would use
        with connect(harness.server.port) as db:
            primary_root = db.request("repl.digest")["root"]
        with connect(replica.port) as db:
            replica_root = db.request("repl.digest")["root"]
        if primary_root != replica_root:
            raise RecoveryError("digest roots still diverge after repair")
        return {
            "rotted_oid": rotted,
            "total_oids": total_oids,
            "objects_refetched": repair["objects_applied"],
            "buckets_refetched": repair["buckets_fetched"],
            "repairs": info["repairs"],
        }
    finally:
        harness.teardown()


def scenario_crash_mid_backup(root: str, nth: int) -> dict:
    """An I/O failure mid-copy must leave no published base image; the
    retry after healing succeeds and restores cleanly."""
    harness = RecoveryHarness(root)
    dest = os.path.join(root, "backups")
    plan = FaultPlan()
    try:
        harness.write_batch("seed", 15)
        plan.arm_write_failure(nth)
        try:
            full_backup(
                harness.image,
                dest,
                **harness.backup_kwargs(),
                file_factory=plan.file_factory,
            )
        except (OSError, ArchiveError):
            pass
        else:
            raise RecoveryError("armed write failure did not fail the backup")
        # A crash before the fsck gate leaves at most a .partial temp file.
        # A crash after it may leave a (verified) base image but must NOT
        # leave a backup that claims completeness: backup.json is written
        # last, so backup_info() has to refuse the directory either way.
        base = os.path.join(dest, "base.tyc")
        if os.path.exists(base):
            check = fsck_image(base)
            if not check.ok:
                raise RecoveryError(
                    "crashed backup published a non-fsck-clean base image"
                )
            try:
                backup_info(dest)
            except (OSError, ArchiveError):
                pass
            else:
                raise RecoveryError(
                    "crashed backup left a directory that claims completeness"
                )
        plan.heal()
        oracle_version, oracle_digest = harness.oracle()
        full_backup(harness.image, dest, **harness.backup_kwargs())
        out = os.path.join(root, "restored.tyc")
        restore_image(dest, out)
        checks = _verify_restored(out, oracle_version, oracle_digest)
        return {"nth": nth, **checks}
    finally:
        harness.teardown()


def scenario_crash_mid_restore(root: str, nth: int) -> dict:
    """An I/O failure mid-replay must leave no image at the destination;
    the retry succeeds, fsck-clean and digest-equal to the oracle."""
    harness = RecoveryHarness(root)
    dest = os.path.join(root, "backups")
    out = os.path.join(root, "restored.tyc")
    plan = FaultPlan()
    try:
        harness.write_batch("seed", 10)
        full_backup(harness.image, dest, **harness.backup_kwargs())
        harness.write_batch("more", 10)
        incremental_backup(harness.image, dest, **harness.backup_kwargs())
        oracle_version, oracle_digest = harness.oracle()
        plan.arm_write_failure(nth)
        try:
            restore_image(dest, out, file_factory=plan.file_factory)
        except (OSError, ArchiveError, HeapError):
            pass
        else:
            raise RecoveryError("armed write failure did not fail the restore")
        if os.path.exists(out):
            raise RecoveryError("crashed restore published an image")
        plan.heal()
        restored = restore_image(dest, out)
        checks = _verify_restored(out, oracle_version, oracle_digest)
        return {"nth": nth, "records_applied": restored["records_applied"], **checks}
    finally:
        harness.teardown()


def scenario_negative_control(root: str) -> dict:
    """Archive fsync OFF over a write-back disk: the restore point MUST be
    lost.  The sealed segment's bytes sit in the "page cache" (the fault
    plan's pending buffer) and die with the machine; the manifest still
    promises the versions, so the restore hits a hole.  This scenario
    asserts the restore *succeeds* — with the protection disabled it
    cannot, so the sweep exits 1 and CI inverts the invocation."""
    harness = RecoveryHarness(root, archive=False)  # the daemon must not seal durably
    dest = os.path.join(root, "backups")
    out = os.path.join(root, "restored.tyc")
    plan = FaultPlan(writeback=True)

    def segment_factory(path: str, mode: str):
        # segment payloads ride the write-back "page cache" and die
        # unsynced; the small manifest write happens to hit the platter —
        # the realistic partial-durability crash an fsync would prevent
        if ".tylg" in os.path.basename(path):
            return plan.file_factory(path, mode)
        return open(path, mode)

    unsafe = LogArchiver(harness.image, fsync=False, file_factory=segment_factory)
    try:
        harness.write_batch("seed", 10)
        log = harness.server.replication.log
        full_backup(
            harness.image, dest, txns=harness.server.txns, log=log, archiver=unsafe
        )
        harness.write_batch("roll", 10)
        harness.set("victim", "clean")
        oracle_version, oracle_digest = harness.oracle()
        harness.set("victim", "POISON")
        incremental_backup(
            harness.image, dest, txns=harness.server.txns, log=log, archiver=unsafe
        )
        plan.close_all()  # the crash: unsynced segment bytes are gone
        restored = restore_image(dest, out, to_version=oracle_version)
        checks = _verify_restored(out, oracle_version, oracle_digest)
        return {"restore_point": oracle_version, **restored, **checks}
    finally:
        harness.teardown()


def build_scenarios(quick: bool = False) -> list[tuple[str, callable]]:
    """(name, thunk(root)) pairs: the PITR flow, bit-rot repair, and the
    crash-mid-backup / crash-mid-restore injections at several positions."""
    scenarios: list[tuple[str, callable]] = []

    def add(name, fn, *args, **kwargs):
        scenarios.append((name, lambda root, a=args, k=kwargs: fn(root, *a, **k)))

    add("pitr/poison-restore", scenario_pitr_poison, quick)
    add("bitrot/scrub-repair", scenario_bitrot_repair, quick)
    nths = [2] if quick else [1, 2, 6]
    for nth in nths:
        add(f"crash/mid-backup/n{nth}", scenario_crash_mid_backup, nth)
    for nth in nths:
        add(f"crash/mid-restore/n{nth}", scenario_crash_mid_restore, nth)
    return scenarios


def run_sweep(
    root: str,
    quick: bool = False,
    negative_control: bool = False,
    progress=None,
) -> dict:
    """Run the sweep (or just the negative control); returns the report."""
    if negative_control:
        scenarios = [("negative-control/no-archive-fsync", scenario_negative_control)]
    else:
        scenarios = build_scenarios(quick=quick)
    results: list[ScenarioResult] = []
    for index, (name, thunk) in enumerate(scenarios):
        _SCENARIOS.inc()
        scenario_root = os.path.join(root, f"s{index:03d}")
        started = time.monotonic()
        try:
            checks = thunk(scenario_root)
            result = ScenarioResult(
                name, True, elapsed_s=time.monotonic() - started, checks=checks
            )
        except Exception as exc:
            _FAILURES.inc()
            result = ScenarioResult(
                name,
                False,
                detail=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.monotonic() - started,
            )
        results.append(result)
        if progress is not None:
            progress(index + 1, len(scenarios), result)
    failed = [r for r in results if not r.ok]
    return {
        "scenarios": len(results),
        "passed": len(results) - len(failed),
        "failed": len(failed),
        "failures": [r.as_dict() for r in failed],
        "results": [r.as_dict() for r in results],
    }
