"""Disaster recovery: commit-log archiving, backup and point-in-time restore.

The paper's premise — one persistent image holding code *and* data — makes
the image a single point of total loss.  Crash recovery (shadow paging),
replication and degraded mode protect against process death, node loss and
disk faults, but three disaster classes need *history*, not redundancy:

* a logically bad committed write (operator error, buggy client) is
  faithfully replicated everywhere — only replay-to-a-point undoes it;
* silent bit rot on cold pages survives until something reads them;
* ``CommitLog.reset()`` discards records, so the log alone is not history.

This module closes the history gap with three cooperating pieces:

**Continuous archiving** — :class:`LogArchiver` seals commit-log records
into checksummed archive segments (``IMAGE.archive/NNNNNN.tylg``, the same
TYLG framing + CRC32 the live log uses) before they can be destroyed.  It
hooks :attr:`CommitLog.retention` (invoked by ``reset()``) so the only
operation that discards records archives them first, and it can seal the
live tail on demand (incremental backup).  A JSON manifest records
``[first_version, last_version, term]`` per segment and the high-water
``sealed_version``; every write is fsync + atomic-rename.

**Backup** — :func:`full_backup` copies the image page-for-page at a
commit boundary (hold a read transaction on a live server: commits are
excluded, so the file is static) and refuses to publish a copy that does
not pass :func:`repro.store.fsck.fsck_image`.  :func:`incremental_backup`
seals the live log tail and ships only the archive segments the backup
directory does not have yet.

**Point-in-time restore** — :func:`restore_image` replays archived
:class:`ChangeRecord`s through :meth:`ObjectHeap.apply_changes` onto the
base copy, stopping at ``--to-version``/``--to-ts``, and publishes the
result only after it fscks clean.  Both backup and restore build their
artifact under a temporary name and ``os.replace`` it into place, so a
crash mid-way never leaves a non-fsck-clean artifact at the final path.
"""

from __future__ import annotations

import json
import os
import time
import threading

from repro.obs.metrics import METRICS
from repro.store.checksum import crc32
from repro.store.commitlog import (
    _FRAME,
    _HEADER,
    LOG_FORMAT,
    MAGIC,
    ChangeRecord,
    CommitLog,
    CommitLogError,
)
from repro.store.fsck import fsck_image
from repro.store.heap import ObjectHeap

__all__ = [
    "ArchiveError",
    "LogArchiver",
    "archive_dir",
    "commitlog_path",
    "iter_archive",
    "load_manifest",
    "full_backup",
    "incremental_backup",
    "restore_image",
    "backup_info",
]

_SEALS = METRICS.counter("store.archive.seals", "archive segments sealed")
_SEALED_RECORDS = METRICS.counter(
    "store.archive.records", "change records sealed into archive segments"
)
_SEALED_BYTES = METRICS.counter(
    "store.archive.bytes", "record payload bytes sealed into archive segments"
)
_ARCHIVE_ERRORS = METRICS.counter(
    "store.archive.errors", "archive seal attempts that failed"
)
_BACKUPS = METRICS.counter("store.recovery.backups", "backups taken (full + incremental)")
_RESTORES = METRICS.counter("store.recovery.restores", "restores completed")
_REPLAYED = METRICS.counter(
    "store.recovery.records_replayed", "archived records replayed by restores"
)

MANIFEST_FORMAT = 1
MANIFEST_NAME = "manifest.json"
BACKUP_META_NAME = "backup.json"
BASE_IMAGE_NAME = "base.tyc"
#: the committed ``__replication__`` root (mirrors
#: repro.server.replication.REPL_ROOT without a store→server import)
_REPL_ROOT = "__replication__"
#: bytes copied per write while duplicating an image (small enough that a
#: fault plan's per-op crash points land *inside* a backup/restore copy)
_COPY_CHUNK = 64 * 1024


class ArchiveError(Exception):
    """Corrupt/missing archive state or an invalid backup/restore request."""


def archive_dir(image_path: str | os.PathLike) -> str:
    """The archive directory of an image (``IMAGE.archive/``)."""
    return os.fspath(image_path) + ".archive"


def commitlog_path(image_path: str | os.PathLike) -> str:
    """The sidecar commit log of an image (``IMAGE.commitlog``)."""
    return os.fspath(image_path) + ".commitlog"


# --------------------------------------------------------------- file plumbing


def _open_file(path: str, mode: str, file_factory=None):
    return file_factory(path, mode) if file_factory is not None else open(path, mode)


def _fsync_file(f) -> None:
    # FaultFile exposes fsync() (routing through the fault plan); plain
    # binary files need flush + os.fsync
    if hasattr(f, "fsync"):
        f.fsync()
    else:
        f.flush()
        os.fsync(f.fileno())


def _fsync_dir(path: str) -> None:
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(
    path: str, data: bytes, *, fsync: bool = True, file_factory=None
) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + atomic rename."""
    tmp = path + ".tmp"
    f = _open_file(tmp, "wb", file_factory)
    try:
        for off in range(0, len(data), _COPY_CHUNK):
            f.write(data[off : off + _COPY_CHUNK])
        if fsync:
            _fsync_file(f)
    finally:
        f.close()
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(os.path.dirname(path))


def _copy_file(
    src: str, dst: str, *, fsync: bool = True, file_factory=None
) -> int:
    """Copy ``src`` to ``dst`` (non-atomic; callers rename afterwards)."""
    total = 0
    out = _open_file(dst, "wb", file_factory)
    try:
        with open(src, "rb") as inp:
            while True:
                chunk = inp.read(_COPY_CHUNK)
                if not chunk:
                    break
                out.write(chunk)
                total += len(chunk)
        if fsync:
            _fsync_file(out)
    finally:
        out.close()
    return total


# -------------------------------------------------------------------- manifest


def load_manifest(directory: str) -> dict:
    """The archive manifest of ``directory`` (empty defaults when absent)."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    except FileNotFoundError:
        return {"format": MANIFEST_FORMAT, "sealed_version": 0, "segments": []}
    except (OSError, json.JSONDecodeError) as exc:
        raise ArchiveError(f"corrupt archive manifest {path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise ArchiveError(f"unsupported archive manifest format in {path!r}")
    manifest.setdefault("sealed_version", 0)
    manifest.setdefault("segments", [])
    return manifest


def _store_manifest(
    directory: str, manifest: dict, *, fsync: bool = True, file_factory=None
) -> None:
    data = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    _write_atomic(
        os.path.join(directory, MANIFEST_NAME),
        data,
        fsync=fsync,
        file_factory=file_factory,
    )


# -------------------------------------------------------------------- segments


def _encode_segment(records: list[ChangeRecord]) -> bytes:
    parts = [_HEADER.pack(MAGIC, LOG_FORMAT)]
    for record in records:
        payload = record.encode()
        parts.append(_FRAME.pack(len(payload), crc32(payload)))
        parts.append(payload)
    return b"".join(parts)


def read_segment(path: str):
    """Iterate the records of one archive segment, CRC-verified.

    A torn tail (the segment was never durably sealed — e.g. the archive
    fsync was skipped and the machine died) simply ends the iteration;
    restore's contiguity check is what surfaces the resulting hole.
    """
    try:
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
            if len(head) < _HEADER.size or head[:4] != MAGIC:
                return
            while True:
                frame = f.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return
                length, stored_crc = _FRAME.unpack(frame)
                payload = f.read(length)
                if len(payload) < length or crc32(payload) != stored_crc:
                    return  # torn tail: the records end here
                try:
                    yield ChangeRecord.decode(payload)
                except CommitLogError:
                    return
    except FileNotFoundError:
        return


def iter_archive(directory: str, from_version: int = 1, to_version: int | None = None):
    """Iterate archived records with ``from_version <= version`` in order.

    Segments are visited in manifest order; overlapping version ranges
    (a tail sealed twice) are deduplicated by skipping already-yielded
    versions.  Holes are *not* filled or detected here — restore enforces
    contiguity where it matters.
    """
    manifest = load_manifest(directory)
    last_yielded = from_version - 1
    for entry in manifest["segments"]:
        first = int(entry.get("first_version", 0))
        last = int(entry.get("last_version", 0))
        if last <= last_yielded:
            continue
        if to_version is not None and first > to_version:
            break
        for record in read_segment(os.path.join(directory, str(entry["name"]))):
            if record.version <= last_yielded:
                continue
            if to_version is not None and record.version > to_version:
                return
            last_yielded = record.version
            yield record


class LogArchiver:
    """Seals commit-log records into the image's archive directory.

    Attach :meth:`seal` as the log's retention hook
    (``log.retention = archiver.seal``) for loss-proof resets, and call it
    directly to seal the live tail at backup time.  ``fsync=False`` exists
    solely for the recovery harness's negative control — it must lose a
    restore point under a simulated crash.
    """

    def __init__(
        self, image_path: str | os.PathLike, *, fsync: bool = True, file_factory=None
    ):
        self.image_path = os.fspath(image_path)
        self.directory = archive_dir(self.image_path)
        self.fsync = fsync
        self.file_factory = file_factory
        self._lock = threading.Lock()

    @property
    def sealed_version(self) -> int:
        return int(load_manifest(self.directory).get("sealed_version", 0))

    def seal(self, log: CommitLog) -> int:
        """Seal every record of ``log`` newer than ``sealed_version``.

        Returns the number of records sealed (0 when the archive is
        already caught up).  Safe to call from the retention hook and
        from a backup concurrently (internal lock).
        """
        with self._lock:
            try:
                return self._seal_locked(log)
            except OSError:
                _ARCHIVE_ERRORS.inc()
                raise

    def _seal_locked(self, log: CommitLog) -> int:
        if log.last_version is None:
            return 0
        manifest = load_manifest(self.directory)
        sealed = int(manifest.get("sealed_version", 0))
        if log.last_version <= sealed:
            return 0
        start = log.first_version
        if sealed >= start:
            start = sealed + 1
        records = list(log.read_from(start))
        if not records:
            return 0
        os.makedirs(self.directory, exist_ok=True)
        seq = int(manifest.get("next_seq", 1))
        name = f"{seq:06d}.tylg"
        data = _encode_segment(records)
        _write_atomic(
            os.path.join(self.directory, name),
            data,
            fsync=self.fsync,
            file_factory=self.file_factory,
        )
        manifest["segments"].append(
            {
                "name": name,
                "first_version": records[0].version,
                "last_version": records[-1].version,
                "term": records[-1].term,
                "records": len(records),
                "bytes": len(data),
            }
        )
        manifest["sealed_version"] = records[-1].version
        manifest["next_seq"] = seq + 1
        _store_manifest(
            self.directory,
            manifest,
            fsync=self.fsync,
            file_factory=self.file_factory,
        )
        _SEALS.inc()
        _SEALED_RECORDS.inc(len(records))
        _SEALED_BYTES.inc(len(data))
        return len(records)


# ---------------------------------------------------------------------- backup


def _image_coordinates(path: str) -> tuple[int, int, str]:
    """(version, term, logical_digest) of a closed image's committed state."""
    with ObjectHeap(path) as heap:
        version, term = _replication_version(heap)
        return version, term, heap.logical_digest()


def _replication_version(heap: ObjectHeap) -> tuple[int, int]:
    oid = heap.root(_REPL_ROOT)
    if oid is None:
        return 0, 0
    try:
        state = heap.load(oid)
    except Exception:
        return 0, 0
    if not isinstance(state, dict):
        return 0, 0
    return int(state.get("version", 0)), int(state.get("term", 0))


def backup_info(dest: str | os.PathLike) -> dict:
    """The ``backup.json`` metadata of a backup directory."""
    path = os.path.join(os.fspath(dest), BACKUP_META_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError as exc:
        raise ArchiveError(f"{os.fspath(dest)!r} holds no full backup") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ArchiveError(f"corrupt backup metadata {path!r}: {exc}") from exc


def _sync_archive(
    src_dir: str, dst_dir: str, *, fsync: bool = True, file_factory=None
) -> int:
    """Copy archive segments missing from ``dst_dir``; returns the count."""
    try:
        manifest = load_manifest(src_dir)
    except ArchiveError:
        raise
    if not manifest["segments"]:
        return 0
    os.makedirs(dst_dir, exist_ok=True)
    have = set(os.listdir(dst_dir))
    copied = 0
    for entry in manifest["segments"]:
        name = str(entry["name"])
        if name in have:
            continue
        tmp = os.path.join(dst_dir, name + ".copy")
        _copy_file(
            os.path.join(src_dir, name), tmp, fsync=fsync, file_factory=file_factory
        )
        os.replace(tmp, os.path.join(dst_dir, name))
        copied += 1
    if fsync:
        _fsync_dir(dst_dir)
    _store_manifest(dst_dir, manifest, fsync=fsync, file_factory=file_factory)
    return copied


def full_backup(
    image_path: str | os.PathLike,
    dest: str | os.PathLike,
    *,
    txns=None,
    log: CommitLog | None = None,
    archiver: LogArchiver | None = None,
    fsync: bool = True,
    file_factory=None,
) -> dict:
    """Take a full, fsck-verified backup of ``image_path`` into ``dest``.

    Pass the live server's ``txns`` (:class:`TransactionManager`) to
    snapshot at a commit boundary: the copy runs inside a read
    transaction, which excludes writers, so the page file is static for
    the duration.  The base copy is published (renamed into place) only
    after it passes fsck — a crash mid-backup leaves at most a temp file.
    """
    image_path = os.fspath(image_path)
    dest = os.fspath(dest)
    os.makedirs(dest, exist_ok=True)
    base = os.path.join(dest, BASE_IMAGE_NAME)
    tmp = base + ".partial"

    if txns is not None:
        with txns.read():
            _copy_file(image_path, tmp, fsync=fsync, file_factory=file_factory)
    else:
        _copy_file(image_path, tmp, fsync=fsync, file_factory=file_factory)

    check = fsck_image(tmp)
    if not check.ok:
        raise ArchiveError(
            f"backup copy of {image_path!r} failed fsck: "
            + "; ".join(f.message for f in check.errors[:3])
        )
    version, term, digest = _image_coordinates(tmp)
    os.replace(tmp, base)
    if fsync:
        _fsync_dir(dest)

    # ship the archive state too, so a restore from this directory alone
    # can replay past the base (segments sealed before this backup)
    if archiver is not None and log is not None:
        archiver.seal(log)
    sealed_dir = (
        archiver.directory if archiver is not None else archive_dir(image_path)
    )
    segments = 0
    if os.path.isdir(sealed_dir):
        segments = _sync_archive(
            sealed_dir,
            os.path.join(dest, "archive"),
            fsync=fsync,
            file_factory=file_factory,
        )

    meta = {
        "format": MANIFEST_FORMAT,
        "image": image_path,
        "base_version": version,
        "base_term": term,
        "base_digest": digest,
        "epoch": 1,
        "created_ts_us": int(time.time() * 1_000_000),
    }
    _write_atomic(
        os.path.join(dest, BACKUP_META_NAME),
        json.dumps(meta, indent=2, sort_keys=True).encode("utf-8"),
        fsync=fsync,
        file_factory=file_factory,
    )
    _BACKUPS.inc()
    return {
        "mode": "full",
        "base_version": version,
        "base_digest": digest,
        "segments_copied": segments,
        "dest": dest,
    }


def incremental_backup(
    image_path: str | os.PathLike,
    dest: str | os.PathLike,
    *,
    txns=None,
    log: CommitLog | None = None,
    archiver: LogArchiver | None = None,
    fsync: bool = True,
    file_factory=None,
) -> dict:
    """Ship archive segments newer than the backup's last epoch.

    Seals the live commit-log tail first (via ``log``/``archiver`` on a
    running server, or by opening the sidecar log of a quiesced image),
    then copies every segment ``dest/archive`` does not have yet.
    Requires a prior :func:`full_backup` in ``dest``.
    """
    image_path = os.fspath(image_path)
    dest = os.fspath(dest)
    meta = backup_info(dest)  # raises when there is no full backup yet

    if archiver is None:
        archiver = LogArchiver(image_path, fsync=fsync, file_factory=file_factory)
    sealed = 0
    if log is not None:
        if txns is not None:
            with txns.read():
                sealed = archiver.seal(log)
        else:
            sealed = archiver.seal(log)
    elif os.path.exists(commitlog_path(image_path)):
        with CommitLog(commitlog_path(image_path)) as sidecar:
            sealed = archiver.seal(sidecar)

    segments = 0
    if os.path.isdir(archiver.directory):
        segments = _sync_archive(
            archiver.directory,
            os.path.join(dest, "archive"),
            fsync=fsync,
            file_factory=file_factory,
        )
    meta["epoch"] = int(meta.get("epoch", 1)) + 1
    meta["last_incremental_ts_us"] = int(time.time() * 1_000_000)
    _write_atomic(
        os.path.join(dest, BACKUP_META_NAME),
        json.dumps(meta, indent=2, sort_keys=True).encode("utf-8"),
        fsync=fsync,
        file_factory=file_factory,
    )
    _BACKUPS.inc()
    return {
        "mode": "incremental",
        "sealed": sealed,
        "segments_copied": segments,
        "epoch": meta["epoch"],
        "dest": dest,
    }


# --------------------------------------------------------------------- restore


def restore_image(
    backup_dir: str | os.PathLike,
    out_image: str | os.PathLike,
    *,
    to_version: int | None = None,
    to_ts_us: int | None = None,
    force: bool = False,
    fsync: bool = True,
    file_factory=None,
) -> dict:
    """Restore an image from a backup directory, optionally to a point.

    Replays archived records onto the base full backup strictly in
    version order (``to_version`` keeps records ``<= N``; ``to_ts_us``
    keeps records committed at or before that wall-clock µs).  The
    restored image is built under a temporary name, fsck-verified, and
    only then renamed to ``out_image`` — a crash mid-restore never
    publishes a partial artifact.  Raises :class:`ArchiveError` when the
    archive cannot reach an explicitly requested ``to_version`` (a lost
    restore point — exactly what the negative control must trip).
    """
    backup_dir = os.fspath(backup_dir)
    out_image = os.fspath(out_image)
    meta = backup_info(backup_dir)
    base = os.path.join(backup_dir, BASE_IMAGE_NAME)
    if not os.path.exists(base):
        raise ArchiveError(f"backup {backup_dir!r} has no {BASE_IMAGE_NAME}")
    if os.path.exists(out_image) and not force:
        raise ArchiveError(f"{out_image!r} exists (pass force to overwrite)")
    base_version = int(meta.get("base_version", 0))
    if to_version is not None and to_version < base_version:
        raise ArchiveError(
            f"cannot restore to version {to_version}: the base full backup "
            f"is already at version {base_version} (take full backups more "
            "often, or restore from an older backup directory)"
        )

    tmp = out_image + ".restoring"
    _copy_file(base, tmp, fsync=fsync, file_factory=file_factory)
    check = fsck_image(tmp)
    if not check.ok:
        raise ArchiveError(
            f"base backup {base!r} failed fsck: "
            + "; ".join(f.message for f in check.errors[:3])
        )

    applied = 0
    last_applied = base_version
    heap = ObjectHeap(tmp, io_factory=file_factory)
    try:
        expected = base_version + 1
        for record in iter_archive(
            os.path.join(backup_dir, "archive"), from_version=expected
        ):
            if to_version is not None and record.version > to_version:
                break
            if to_ts_us is not None and record.committed_ts_us > to_ts_us:
                break
            if record.version != expected:
                raise ArchiveError(
                    f"archive gap: expected version {expected}, "
                    f"found {record.version}"
                )
            heap.apply_changes(record.objects, record.roots, record.oid_counter)
            last_applied = record.version
            expected += 1
            applied += 1
        if to_version is not None and last_applied < to_version:
            raise ArchiveError(
                f"archive only reaches version {last_applied}, cannot "
                f"restore to {to_version} (restore point lost)"
            )
        digest = heap.logical_digest()
    finally:
        heap.close()

    check = fsck_image(tmp)
    if not check.ok:
        raise ArchiveError(
            "restored image failed fsck: "
            + "; ".join(f.message for f in check.errors[:3])
        )
    os.replace(tmp, out_image)
    if fsync:
        _fsync_dir(os.path.dirname(out_image))
    _RESTORES.inc()
    _REPLAYED.inc(applied)
    return {
        "path": out_image,
        "base_version": base_version,
        "restored_version": last_applied,
        "records_applied": applied,
        "digest": digest,
    }
