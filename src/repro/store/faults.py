"""Fault-injecting file layer for durability testing.

:class:`FaultFile` is a drop-in replacement for the binary file object the
pager writes through (plug it in via ``Pager(file_factory=...)`` or
``ObjectHeap(io_factory=...)``).  An attached :class:`FaultPlan` decides,
per I/O operation, whether to:

* **crash** — raise :class:`CrashPoint` and mark the file dead (every
  further operation raises), simulating power loss at exactly that
  operation;
* **tear** the crashing write — persist only a prefix of the data before
  dying, the classic torn-sector failure;
* **short-read** — return fewer bytes than asked once (the caller must
  loop, as real ``read(2)`` demands);
* **fail an fsync** — raise ``OSError`` once, without dying;
* **fail a write** — raise ``OSError`` (carrying a configurable errno such
  as ``ENOSPC``/``EIO``) once, without dying — the disk-full model;
* **exhaust** — enter a persistent disk-full state in which *every* write
  and fsync fails until :meth:`FaultPlan.heal` is called, modelling a
  volume that stays full until an operator frees space.

Injected write/fsync failures carry :attr:`FaultPlan.fault_errno`
(``ENOSPC`` by default) so production code can exercise its errno
classification.  Besides absolute op indices (``fail_write_at``), faults
can be *armed by countdown* (:meth:`FaultPlan.arm_write_failure` /
:meth:`FaultPlan.arm_fsync_failure`: "fail the Nth write/fsync from
now") — robust against workloads whose absolute op counts drift.

Two durability models:

* *write-through* (default) — writes hit the disk file immediately, so a
  crash preserves everything written so far.  This models the most
  generous kernel (every write already flushed).
* *write-back* (``writeback=True``) — writes are buffered in memory and
  only applied to the disk file by ``fsync``.  A crash is adversarial: the
  *later half* of the pending buffer persists while the earlier half is
  lost, modelling a kernel that flushed unsynced writes out of order at
  the worst moment (only an fsync barrier between a write and its
  dependents survives this).  Reads see the process's own buffered writes,
  as the page cache would serve them.

A commit protocol is only correct if recovery succeeds under *both*
extremes (plus torn variants); :mod:`repro.store.crashsim` runs all of
them at every successive I/O operation.

Operation indices are global per :class:`FaultPlan` (shared across every
file it opens), so a "crash at op *k*" plan is deterministic for a given
workload.
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass, field

__all__ = ["CrashPoint", "FileDead", "FaultPlan", "FaultFile"]


class CrashPoint(Exception):
    """The simulated machine lost power at this I/O operation."""


class FileDead(Exception):
    """I/O after a simulated crash — the 'process' is gone."""


@dataclass
class FaultPlan:
    """Deterministic per-operation fault schedule (shared op counter)."""

    #: global I/O op index (0-based, counting reads/writes/fsyncs) to die at;
    #: None runs fault-free and simply counts
    crash_at: int | None = None
    #: when the crashing op is a write, persist the first half of it before
    #: dying (torn write) instead of dropping it entirely
    torn: bool = False
    #: buffer writes and apply them only on fsync (crash drops the buffer)
    writeback: bool = False
    #: op index at which one read returns only half the requested bytes
    short_read_at: int | None = None
    #: op index at which one fsync raises OSError (transient sync failure)
    fail_fsync_at: int | None = None
    #: op index at which one write raises OSError (transient disk-full/EIO)
    fail_write_at: int | None = None
    #: errno injected write/fsync failures carry (disk-full by default)
    fault_errno: int = _errno.ENOSPC
    #: persistent disk-full mode: every write and fsync fails until heal()
    exhausted: bool = False
    #: record the kind of every op ("read"/"write"/"fsync") in op_log, so
    #: a counting run can report how many ops of each kind a workload does
    record_ops: bool = False
    op_log: list = field(default_factory=list, repr=False)

    #: operations observed so far (read by harnesses after a counting run)
    ops: int = 0
    crashed: bool = field(default=False, init=False)
    #: every file opened through this plan (so harnesses can close the
    #: underlying OS files after a simulated crash strands them)
    files: list = field(default_factory=list, repr=False)
    #: one-shot countdowns ("fail the Nth write/fsync from now"), armed by
    #: arm_write_failure()/arm_fsync_failure()
    _write_failure_in: int | None = field(default=None, init=False, repr=False)
    _fsync_failure_in: int | None = field(default=None, init=False, repr=False)

    def file_factory(self, path: str, mode: str) -> "FaultFile":
        """Use as ``Pager(..., file_factory=plan.file_factory)``."""
        file = FaultFile(path, mode, plan=self)
        self.files.append(file)
        return file

    def close_all(self) -> None:
        """Close every file this plan opened (post-crash cleanup)."""
        for file in self.files:
            file.close()

    def arm_write_failure(self, nth: int = 1, fault_errno: int | None = None) -> None:
        """Make the ``nth`` write from now (1 = the very next) fail once."""
        if fault_errno is not None:
            self.fault_errno = fault_errno
        self._write_failure_in = max(1, int(nth))

    def arm_fsync_failure(self, nth: int = 1, fault_errno: int | None = None) -> None:
        """Make the ``nth`` fsync from now (1 = the very next) fail once."""
        if fault_errno is not None:
            self.fault_errno = fault_errno
        self._fsync_failure_in = max(1, int(nth))

    def exhaust(self, fault_errno: int | None = None) -> None:
        """Enter persistent disk-full mode: all writes and fsyncs fail."""
        if fault_errno is not None:
            self.fault_errno = fault_errno
        self.exhausted = True

    def heal(self) -> None:
        """Leave disk-full mode and disarm any pending one-shot failures."""
        self.exhausted = False
        self._write_failure_in = None
        self._fsync_failure_in = None

    def _tick(self, kind: str = "io") -> int:
        index = self.ops
        self.ops += 1
        if self.record_ops:
            self.op_log.append(kind)
        return index

    def _countdown_fires(self, kind: str) -> bool:
        attr = "_write_failure_in" if kind == "write" else "_fsync_failure_in"
        left = getattr(self, attr)
        if left is None:
            return False
        left -= 1
        setattr(self, attr, left if left > 0 else None)
        return left <= 0

    def _io_error(self, op: str) -> OSError:
        return OSError(self.fault_errno, f"simulated {op} failure")


class FaultFile:
    """File-like object routing every operation through a :class:`FaultPlan`."""

    def __init__(self, path: str, mode: str, plan: FaultPlan):
        self._file = open(path, mode)
        self._plan = plan
        self._pos = 0
        #: write-back buffer: offset -> bytes, in application order
        self._pending: dict[int, bytes] = {}
        self.closed = False

    # ------------------------------------------------------------ plumbing

    def _check_alive(self) -> None:
        if self._plan.crashed:
            raise FileDead("I/O on a crashed fault file")
        if self.closed:
            raise ValueError("I/O operation on closed file")

    def _crash(self) -> None:
        # adversarial write-back at death: the kernel may have flushed any
        # subset of unsynced writes in any order, so persist the *later*
        # half of the pending buffer while dropping the earlier half —
        # exactly the reordering that breaks a protocol whose header write
        # is not ordered after its data by an fsync
        pending = list(self._pending.items())
        for offset, buf in pending[len(pending) // 2 :]:
            self._apply(offset, buf)
        self._pending.clear()
        self._plan.crashed = True
        raise CrashPoint(f"simulated crash at I/O op {self._plan.ops - 1}")

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_alive()
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        elif whence == os.SEEK_END:
            self._pos = self._disk_size() + offset
        else:  # pragma: no cover - pager never uses other whence values
            raise ValueError(f"unsupported whence {whence}")
        return self._pos

    def tell(self) -> int:
        return self._pos

    def fileno(self) -> int:
        return self._file.fileno()

    def _disk_size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    # ----------------------------------------------------------------- read

    def read(self, count: int = -1) -> bytes:
        self._check_alive()
        index = self._plan._tick("read")
        if index == self._plan.crash_at:
            self._crash()
        if count is None or count < 0:  # pragma: no cover - pager reads sized
            count = max(self._disk_size() - self._pos, 0)
        if index == self._plan.short_read_at and count > 1:
            count //= 2  # transient short read; the caller must loop
        data = self._read_disk(self._pos, count)
        if self._plan.writeback:
            data = self._overlay(self._pos, data, count)
        self._pos += len(data)
        return data

    def _read_disk(self, offset: int, count: int) -> bytes:
        self._file.seek(offset)
        return self._file.read(count)

    def _overlay(self, offset: int, data: bytes, count: int) -> bytes:
        """Apply pending (unsynced) writes over disk bytes — the page cache."""
        end = offset + count
        span = bytearray(data)
        if len(span) < count:
            # pending writes may extend past the current on-disk EOF
            pend_end = max(
                (off + len(buf) for off, buf in self._pending.items()), default=0
            )
            span += b"\x00" * (min(end, pend_end) - offset - len(span))
        for off, buf in self._pending.items():
            lo = max(off, offset)
            hi = min(off + len(buf), offset + len(span))
            if lo < hi:
                span[lo - offset : hi - offset] = buf[lo - off : hi - off]
        return bytes(span)

    # ---------------------------------------------------------------- write

    def write(self, data: bytes) -> int:
        self._check_alive()
        plan = self._plan
        index = plan._tick("write")
        if index == plan.crash_at:
            if plan.torn and data:
                # half the sectors made it to the platter before the lights
                # went out — even in write-back mode the kernel may have
                # flushed part of an unsynced write at any time
                self._apply(self._pos, bytes(data[: max(len(data) // 2, 1)]))
            self._crash()
        if plan.exhausted or index == plan.fail_write_at or plan._countdown_fires("write"):
            raise plan._io_error("write")
        if self._plan.writeback:
            self._pending[self._pos] = bytes(data)
        else:
            self._apply(self._pos, bytes(data))
        self._pos += len(data)
        return len(data)

    def _apply(self, offset: int, data: bytes) -> None:
        size = self._disk_size()
        if offset > size:
            # sparse write past EOF: zero-fill the gap, as the OS would
            self._file.seek(size)
            self._file.write(b"\x00" * (offset - size))
        self._file.seek(offset)
        self._file.write(data)

    # ----------------------------------------------------------- durability

    def flush(self) -> None:
        self._check_alive()
        if not self._plan.writeback:
            self._file.flush()

    def fsync(self) -> None:
        self._check_alive()
        plan = self._plan
        index = plan._tick("fsync")
        if index == plan.crash_at:
            self._crash()
        if plan.exhausted or index == plan.fail_fsync_at or plan._countdown_fires("fsync"):
            raise plan._io_error("fsync")
        for offset, buf in self._pending.items():
            self._apply(offset, buf)
        self._pending.clear()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # pending (unsynced) writes die with the process model: close does
        # NOT flush them — only fsync makes data durable
        self._pending.clear()
        self._file.close()
