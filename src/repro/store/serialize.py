"""Value serialization for the persistent object store.

A compact varint-tagged binary format covering the TML runtime universe:
simple values, arrays/vectors/byte arrays, OID references, names, tuples,
dicts, raw blobs and compiled :class:`~repro.machine.isa.CodeObject` trees.
Domain objects (relations, modules, ...) plug in through the extension-codec
registry — the store stays ignorant of their structure, mirroring how the
Tycoon store treats ADT values as opaque complex objects.

Nested OID references are *swizzled* on decode when a resolver is supplied:
the reference is replaced by the referenced object (loaded through the
heap).  Codecs that must avoid eager loading (e.g. modules referencing other
modules) decode their references lazily instead.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.names import Name
from repro.core.syntax import Char, Oid, UNIT, Unit
from repro.machine.isa import CodeObject
from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector

__all__ = [
    "SerializeError",
    "Encoder",
    "Decoder",
    "encode_value",
    "decode_value",
    "register_codec",
    "write_uvarint",
    "read_uvarint",
    "Blob",
]


class SerializeError(Exception):
    """Unencodable value or corrupt record."""


class Blob:
    """An opaque byte payload stored as-is (e.g. a PTML encoding)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = bytes(data)

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Blob) and other.data == self.data

    def __hash__(self) -> int:
        return hash(self.data)

    def __repr__(self) -> str:
        return f"Blob({len(self.data)} bytes)"


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------


def write_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise SerializeError("uvarint cannot encode negatives")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


# ---------------------------------------------------------------------------
# tags
# ---------------------------------------------------------------------------

_T_UNIT = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_STR = 4
_T_CHAR = 5
_T_OID = 6
_T_ARRAY = 7
_T_VECTOR = 8
_T_BYTES = 9
_T_NONE = 10
_T_TUPLE = 11
_T_DICT = 12
_T_BLOB = 13
_T_NAME = 14
_T_CODE = 15
_T_EXT = 16
_T_BIGINT = 17  # arbitrary precision, for values outside the 64-bit range

#: Extension codecs: tag string -> (type, encode(obj, encoder), decode(decoder))
_EXT_CODECS: dict[str, tuple[type, Callable, Callable]] = {}
_EXT_BY_TYPE: dict[type, str] = {}


def register_codec(
    tag: str,
    cls: type,
    encode: Callable[[Any, "Encoder"], None],
    decode: Callable[["Decoder"], Any],
) -> None:
    """Register a domain-object codec (idempotent per tag/type pair)."""
    existing = _EXT_CODECS.get(tag)
    if existing is not None and existing[0] is not cls:
        raise SerializeError(f"codec tag {tag!r} already bound to {existing[0]}")
    _EXT_CODECS[tag] = (cls, encode, decode)
    _EXT_BY_TYPE[cls] = tag


class Encoder:
    """Streaming encoder over a growable buffer."""

    def __init__(self) -> None:
        self.buf = bytearray()

    # primitive writers -----------------------------------------------------

    def uvarint(self, value: int) -> None:
        write_uvarint(self.buf, value)

    def svarint(self, value: int) -> None:
        write_uvarint(self.buf, _zigzag(value))

    def raw(self, data: bytes) -> None:
        self.uvarint(len(data))
        self.buf += data

    def text(self, value: str) -> None:
        self.raw(value.encode("utf-8"))

    # value writer ----------------------------------------------------------

    def value(self, obj: Any) -> None:
        if obj is None:
            self.buf.append(_T_NONE)
        elif isinstance(obj, Unit):
            self.buf.append(_T_UNIT)
        elif isinstance(obj, bool):
            self.buf.append(_T_TRUE if obj else _T_FALSE)
        elif isinstance(obj, int):
            if -(1 << 63) <= obj < (1 << 63):
                self.buf.append(_T_INT)
                self.svarint(obj)
            else:
                self.buf.append(_T_BIGINT)
                self.text(str(obj))
        elif isinstance(obj, str):
            self.buf.append(_T_STR)
            self.text(obj)
        elif isinstance(obj, Char):
            self.buf.append(_T_CHAR)
            self.text(obj.value)
        elif isinstance(obj, Oid):
            self.buf.append(_T_OID)
            self.uvarint(obj.value)
        elif isinstance(obj, TmlArray):
            self.buf.append(_T_ARRAY)
            self.uvarint(len(obj.slots))
            for slot in obj.slots:
                self.value(slot)
        elif isinstance(obj, TmlVector):
            self.buf.append(_T_VECTOR)
            self.uvarint(len(obj.slots))
            for slot in obj.slots:
                self.value(slot)
        elif isinstance(obj, TmlByteArray):
            self.buf.append(_T_BYTES)
            self.raw(bytes(obj.data))
        elif isinstance(obj, tuple):
            self.buf.append(_T_TUPLE)
            self.uvarint(len(obj))
            for item in obj:
                self.value(item)
        elif isinstance(obj, dict):
            self.buf.append(_T_DICT)
            self.uvarint(len(obj))
            for key, val in obj.items():
                self.value(key)
                self.value(val)
        elif isinstance(obj, Blob):
            self.buf.append(_T_BLOB)
            self.raw(obj.data)
        elif isinstance(obj, Name):
            self.buf.append(_T_NAME)
            self.text(obj.base)
            self.uvarint(obj.uid)
            self.buf.append(1 if obj.is_cont else 0)
        elif isinstance(obj, CodeObject):
            self.buf.append(_T_CODE)
            self._code(obj)
        else:
            tag = _EXT_BY_TYPE.get(type(obj))
            if tag is None:
                raise SerializeError(f"cannot serialize {type(obj).__name__}")
            _, encode, _ = _EXT_CODECS[tag]
            self.buf.append(_T_EXT)
            self.text(tag)
            encode(obj, self)

    def _code(self, code: CodeObject) -> None:
        self.text(code.name)
        self.value(tuple(code.params))
        self.uvarint(code.nregs)
        self.value(tuple(tuple(instr) for instr in code.instrs))
        self.value(tuple(code.consts))
        self.uvarint(len(code.codes))
        for nested in code.codes:
            self._code(nested)
        self.value(tuple(code.free_names))
        self.buf.append(1 if code.is_proc else 0)
        self.value(code.ptml_ref)

    def getvalue(self) -> bytes:
        return bytes(self.buf)


class Decoder:
    """Streaming decoder; optionally swizzles OID references via ``resolver``."""

    def __init__(self, data: bytes, resolver: Callable[[Oid], Any] | None = None):
        self.data = data
        self.pos = 0
        self.resolver = resolver

    # primitive readers -----------------------------------------------------

    def uvarint(self) -> int:
        value, self.pos = read_uvarint(self.data, self.pos)
        return value

    def svarint(self) -> int:
        return _unzigzag(self.uvarint())

    def raw(self) -> bytes:
        length = self.uvarint()
        if self.pos + length > len(self.data):
            raise SerializeError("truncated raw field")
        chunk = self.data[self.pos : self.pos + length]
        self.pos += length
        return chunk

    def text(self) -> str:
        return self.raw().decode("utf-8")

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise SerializeError("truncated byte field")
        value = self.data[self.pos]
        self.pos += 1
        return value

    # value reader ----------------------------------------------------------

    def value(self) -> Any:
        tag = self.byte()
        if tag == _T_NONE:
            return None
        if tag == _T_UNIT:
            return UNIT
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return self.svarint()
        if tag == _T_BIGINT:
            return int(self.text())
        if tag == _T_STR:
            return self.text()
        if tag == _T_CHAR:
            return Char(self.text())
        if tag == _T_OID:
            oid = Oid(self.uvarint())
            if self.resolver is not None:
                return self.resolver(oid)
            return oid
        if tag == _T_ARRAY:
            return TmlArray([self.value() for _ in range(self.uvarint())])
        if tag == _T_VECTOR:
            return TmlVector([self.value() for _ in range(self.uvarint())])
        if tag == _T_BYTES:
            return TmlByteArray(self.raw())
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self.uvarint()))
        if tag == _T_DICT:
            return {self.value(): self.value() for _ in range(self.uvarint())}
        if tag == _T_BLOB:
            return Blob(self.raw())
        if tag == _T_NAME:
            base = self.text()
            uid = self.uvarint()
            sort = "cont" if self.byte() else "val"
            return Name(base, uid, sort)
        if tag == _T_CODE:
            return self._code()
        if tag == _T_EXT:
            ext_tag = self.text()
            entry = _EXT_CODECS.get(ext_tag)
            if entry is None:
                raise SerializeError(f"unknown extension codec {ext_tag!r}")
            _, _, decode = entry
            return decode(self)
        raise SerializeError(f"unknown tag {tag}")

    def _code(self) -> CodeObject:
        name = self.text()
        params = self.value()
        nregs = self.uvarint()
        instrs = [tuple(instr) for instr in self.value()]
        consts = list(self.value())
        ncodes = self.uvarint()
        codes = [self._code() for _ in range(ncodes)]
        free_names = self.value()
        is_proc = bool(self.byte())
        # ptml_ref must stay a reference: the reflective optimizer loads the
        # PTML blob lazily, never as part of loading the code object.
        saved_resolver, self.resolver = self.resolver, None
        try:
            ptml_ref = self.value()
        finally:
            self.resolver = saved_resolver
        return CodeObject(
            name=name,
            params=params,
            nregs=nregs,
            instrs=instrs,
            consts=consts,
            codes=codes,
            free_names=free_names,
            is_proc=is_proc,
            ptml_ref=ptml_ref,
        )


def encode_value(obj: Any) -> bytes:
    encoder = Encoder()
    encoder.value(obj)
    return encoder.getvalue()


def decode_value(data: bytes, resolver: Callable[[Oid], Any] | None = None) -> Any:
    decoder = Decoder(data, resolver)
    value = decoder.value()
    if decoder.pos != len(data):
        raise SerializeError("trailing bytes after value")
    return value
