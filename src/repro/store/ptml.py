"""PTML: the compact persistent encoding of TML trees (paper section 4.1).

"For each exported source code function f in a compilation unit, the
compiler back end augments the generated code for f with a reference to a
compact persistent representation of the TML tree (Persistent TML, PTML)
for f.  At runtime, it is possible to map PTML back into TML, re-invoke the
optimizer and code-generator, link the newly-generated code into the running
program, and execute it."

Format (all integers varint):

* string table — interned identifier bases and primitive names;
* name table — (base index, uid, sort bit) triples;
* free-name list — the term's free variables in a canonical order.  These
  are the *R-value binding* identifiers the paper says the PTML→TML mapping
  returns; the runtime pairs them with the values/OIDs found in the
  procedure's closure record;
* node stream — the tree in preorder with per-node opcodes.

Encoding and decoding are fully iterative: compiled functions produce CPS
chains thousands of applications deep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.freevars import free_names
from repro.core.names import Name
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var
from repro.obs.metrics import METRICS
from repro.store.serialize import Blob, Decoder, Encoder, SerializeError

__all__ = [
    "PtmlError",
    "DecodedPtml",
    "encode_ptml",
    "decode_ptml",
    "ptml_key",
    "ptml_size",
]

_PTML_ENCODES = METRICS.counter("store.ptml.encodes", "TML→PTML encodings")
_PTML_DECODES = METRICS.counter("store.ptml.decodes", "PTML→TML decodings")
_PTML_ENCODE_BYTES = METRICS.histogram(
    "store.ptml.encode_bytes", "encoded PTML blob sizes"
)
_PTML_DECODE_BYTES = METRICS.histogram(
    "store.ptml.decode_bytes", "decoded PTML blob sizes"
)

_OP_LIT = 0
_OP_VAR = 1
_OP_ABS = 2
_OP_APP = 3
_OP_PRIM = 4


class PtmlError(SerializeError):
    """Corrupt or unsupported PTML blob."""


@dataclass(slots=True)
class DecodedPtml:
    """Result of mapping PTML back to TML.

    ``free`` lists the identifiers whose R-values must be re-established
    from the procedure's closure record before optimization (section 4.1).
    """

    term: Term
    free: tuple[Name, ...]


def encode_ptml(term: Term) -> Blob:
    """Encode a TML term as a compact persistent blob."""
    strings: list[str] = []
    string_index: dict[str, int] = {}
    names: list[Name] = []
    name_index: dict[Name, int] = {}

    def intern_string(text: str) -> int:
        index = string_index.get(text)
        if index is None:
            index = len(strings)
            strings.append(text)
            string_index[text] = index
        return index

    def intern_name(name: Name) -> int:
        index = name_index.get(name)
        if index is None:
            intern_string(name.base)
            index = len(names)
            names.append(name)
            name_index[name] = index
        return index

    # -- first pass: tables (iterative preorder) --
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            intern_name(node.name)
        elif isinstance(node, Abs):
            for param in node.params:
                intern_name(param)
            stack.append(node.body)
        elif isinstance(node, App):
            for arg in reversed(node.args):
                stack.append(arg)
            stack.append(node.fn)
        elif isinstance(node, PrimApp):
            intern_string(node.prim)
            for arg in reversed(node.args):
                stack.append(arg)

    encoder = Encoder()
    encoder.uvarint(len(strings))
    for text in strings:
        encoder.text(text)
    encoder.uvarint(len(names))
    for name in names:
        encoder.uvarint(string_index[name.base])
        encoder.uvarint(name.uid)
        encoder.buf.append(1 if name.is_cont else 0)

    ordered_free = sorted(free_names(term), key=lambda n: n.uid)
    encoder.uvarint(len(ordered_free))
    for name in ordered_free:
        encoder.uvarint(name_index[name])

    # -- second pass: node stream --
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Lit):
            encoder.buf.append(_OP_LIT)
            encoder.value(node.value)
        elif isinstance(node, Var):
            encoder.buf.append(_OP_VAR)
            encoder.uvarint(name_index[node.name])
        elif isinstance(node, Abs):
            encoder.buf.append(_OP_ABS)
            encoder.uvarint(len(node.params))
            for param in node.params:
                encoder.uvarint(name_index[param])
            stack.append(node.body)
        elif isinstance(node, App):
            encoder.buf.append(_OP_APP)
            encoder.uvarint(len(node.args))
            for arg in reversed(node.args):
                stack.append(arg)
            stack.append(node.fn)
        elif isinstance(node, PrimApp):
            encoder.buf.append(_OP_PRIM)
            encoder.uvarint(string_index[node.prim])
            encoder.uvarint(len(node.args))
            for arg in reversed(node.args):
                stack.append(arg)
        else:  # pragma: no cover - defensive
            raise PtmlError(f"not a TML term: {node!r}")

    payload = encoder.getvalue()
    _PTML_ENCODES.inc()
    _PTML_ENCODE_BYTES.observe(len(payload))
    return Blob(payload)


def decode_ptml(blob: Blob | bytes) -> DecodedPtml:
    """Map a PTML blob back to a TML term plus its R-value binding names."""
    data = blob.data if isinstance(blob, Blob) else bytes(blob)
    _PTML_DECODES.inc()
    _PTML_DECODE_BYTES.observe(len(data))
    decoder = Decoder(data)

    strings = [decoder.text() for _ in range(decoder.uvarint())]
    names: list[Name] = []
    for _ in range(decoder.uvarint()):
        base_index = decoder.uvarint()
        uid = decoder.uvarint()
        sort = "cont" if decoder.byte() else "val"
        if base_index >= len(strings):
            raise PtmlError("name base out of range")
        names.append(Name(strings[base_index], uid, sort))

    free = tuple(names[decoder.uvarint()] for _ in range(decoder.uvarint()))

    # -- node stream: iterative preorder parse with a frame stack --
    # frame: [builder_kind, meta, needed, children]
    frames: list[list] = []
    result: Term | None = None

    def complete(node: Term) -> Term | None:
        """Attach a finished node to the open frame; reduce when filled."""
        while frames:
            frame = frames[-1]
            frame[3].append(node)
            if len(frame[3]) < frame[2]:
                return None
            frames.pop()
            kind, meta, _, children = frame
            if kind == _OP_ABS:
                body = children[0]
                if not isinstance(body, (App, PrimApp)):
                    raise PtmlError("abstraction body is not an application")
                node = Abs(meta, body)
            elif kind == _OP_APP:
                fn, *args = children
                node = App(fn, tuple(args))
            else:  # _OP_PRIM
                node = PrimApp(meta, tuple(children))
        return node

    while result is None:
        if decoder.pos >= len(data):
            raise PtmlError("truncated node stream")
        op = decoder.byte()
        finished: Term | None
        if op == _OP_LIT:
            finished = complete(Lit(decoder.value()))
        elif op == _OP_VAR:
            index = decoder.uvarint()
            if index >= len(names):
                raise PtmlError("variable name out of range")
            finished = complete(Var(names[index]))
        elif op == _OP_ABS:
            count = decoder.uvarint()
            params = tuple(names[decoder.uvarint()] for _ in range(count))
            frames.append([_OP_ABS, params, 1, []])
            finished = None
        elif op == _OP_APP:
            count = decoder.uvarint()
            frames.append([_OP_APP, None, count + 1, []])
            finished = None
        elif op == _OP_PRIM:
            prim = strings[decoder.uvarint()]
            count = decoder.uvarint()
            if count == 0:
                finished = complete(PrimApp(prim, ()))
            else:
                frames.append([_OP_PRIM, prim, count, []])
                finished = None
        else:
            raise PtmlError(f"unknown PTML opcode {op}")
        if finished is not None:
            result = finished

    if decoder.pos != len(data):
        raise PtmlError("trailing bytes after node stream")
    return DecodedPtml(term=result, free=free)


def ptml_size(term: Term) -> int:
    """Byte size of the PTML encoding (the E3 experiment's measure)."""
    return len(encode_ptml(term).data)


def ptml_key(ref, heap=None) -> str | None:
    """The PTML content identity: ``sha256`` of the encoded blob bytes.

    ``ref`` may be a :class:`Blob`, a store OID (resolved through ``heap``),
    or any object with a ``ptml_ref`` attribute (a
    :class:`~repro.machine.isa.CodeObject`).  Two functions with the same
    key have byte-identical PTML and therefore identical observable
    behavior — the keying invariant shared by the server's compiled-code
    cache and the persisted analysis-fact cache.  Returns None when no PTML
    is attached or the reference cannot be resolved.
    """
    import hashlib

    if ref is not None and not isinstance(ref, Blob) and hasattr(ref, "ptml_ref"):
        ref = ref.ptml_ref
    if ref is None:
        return None
    if not isinstance(ref, Blob):
        if heap is None:
            return None
        try:
            ref = heap.load(ref)
        except Exception:
            return None
        if not isinstance(ref, Blob):
            return None
    return hashlib.sha256(ref.data).hexdigest()
