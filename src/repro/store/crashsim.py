"""Exhaustive crash-point simulation — SQLite-style durability proof.

The harness answers one question: *is there any single I/O operation at
which a crash leaves the image in a third state* — neither the last
committed state nor the next one?  It answers by brute force:

1. build a pristine baseline image fault-free;
2. replay a multi-commit workload once through a counting
   :class:`~repro.store.faults.FaultPlan` to learn the total number of
   I/O operations *N* and capture the expected heap state after every
   commit;
3. for each failure mode (write-through, torn write, write-back, and
   write-back + torn) and each crash point ``k in 0..N-1``, replay the
   workload against a fresh copy of the baseline with a simulated crash
   at operation *k*, then **reopen the image with the real, fault-free
   file layer** and assert that
   - recovery succeeds (the image is never bricked),
   - the recovered roots equal the state after commit *c* or commit
     *c+1*, where *c* is the number of commits that completed before the
     crash (no third state), and
   - the recovered image still accepts a fresh commit (a crash must not
     poison the free list or allocator);
4. optionally run :func:`repro.store.fsck.fsck_image` over every
   recovered image and require zero integrity errors (leaked pages are
   expected after a crash and are *not* errors).

The workload is deterministic, so "crash at op *k*" names a unique
machine state; the sweep over *k* is exhaustive by construction.  Run it
from the command line via ``scripts/crash_sim.py`` (the CI ``crash-sim``
job does) or from tests via :func:`run_crash_sim`.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.metrics import METRICS
from repro.store.faults import CrashPoint, FaultPlan
from repro.store.heap import ObjectHeap

__all__ = ["CrashSimReport", "default_workload", "run_crash_sim", "MODES"]

_SCENARIOS = METRICS.counter(
    "store.crashsim.scenarios", "crash-point scenarios executed"
)
_FAILURES = METRICS.counter(
    "store.crashsim.failures", "crash-point scenarios that broke durability"
)

#: the four failure models: every write durable immediately; the crashing
#: write half-persisted; nothing durable but what was fsynced; and both.
MODES = ("writethrough", "torn", "writeback", "writeback-torn")

#: one workload step: mutate the heap (the harness commits after each).
#: ``state`` carries OIDs between steps.
Step = Callable[[ObjectHeap, dict], None]


def default_workload() -> list[Step]:
    """A five-commit workload covering store/update/rebind/chain-release.

    Values are codec-native (ints, strs, tuples, dicts); the big string
    spans several pages so commits exercise multi-page chains, and the
    shrinking update forces page releases through the free list.
    """

    def s1(heap: ObjectHeap, state: dict) -> None:
        state["a"] = heap.store(("alpha", 1))
        heap.set_root("a", state["a"])

    def s2(heap: ObjectHeap, state: dict) -> None:
        state["blob"] = heap.store("B" * 3000)
        heap.set_root("blob", state["blob"])

    def s3(heap: ObjectHeap, state: dict) -> None:
        heap.update(state["a"], ("alpha", 2, "mutated"))
        heap.set_root("b", heap.store({"k": "v", "n": 7}))

    def s4(heap: ObjectHeap, state: dict) -> None:
        # shrink the blob: its old multi-page chain is released, pushing
        # pages through the shadow-paged free list
        heap.update(state["blob"], "C" * 900)
        heap.set_root("c", heap.store(tuple(range(50))))

    def s5(heap: ObjectHeap, state: dict) -> None:
        heap.set_root("a", heap.store("rebound"))

    return [s1, s2, s3, s4, s5]


@dataclass
class CrashSimReport:
    """Outcome of an exhaustive sweep (JSON-friendly via :meth:`as_dict`)."""

    page_size: int
    io_ops: int = 0
    commits: int = 0
    modes: tuple[str, ...] = MODES
    scenarios: int = 0
    fsck_runs: int = 0
    duration_s: float = 0.0
    #: one dict per broken scenario: mode, crash_at, commits_done, error
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "page_size": self.page_size,
            "io_ops_per_run": self.io_ops,
            "commits": self.commits,
            "modes": list(self.modes),
            "scenarios": self.scenarios,
            "fsck_runs": self.fsck_runs,
            "duration_s": round(self.duration_s, 3),
            "failures": self.failures,
        }


def _snapshot(heap: ObjectHeap) -> dict[str, Any]:
    """The observable durable state: every root's loaded value."""
    return {
        name: heap.load_root(name)
        for name in heap.root_names()
        if not name.startswith("__")
    }


def run_crash_sim(
    workdir: str | os.PathLike,
    page_size: int = 256,
    modes: Sequence[str] = MODES,
    workload: Sequence[Step] | None = None,
    fsck: bool = True,
    max_failures: int = 20,
) -> CrashSimReport:
    """Sweep every crash point in every failure mode; see module docstring.

    ``max_failures`` bounds the recorded failure detail (the counts in the
    report stay exact).  Pass ``fsck=False`` to skip the per-scenario
    integrity check (it roughly doubles the runtime).
    """
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown crash-sim mode {mode!r}")
    steps = list(workload) if workload is not None else default_workload()
    workdir = os.fspath(workdir)
    os.makedirs(workdir, exist_ok=True)
    baseline = os.path.join(workdir, "baseline.tyc")
    scratch = os.path.join(workdir, "scenario.tyc")
    started = time.monotonic()

    # 1. pristine baseline image, built fault-free
    if os.path.exists(baseline):
        os.remove(baseline)
    ObjectHeap(baseline, page_size).close()

    # 2. counting run: learn N and the expected state after each commit
    report = CrashSimReport(page_size=page_size, modes=tuple(modes))
    shutil.copyfile(baseline, scratch)
    count_plan = FaultPlan()
    heap = ObjectHeap(scratch, page_size, io_factory=count_plan.file_factory)
    states: list[dict[str, Any]] = [_snapshot(heap)]
    state: dict = {}
    for step in steps:
        step(heap, state)
        heap.commit()
        states.append(_snapshot(heap))
    heap.close()
    report.io_ops = count_plan.ops
    report.commits = len(states) - 1

    # 3. the exhaustive sweep
    for mode in modes:
        for crash_at in range(report.io_ops):
            report.scenarios += 1
            _SCENARIOS.inc()
            failure = _run_scenario(
                baseline, scratch, page_size, steps, states, mode, crash_at, fsck
            )
            if failure is not None:
                _FAILURES.inc()
                if len(report.failures) < max_failures:
                    report.failures.append(failure)
            if fsck:
                report.fsck_runs += 1
    report.duration_s = time.monotonic() - started
    return report


def _run_scenario(
    baseline: str,
    scratch: str,
    page_size: int,
    steps: Sequence[Step],
    states: list[dict],
    mode: str,
    crash_at: int,
    fsck: bool,
) -> dict | None:
    """One (mode, crash point) replay; returns a failure record or None."""
    shutil.copyfile(baseline, scratch)
    plan = FaultPlan(
        crash_at=crash_at,
        torn="torn" in mode,
        writeback="writeback" in mode,
    )
    commits_done = 0
    try:
        heap = ObjectHeap(scratch, page_size, io_factory=plan.file_factory)
        state: dict = {}
        try:
            for step in steps:
                step(heap, state)
                heap.commit()
                commits_done += 1
        finally:
            if not plan.crashed:
                heap.close()
    except CrashPoint:
        pass
    except Exception as exc:  # a non-crash error is itself a failure
        plan.close_all()
        return _failure(mode, crash_at, commits_done, f"workload error: {exc!r}")
    finally:
        plan.close_all()

    # recovery with the real file layer — the moment of truth
    try:
        recovered = ObjectHeap(scratch, page_size)
    except Exception as exc:
        return _failure(mode, crash_at, commits_done, f"image bricked: {exc!r}")
    try:
        snap = _snapshot(recovered)
        allowed = [states[commits_done]]
        if commits_done + 1 < len(states):
            allowed.append(states[commits_done + 1])
        if snap not in allowed:
            return _failure(
                mode,
                crash_at,
                commits_done,
                f"third state: roots {sorted(snap)} match no adjacent commit",
            )
        # the recovered image must still accept new work (a crash must not
        # have poisoned the allocator or free list)
        recovered.set_root("__probe__", recovered.store((mode, crash_at)))
        recovered.commit()
    except Exception as exc:
        return _failure(mode, crash_at, commits_done, f"recovery unusable: {exc!r}")
    finally:
        recovered.close()

    if fsck:
        from repro.store.fsck import fsck_image

        try:
            result = fsck_image(scratch, page_size=page_size)
        except Exception as exc:
            return _failure(mode, crash_at, commits_done, f"fsck crashed: {exc!r}")
        if result.errors:
            return _failure(
                mode,
                crash_at,
                commits_done,
                f"fsck errors: {[f.message for f in result.errors][:3]}",
            )
    return None


def _failure(mode: str, crash_at: int, commits_done: int, error: str) -> dict:
    return {
        "mode": mode,
        "crash_at": crash_at,
        "commits_done": commits_done,
        "error": error,
    }
