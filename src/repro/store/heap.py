"""The persistent object heap: OID → object, over the page file.

The heap is the "persistent Tycoon object store" of the paper: TML literals
may reference arbitrarily complex objects (tables, indices, ADT values,
compiled functions, PTML blobs) by OID.  Both execution engines resolve
literal OIDs through :meth:`ObjectHeap.load`.

Model:

* every stored object has an :class:`~repro.core.syntax.Oid`;
* ``store(obj)`` assigns a fresh OID; ``update(oid)`` marks it dirty;
* ``commit()`` serializes dirty objects to page chains, writes a fresh
  object table, and publishes everything with a single header write
  (shadow-paging-lite: a crash mid-commit leaves the old state reachable);
* ``abort()`` drops uncommitted changes;
* named *roots* (a str → OID directory) make objects reachable across runs.

A heap can also be purely in-memory (``path=None``) — handy for tests and
for scratch images in the code-shipping example.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.syntax import Oid
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.store.pager import Pager
from repro.store.serialize import Decoder, Encoder, decode_value, encode_value

__all__ = ["HeapError", "ObjectHeap", "Transaction"]

_HEAP_LOADS = METRICS.counter("store.heap.loads", "object loads (incl. cache hits)")
_HEAP_FAULTS = METRICS.counter(
    "store.heap.faults", "loads that missed the cache and deserialized pages"
)
_HEAP_COMMITS = METRICS.counter("store.heap.commits", "atomic commits")
_HEAP_OBJECTS_WRITTEN = METRICS.counter(
    "store.heap.objects_written", "dirty objects serialized by commits"
)
_HEAP_BYTES_COMMITTED = METRICS.counter(
    "store.heap.bytes_committed", "serialized payload bytes written by commits"
)


class HeapError(Exception):
    """Invalid heap operation (unknown OID, closed heap, ...)."""


class ObjectHeap:
    """An object store with OID identity, caching and atomic commit."""

    def __init__(self, path: str | None = None, page_size: int = 4096):
        self._pager: Pager | None = Pager(path, page_size) if path else None
        #: oid -> (head_page, length); the durable object table
        self._table: dict[int, tuple[int, int]] = {}
        #: committed root directory
        self._roots: dict[str, int] = {}
        self._cache: dict[int, Any] = {}
        self._oid_by_identity: dict[int, int] = {}
        self._dirty: set[int] = set()
        self._next_oid = 1
        self._closed = False
        if self._pager is not None:
            self._recover()

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        header = self._pager.header
        self._next_oid = max(1, header.oid_counter)
        if header.table_page:
            raw = self._pager.read_chain(header.table_page, header.table_len)
            decoder = Decoder(raw)
            count = decoder.uvarint()
            for _ in range(count):
                oid = decoder.uvarint()
                head = decoder.uvarint()
                length = decoder.uvarint()
                self._table[oid] = (head, length)
            nroots = decoder.uvarint()
            for _ in range(nroots):
                name = decoder.text()
                self._roots[name] = decoder.uvarint()

    # ------------------------------------------------------------- object API

    def store(self, obj: Any) -> Oid:
        """Enter a new object into the heap, returning its fresh OID."""
        self._check_open()
        existing = self._oid_by_identity.get(id(obj))
        if existing is not None:
            return Oid(existing)
        oid = self._next_oid
        self._next_oid += 1
        self._cache[oid] = obj
        self._oid_by_identity[id(obj)] = oid
        self._dirty.add(oid)
        return Oid(oid)

    def load(self, oid: Oid | int) -> Any:
        """Resolve an OID to its object (cached; nested refs swizzled)."""
        self._check_open()
        key = int(oid)
        _HEAP_LOADS.inc()
        if key in self._cache:
            return self._cache[key]
        entry = self._table.get(key)
        if entry is None or self._pager is None:
            raise HeapError(f"unknown oid {key}")
        _HEAP_FAULTS.inc()
        head, length = entry
        raw = self._pager.read_chain(head, length)
        obj = decode_value(raw, resolver=self.load)
        self._cache[key] = obj
        self._oid_by_identity[id(obj)] = key
        return obj

    def update(self, oid: Oid | int, obj: Any = None) -> None:
        """Mark an object dirty; optionally replace its value."""
        self._check_open()
        key = int(oid)
        if obj is not None:
            old = self._cache.get(key)
            if old is not None and old is not obj:
                self._oid_by_identity.pop(id(old), None)
            self._cache[key] = obj
            self._oid_by_identity[id(obj)] = key
        elif key not in self._cache and key not in self._table:
            raise HeapError(f"unknown oid {key}")
        self._dirty.add(key)

    def oid_of(self, obj: Any) -> Oid | None:
        """The OID under which ``obj`` is stored, if any."""
        oid = self._oid_by_identity.get(id(obj))
        return Oid(oid) if oid is not None else None

    def contains(self, oid: Oid | int) -> bool:
        key = int(oid)
        return key in self._cache or key in self._table

    def oids(self) -> Iterator[Oid]:
        """All live OIDs (committed and uncommitted)."""
        seen = set(self._table) | set(self._cache)
        return (Oid(key) for key in sorted(seen))

    # --------------------------------------------------------------- roots

    def set_root(self, name: str, oid: Oid | int) -> None:
        self._check_open()
        self._roots[name] = int(oid)

    def root(self, name: str) -> Oid | None:
        value = self._roots.get(name)
        return Oid(value) if value is not None else None

    def load_root(self, name: str) -> Any:
        oid = self.root(name)
        if oid is None:
            raise HeapError(f"no root named {name!r}")
        return self.load(oid)

    def root_names(self) -> list[str]:
        return sorted(self._roots)

    # --------------------------------------------------------- transactions

    def commit(self) -> None:
        """Serialize dirty objects, then publish atomically."""
        self._check_open()
        _HEAP_COMMITS.inc()
        if self._pager is None:
            self._dirty.clear()
            return
        span = TRACER.span("store.commit", dirty=len(self._dirty))
        released: list[tuple[int, int]] = []
        written = bytes_out = 0
        for key in sorted(self._dirty):
            obj = self._cache.get(key)
            if obj is None:
                continue
            payload = encode_value(obj)
            old = self._table.get(key)
            if old is not None:
                released.append(old)
            head = self._pager.write_chain(payload)
            self._table[key] = (head, len(payload))
            written += 1
            bytes_out += len(payload)
        self._dirty.clear()
        _HEAP_OBJECTS_WRITTEN.inc(written)
        _HEAP_BYTES_COMMITTED.inc(bytes_out)

        table = Encoder()
        table.uvarint(len(self._table))
        for oid_key, (head, length) in self._table.items():
            table.uvarint(oid_key)
            table.uvarint(head)
            table.uvarint(length)
        table.uvarint(len(self._roots))
        for name, oid_key in self._roots.items():
            table.text(name)
            table.uvarint(oid_key)
        raw = table.getvalue()

        header = self._pager.header
        old_table = (header.table_page, header.table_len)
        header.table_page = self._pager.write_chain(raw)
        header.table_len = len(raw)
        header.oid_counter = self._next_oid
        self._pager.sync_header()  # the commit point

        # space released by superseded versions is reclaimed only after the
        # new state is durable
        if old_table[0]:
            self._pager.release_chain(*old_table)
        for head, length in released:
            self._pager.release_chain(head, length)
        self._pager.sync_header()
        span.set(objects_written=written, bytes_written=bytes_out).finish()

    def abort(self) -> None:
        """Discard uncommitted objects and modifications."""
        self._check_open()
        for key in self._dirty:
            obj = self._cache.pop(key, None)
            if obj is not None:
                self._oid_by_identity.pop(id(obj), None)
        self._dirty.clear()
        # recompute next oid from durable state
        self._next_oid = (
            self._pager.header.oid_counter if self._pager is not None else self._next_oid
        )

    def close(self) -> None:
        if self._closed:
            return
        if self._pager is not None:
            self._pager.close()
        self._closed = True

    def __enter__(self) -> "ObjectHeap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- metrics

    @property
    def file_size(self) -> int:
        return self._pager.file_size if self._pager is not None else 0

    def stored_size(self, oid: Oid | int) -> int:
        """Serialized byte size of a committed object (E3 measurements)."""
        entry = self._table.get(int(oid))
        if entry is None:
            obj = self._cache.get(int(oid))
            if obj is None:
                raise HeapError(f"unknown oid {int(oid)}")
            return len(encode_value(obj))
        return entry[1]

    def _check_open(self) -> None:
        if self._closed:
            raise HeapError("heap is closed")


class Transaction:
    """Context-managed unit of work: commit on success, abort on exception.

    >>> with Transaction(heap):
    ...     heap.store(obj)        # doctest: +SKIP
    """

    def __init__(self, heap: ObjectHeap):
        self.heap = heap

    def __enter__(self) -> ObjectHeap:
        return self.heap

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.heap.commit()
        else:
            self.heap.abort()
        return False
