"""The persistent object heap: OID → object, over the page file.

The heap is the "persistent Tycoon object store" of the paper: TML literals
may reference arbitrarily complex objects (tables, indices, ADT values,
compiled functions, PTML blobs) by OID.  Both execution engines resolve
literal OIDs through :meth:`ObjectHeap.load`.

Model:

* every stored object has an :class:`~repro.core.syntax.Oid`;
* ``store(obj)`` assigns a fresh OID; ``update(oid)`` marks it dirty;
* ``commit()`` serializes dirty objects to page chains, writes a fresh
  object table, and publishes everything with a single header write
  (shadow-paging-lite: a crash mid-commit leaves the old state reachable);
* ``abort()`` drops uncommitted changes;
* named *roots* (a str → OID directory) make objects reachable across runs.

A heap can also be purely in-memory (``path=None``) — handy for tests and
for scratch images in the code-shipping example.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.syntax import Oid, Unit
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.store.pager import PageError, Pager
from repro.store.serialize import Decoder, Encoder, decode_value, encode_value

__all__ = ["HeapError", "ChangeSet", "ObjectHeap", "Transaction"]

_HEAP_LOADS = METRICS.counter("store.heap.loads", "object loads (incl. cache hits)")
_HEAP_FAULTS = METRICS.counter(
    "store.heap.faults", "loads that missed the cache and deserialized pages"
)
_HEAP_COMMITS = METRICS.counter("store.heap.commits", "atomic commits")
_HEAP_LEAKED_CHAINS = METRICS.counter(
    "store.heap.leaked_chains",
    "superseded chains leaked because they could not be walked for release",
)
_HEAP_OBJECTS_WRITTEN = METRICS.counter(
    "store.heap.objects_written", "dirty objects serialized by commits"
)
_HEAP_BYTES_COMMITTED = METRICS.counter(
    "store.heap.bytes_committed", "serialized payload bytes written by commits"
)
_HEAP_EVICTIONS = METRICS.counter(
    "store.heap.evictions", "clean cached objects evicted by the bounded cache"
)
_HEAP_CACHED = METRICS.gauge("store.heap.cached_objects", "objects in the heap cache")
_HEAP_CACHED_BYTES = METRICS.gauge(
    "store.heap.cached_bytes",
    "serialized size of cached objects whose on-disk size is known",
)
_HEAP_ROLLBACKS = METRICS.counter(
    "store.heap.io_rollbacks", "rollbacks to durable state after failed commit I/O"
)

#: distinguishes "absent from cache" from a cached ``None``-ish value
_MISSING = object()

#: types excluded from identity-based store() deduplication: CPython interns
#: small ints, short strings, None and the Unit singleton, so two logically
#: distinct stores of ``0`` would otherwise silently share one OID — and a
#: later in-place ``update`` of one alias would clobber the other
_UNTRACKED_IDENTITY = (int, float, str, bytes, type(None), Unit)


def _tracks_identity(obj: Any) -> bool:
    return not isinstance(obj, _UNTRACKED_IDENTITY)


class HeapError(Exception):
    """Invalid heap operation (unknown OID, closed heap, ...)."""


@dataclass(frozen=True)
class ChangeSet:
    """What one commit wrote, in shippable form (see ``change_sink``).

    ``objects`` holds the exact serialized payloads the commit put on
    disk, so a replica applying them reproduces the primary's logical
    state byte-for-byte per object.
    """

    objects: tuple[tuple[int, bytes], ...]
    roots: dict[str, int]
    oid_counter: int


class ObjectHeap:
    """An object store with OID identity, caching and atomic commit.

    ``cache_limit`` bounds the in-memory object cache: once more than
    ``cache_limit`` objects are cached, the least-recently-used *clean*
    objects (committed and not marked dirty) are dropped and transparently
    re-loaded from their page chains on the next access.  Dirty objects are
    never evicted — they are the uncommitted state itself.  Long-lived
    processes (the ``repro.server`` daemon) need the bound; the default
    (``None``) keeps the historical grow-without-bound behavior.  With a
    bounded cache, mark mutated objects dirty via :meth:`update` promptly:
    a clean cached object may be evicted at any time and its next load
    yields the last *committed* state.
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = 4096,
        cache_limit: int | None = None,
        checksum: str | None = None,
        io_factory=None,
    ):
        if cache_limit is not None and cache_limit < 1:
            raise HeapError(f"cache_limit must be positive, got {cache_limit}")
        # io_factory lets the durability tests slide a fault-injecting file
        # layer (repro.store.faults) under the real pager code
        self._pager: Pager | None = (
            Pager(path, page_size, checksum=checksum, file_factory=io_factory)
            if path
            else None
        )
        #: oid -> (head_page, length); the durable object table
        self._table: dict[int, tuple[int, int]] = {}
        #: current root directory (uncommitted edits included)
        self._roots: dict[str, int] = {}
        #: root directory as of the last commit — restored by abort()
        self._committed_roots: dict[str, int] = {}
        #: LRU order: oldest first (only consulted when cache_limit is set)
        self._cache: OrderedDict[int, Any] = OrderedDict()
        self._cache_limit = cache_limit
        #: oid -> serialized size of the *cached* object, where known (set
        #: on load and commit); the sum is the memory-governance signal
        self._sizes: dict[int, int] = {}
        self._cached_bytes = 0
        self._oid_by_identity: dict[int, int] = {}
        self._dirty: set[int] = set()
        self._next_oid = 1
        self._closed = False
        #: called at the top of every commit() — replication uses it to fold
        #: its version/term state into the same atomic commit
        self.pre_commit: Callable[["ObjectHeap"], None] | None = None
        #: called after every successful commit() with the ChangeSet the
        #: commit wrote — the primary's change-capture point
        self.change_sink: Callable[[ChangeSet], None] | None = None
        if self._pager is not None:
            self._recover()

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        header = self._pager.header
        self._next_oid = max(1, header.oid_counter)
        if header.table_page:
            raw = self._pager.read_chain(header.table_page, header.table_len)
            decoder = Decoder(raw)
            count = decoder.uvarint()
            for _ in range(count):
                oid = decoder.uvarint()
                head = decoder.uvarint()
                length = decoder.uvarint()
                self._table[oid] = (head, length)
            nroots = decoder.uvarint()
            for _ in range(nroots):
                name = decoder.text()
                self._roots[name] = decoder.uvarint()
        self._committed_roots = dict(self._roots)

    # ------------------------------------------------------------- object API

    def store(self, obj: Any) -> Oid:
        """Enter a new object into the heap, returning its fresh OID.

        Storing the same (identity-tracked) object twice returns the same
        OID.  Interned scalars (ints, strings, None, unit) are exempt from
        the dedup — each store gets a fresh OID, so two roots bound to the
        value ``0`` stay independently updatable.
        """
        self._check_open()
        tracked = _tracks_identity(obj)
        if tracked:
            existing = self._oid_by_identity.get(id(obj))
            if existing is not None:
                return Oid(existing)
        oid = self._next_oid
        self._next_oid += 1
        self._cache[oid] = obj
        if tracked:
            self._oid_by_identity[id(obj)] = oid
        self._dirty.add(oid)
        self._evict()
        return Oid(oid)

    def load(self, oid: Oid | int) -> Any:
        """Resolve an OID to its object (cached; nested refs swizzled)."""
        self._check_open()
        key = int(oid)
        _HEAP_LOADS.inc()
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            if self._cache_limit is not None:
                self._cache.move_to_end(key)
            return cached
        entry = self._table.get(key)
        if entry is None or self._pager is None:
            raise HeapError(f"unknown oid {key}")
        _HEAP_FAULTS.inc()
        head, length = entry
        raw = self._pager.read_chain(head, length)
        obj = decode_value(raw, resolver=self.load)
        self._cache[key] = obj
        self._note_size(key, len(raw))
        if _tracks_identity(obj):
            self._oid_by_identity[id(obj)] = key
        self._evict()
        return obj

    def update(self, oid: Oid | int, obj: Any = None) -> None:
        """Mark an object dirty; optionally replace its value."""
        self._check_open()
        key = int(oid)
        if obj is not None:
            old = self._cache.get(key)
            if old is not None and old is not obj and _tracks_identity(old):
                self._oid_by_identity.pop(id(old), None)
            self._cache[key] = obj
            if self._cache_limit is not None:
                self._cache.move_to_end(key)
            if _tracks_identity(obj):
                self._oid_by_identity[id(obj)] = key
        elif key not in self._cache and key not in self._table:
            raise HeapError(f"unknown oid {key}")
        self._dirty.add(key)

    def oid_of(self, obj: Any) -> Oid | None:
        """The OID under which ``obj`` is stored, if any."""
        oid = self._oid_by_identity.get(id(obj))
        return Oid(oid) if oid is not None else None

    def contains(self, oid: Oid | int) -> bool:
        key = int(oid)
        return key in self._cache or key in self._table

    def oids(self) -> Iterator[Oid]:
        """All live OIDs (committed and uncommitted)."""
        seen = set(self._table) | set(self._cache)
        return (Oid(key) for key in sorted(seen))

    # --------------------------------------------------------------- roots

    def set_root(self, name: str, oid: Oid | int) -> None:
        self._check_open()
        self._roots[name] = int(oid)

    def root(self, name: str) -> Oid | None:
        value = self._roots.get(name)
        return Oid(value) if value is not None else None

    def load_root(self, name: str) -> Any:
        oid = self.root(name)
        if oid is None:
            raise HeapError(f"no root named {name!r}")
        return self.load(oid)

    def root_names(self) -> list[str]:
        return sorted(self._roots)

    def remove_root(self, name: str) -> bool:
        """Unbind a root name; True when it was bound.

        Removal is transactional like :meth:`set_root`: it only becomes
        durable at the next :meth:`commit` and :meth:`abort` restores the
        binding.  The value object itself is not reclaimed — it merely
        becomes unreachable (fsck reports it as a warning; ``fsck
        --repair`` quarantines it).  The sharding subsystem uses this to
        retire two-phase-commit staging roots once a transaction is
        decided.
        """
        self._check_open()
        return self._roots.pop(name, None) is not None

    # --------------------------------------------------------- transactions

    def commit(self) -> None:
        """Serialize dirty objects, then publish atomically.

        Every dirty OID must have its object in the cache: an OID marked
        dirty via ``update(oid)`` whose object was never (re)supplied would
        otherwise be silently skipped and the update lost.  The check runs
        before any page is written, so a failing commit leaves the durable
        state untouched and the dirty set intact.
        """
        self._check_open()
        if self.pre_commit is not None:
            self.pre_commit(self)
        _HEAP_COMMITS.inc()
        missing = sorted(
            key for key in self._dirty if self._cache.get(key, _MISSING) is _MISSING
        )
        if missing:
            raise HeapError(
                f"dirty oid(s) {missing} have no cached object to serialize; "
                "pass the object to update(oid, obj) before committing"
            )
        sink = self.change_sink
        if self._pager is None:
            changes = (
                tuple((key, encode_value(self._cache[key])) for key in sorted(self._dirty))
                if sink is not None
                else ()
            )
            self._dirty.clear()
            self._committed_roots = dict(self._roots)
            if sink is not None:
                sink(ChangeSet(changes, dict(self._roots), self._next_oid))
            return
        span = TRACER.span("store.commit", dirty=len(self._dirty))
        released: list[tuple[int, int]] = []
        written = bytes_out = 0
        captured: list[tuple[int, bytes]] = []
        for key in sorted(self._dirty):
            obj = self._cache[key]
            payload = encode_value(obj)
            old = self._table.get(key)
            if old is not None:
                released.append(old)
            head = self._pager.write_chain(payload)
            self._table[key] = (head, len(payload))
            self._note_size(key, len(payload))
            if sink is not None:
                captured.append((key, payload))
            written += 1
            bytes_out += len(payload)
        _HEAP_OBJECTS_WRITTEN.inc(written)
        _HEAP_BYTES_COMMITTED.inc(bytes_out)

        self._publish(released)
        # the dirty set survives until the commit point so that an I/O
        # failure anywhere above leaves rollback_to_durable() enough state
        # to discard the half-written commit cleanly
        self._dirty.clear()
        span.set(objects_written=written, bytes_written=bytes_out).finish()
        self._evict()  # freshly committed objects are clean, thus evictable
        if sink is not None:
            sink(ChangeSet(tuple(captured), dict(self._roots), self._next_oid))

    def _publish(self, released: list[tuple[int, int]]) -> None:
        """Write a fresh object table and sync — the durable commit tail.

        Shared by :meth:`commit` (local writes) and :meth:`apply_changes`
        (replicated writes): encode the table + roots, point the header at
        it, sync (the commit point), then reclaim superseded chains and
        sync again so the free list is durable too.
        """
        table = Encoder()
        table.uvarint(len(self._table))
        for oid_key, (head, length) in self._table.items():
            table.uvarint(oid_key)
            table.uvarint(head)
            table.uvarint(length)
        table.uvarint(len(self._roots))
        for name, oid_key in self._roots.items():
            table.text(name)
            table.uvarint(oid_key)
        raw = table.getvalue()

        header = self._pager.header
        old_table = (header.table_page, header.table_len)
        header.table_page = self._pager.write_chain(raw)
        header.table_len = len(raw)
        header.oid_counter = self._next_oid
        self._pager.sync_header()  # the commit point
        self._committed_roots = dict(self._roots)

        # space released by superseded versions is reclaimed only after the
        # new state is durable
        if old_table[0]:
            self._release_superseded(*old_table)
        for head, length in released:
            self._release_superseded(head, length)
        self._pager.sync_header()

    def _release_superseded(self, head: int, length: int) -> None:
        """Best-effort reclamation of one superseded chain.

        The commit is already durable when this runs, so a chain that
        cannot be walked — bit rot on an old page is exactly what
        anti-entropy repair overwrites — is leaked rather than turned into
        a commit failure.  fsck reports leaked pages (info) and
        ``repair=True`` reclaims them.
        """
        try:
            self._pager.release_chain(head, length)
        except PageError:
            _HEAP_LEAKED_CHAINS.inc()
            TRACER.event("store.heap.leaked_chain", head=head, length=length)

    # ---------------------------------------------------------- replication

    def apply_changes(
        self,
        objects: Sequence[tuple[int, bytes]],
        roots: dict[str, int],
        oid_counter: int,
    ) -> None:
        """Apply a replicated commit: raw payloads, wholesale root directory.

        The replica-side mirror of one primary commit (the payloads come
        from a :class:`ChangeSet` / change record): each object's serialized
        bytes are written verbatim under the primary's OID, the root
        directory is replaced, and the result is published with the same
        atomic commit tail local writes use — so a crash mid-apply recovers
        to the previous applied version, never a torn one.

        Only file-backed heaps can host a replica (payloads must decode
        lazily through the table so intra-record references resolve), and
        the heap must have no uncommitted local writes — a replica is
        read-only by construction.
        """
        self._check_open()
        if self._pager is None:
            raise HeapError("apply_changes needs a file-backed heap")
        if self._dirty:
            raise HeapError(
                f"cannot apply replicated changes over {len(self._dirty)} "
                "uncommitted local write(s)"
            )
        _HEAP_COMMITS.inc()
        span = TRACER.span("store.apply", objects=len(objects))
        released: list[tuple[int, int]] = []
        bytes_in = 0
        for oid, payload in objects:
            key = int(oid)
            old = self._table.get(key)
            if old is not None:
                released.append(old)
            # drop any cached (now stale) copy; the next load re-decodes
            stale = self._cache.pop(key, _MISSING)
            if stale is not _MISSING and _tracks_identity(stale):
                self._oid_by_identity.pop(id(stale), None)
            self._forget_size(key)
            head = self._pager.write_chain(payload)
            self._table[key] = (head, len(payload))
            bytes_in += len(payload)
        self._roots = dict(roots)
        self._next_oid = max(self._next_oid, oid_counter)
        _HEAP_OBJECTS_WRITTEN.inc(len(objects))
        _HEAP_BYTES_COMMITTED.inc(bytes_in)
        self._publish(released)
        span.set(bytes_written=bytes_in).finish()
        self._evict()

    def reset_state(
        self,
        objects: Sequence[tuple[int, bytes]],
        roots: dict[str, int],
        oid_counter: int,
    ) -> None:
        """Replace the entire committed state (replica snapshot resync).

        Every existing table entry is dropped (its chains released) and the
        snapshot's objects and roots installed in one atomic publish — used
        when a replica's history diverged from the primary it follows and
        incremental records can no longer reconcile them.
        """
        self._check_open()
        if self._pager is None:
            raise HeapError("reset_state needs a file-backed heap")
        if self._dirty:
            raise HeapError("cannot reset state over uncommitted local writes")
        released = list(self._table.values())
        self._table.clear()
        self._cache.clear()
        self._sizes.clear()
        self._cached_bytes = 0
        self._oid_by_identity.clear()
        self._roots = {}
        self._next_oid = max(1, oid_counter)
        for oid, payload in objects:
            head = self._pager.write_chain(payload)
            self._table[int(oid)] = (head, len(payload))
        self._roots = dict(roots)
        self._publish(released)
        self._evict()

    def snapshot_state(self) -> tuple[list[tuple[int, bytes]], dict[str, int], int]:
        """The full committed state as ``(objects, roots, oid_counter)``.

        The bootstrap payload a primary ships to a joining replica whose
        version its commit log can no longer serve incrementally.
        """
        self._check_open()
        if self._pager is None:
            raise HeapError("snapshot_state needs a file-backed heap")
        objects = [
            (oid, self._pager.read_chain(head, length))
            for oid, (head, length) in sorted(self._table.items())
        ]
        return objects, dict(self._committed_roots), self._next_oid

    def committed_oids(self) -> list[int]:
        """Sorted OIDs present in the durable object table (scrub walk)."""
        self._check_open()
        return sorted(self._table)

    def committed_payload(self, oid: Oid | int) -> bytes:
        """One object's committed payload, read back through the
        checksummed pager.

        Deliberately bypasses the object cache: the integrity scrub and
        the anti-entropy digest tree must observe the *disk* bytes, so a
        cold page flipped by bit rot raises :class:`PageError` here even
        while cached readers still serve the object happily.
        """
        self._check_open()
        if self._pager is None:
            raise HeapError("committed_payload needs a file-backed heap")
        entry = self._table.get(int(oid))
        if entry is None:
            raise HeapError(f"unknown oid {int(oid)}")
        return self._pager.read_chain(*entry)

    def logical_digest(self) -> str:
        """SHA-256 over the committed logical state (oids, payloads, roots).

        Two heaps whose digests match hold identical objects under
        identical OIDs with identical root bindings — the replication
        harness's convergence check (page *layout* may differ between a
        primary and a replica; logical state must not).
        """
        self._check_open()
        h = hashlib.sha256()
        enc = Encoder()
        if self._pager is not None:
            for oid in sorted(self._table):
                head, length = self._table[oid]
                enc.uvarint(oid)
                enc.raw(self._pager.read_chain(head, length))
        else:
            committed = set(self._cache) - self._dirty
            for oid in sorted(committed):
                enc.uvarint(oid)
                enc.raw(encode_value(self._cache[oid]))
        for name in sorted(self._committed_roots):
            enc.text(name)
            enc.uvarint(self._committed_roots[name])
        h.update(enc.getvalue())
        return h.hexdigest()

    def abort(self) -> None:
        """Discard uncommitted objects, modifications and root edits."""
        self._check_open()
        self._drop_dirty_cache()
        self._roots = dict(self._committed_roots)
        # recompute next oid from durable state
        self._next_oid = (
            self._pager.header.oid_counter if self._pager is not None else self._next_oid
        )

    def _drop_dirty_cache(self) -> None:
        for key in self._dirty:
            obj = self._cache.pop(key, None)
            if obj is not None and _tracks_identity(obj):
                self._oid_by_identity.pop(id(obj), None)
            self._forget_size(key)
        self._dirty.clear()

    def rollback_to_durable(self) -> None:
        """Roll every in-memory structure back to the last durable commit.

        :meth:`abort` undoes *logical* state (dirty set, roots, next OID),
        which is enough when a commit fails before touching the file.  But
        a commit that dies partway through its I/O — ``ENOSPC`` on a chain
        write, a failed fsync inside the header sync — leaves the object
        table pointing at unpublished chains and the pager's free list and
        page count diverged from disk.  A later commit would then publish
        the aborted transaction's values.  This method re-reads the durable
        header, table, roots and free list from the file, drops every
        cached object the durable table does not vouch for, and leaves the
        heap exactly at the last successful commit (or, when the failure
        struck *after* the commit point, at the newly committed state —
        either way, at a real commit).  Orphaned pages written by the
        failed commit leak until ``fsck --repair`` reclaims them.
        """
        self._check_open()
        if self._pager is None:
            self.abort()
            return
        _HEAP_ROLLBACKS.inc()
        self._drop_dirty_cache()
        self._pager.reload()
        self._table.clear()
        self._roots = {}
        self._committed_roots = {}
        self._recover()
        # drop cached objects the durable table no longer knows: they may
        # carry values from the failed commit
        for key in [k for k in self._cache if k not in self._table]:
            obj = self._cache.pop(key, _MISSING)
            if obj is not _MISSING and _tracks_identity(obj):
                self._oid_by_identity.pop(id(obj), None)
            self._forget_size(key)
        self._evict()

    def close(self) -> None:
        if self._closed:
            return
        if self._pager is not None:
            self._pager.close()
        self._closed = True

    def __enter__(self) -> "ObjectHeap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- eviction

    def _evict(self) -> None:
        """Drop least-recently-used *clean* objects past ``cache_limit``.

        Only objects that are committed (present in the durable table) and
        not dirty are candidates: anything else is unrecoverable state.  If
        every cached object is dirty the cache is allowed to exceed the
        limit — correctness beats the bound.
        """
        limit = self._cache_limit
        if limit is None:
            _HEAP_CACHED.set(len(self._cache))
            return
        if len(self._cache) > limit:
            evictable = [
                key
                for key in self._cache  # oldest first
                if key in self._table and key not in self._dirty
            ]
            for key in evictable[: len(self._cache) - limit]:
                # concurrent snapshot readers may race on faulting/evicting;
                # a key another thread already dropped is simply skipped
                obj = self._cache.pop(key, _MISSING)
                if obj is _MISSING:
                    continue
                if _tracks_identity(obj):
                    self._oid_by_identity.pop(id(obj), None)
                self._forget_size(key)
                _HEAP_EVICTIONS.inc()
        _HEAP_CACHED.set(len(self._cache))
        _HEAP_CACHED_BYTES.set(self._cached_bytes)

    def _note_size(self, key: int, nbytes: int) -> None:
        old = self._sizes.get(key, 0)
        self._sizes[key] = nbytes
        self._cached_bytes += nbytes - old

    def _forget_size(self, key: int) -> None:
        self._cached_bytes -= self._sizes.pop(key, 0)

    # ---------------------------------------------------- memory governance

    @property
    def cached_bytes(self) -> int:
        """Serialized size of cached objects, where known (a lower bound on
        the cache's real memory footprint — the daemon's budget signal)."""
        return self._cached_bytes

    @property
    def dirty_count(self) -> int:
        """Uncommitted objects held in memory (never evictable)."""
        return len(self._dirty)

    def mem_stats(self) -> dict:
        return {
            "cached_objects": len(self._cache),
            "cached_bytes": self._cached_bytes,
            "dirty_objects": len(self._dirty),
            "cache_limit": self._cache_limit,
        }

    def set_cache_limit(self, limit: int | None) -> None:
        """Re-bound the object cache at runtime (memory-watchdog shedding);
        shrinking evicts immediately."""
        if limit is not None and limit < 1:
            raise HeapError(f"cache_limit must be positive, got {limit}")
        self._cache_limit = limit
        self._evict()

    # ------------------------------------------------------------- metrics

    @property
    def file_size(self) -> int:
        return self._pager.file_size if self._pager is not None else 0

    def image_info(self) -> dict:
        """Identity/durability facts about the backing image (see ping)."""
        if self._pager is None:
            return {"path": None, "format": None}
        return self._pager.image_info()

    def stored_size(self, oid: Oid | int) -> int:
        """Serialized byte size of a committed object (E3 measurements)."""
        entry = self._table.get(int(oid))
        if entry is None:
            obj = self._cache.get(int(oid))
            if obj is None:
                raise HeapError(f"unknown oid {int(oid)}")
            return len(encode_value(obj))
        return entry[1]

    def _check_open(self) -> None:
        if self._closed:
            raise HeapError("heap is closed")


class Transaction:
    """Context-managed unit of work: commit on success, abort on exception.

    >>> with Transaction(heap):
    ...     heap.store(obj)        # doctest: +SKIP
    """

    def __init__(self, heap: ObjectHeap):
        self.heap = heap

    def __enter__(self) -> ObjectHeap:
        return self.heap

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.heap.commit()
        else:
            self.heap.abort()
        return False
