"""Single-writer / snapshot-reader concurrency control over a shared heap.

:class:`ObjectHeap` is a single-threaded data structure; the multi-session
server (:mod:`repro.server`) shares one heap between many worker threads.
The concurrency story is deliberately simple and matches the paper's
open-environment model, where the image is one shared mutable world:

* any number of *readers* run concurrently — they may fault objects into
  the cache (an idempotent, GIL-atomic dict insert) but never mutate
  committed state;
* at most one *writer* runs at a time, and it excludes all readers from
  its first mutation through its commit/abort — so a reader can never
  observe a partially applied transaction.  Combined with the heap's
  shadow-paging commit this gives snapshot semantics: whatever a read
  transaction sees is exactly one committed version of the image.

:class:`RWLock` is writer-preferring (a waiting writer blocks new readers,
so a steady read load cannot starve commits) and supports acquiring in one
thread and releasing in another — a server session may begin a transaction
on one pooled worker thread and commit it on a different one.

:class:`TransactionManager` packages the lock with the heap's
commit/abort and a monotonically increasing committed-state ``version``
(read transactions record the version they observe).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.store.heap import HeapError, ObjectHeap

__all__ = ["LockTimeout", "RWLock", "Txn", "TransactionManager"]

_TXN_BEGINS = METRICS.counter("store.txn.begins", "transactions started")
_TXN_COMMITS = METRICS.counter("store.txn.commits", "write transactions committed")
_TXN_ABORTS = METRICS.counter("store.txn.aborts", "write transactions aborted")
_TXN_TIMEOUTS = METRICS.counter(
    "store.txn.lock_timeouts", "transaction lock acquisitions that timed out"
)
_ACTIVE_READERS = METRICS.gauge(
    "store.txn.active_readers", "read transactions currently holding the lock"
)
_ACTIVE_WRITERS = METRICS.gauge(
    "store.txn.active_writers", "write transactions currently holding the lock (0/1)"
)


class LockTimeout(HeapError):
    """The read/write lock could not be acquired within the timeout."""


class RWLock:
    """A readers-writer lock: shared readers, one exclusive writer.

    Writer-preferring: once a writer is waiting, new readers queue behind
    it.  Not reentrant.  ``release_*`` may be called from a different
    thread than the matching ``acquire_*`` (sessions migrate between pool
    workers), so no thread ownership is tracked.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @staticmethod
    def _deadline(timeout: float | None) -> float | None:
        return None if timeout is None else time.monotonic() + timeout

    def _wait(self, deadline: float | None) -> bool:
        """Wait on the condition; False once the deadline has passed."""
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    def acquire_read(self, timeout: float | None = None) -> bool:
        deadline = self._deadline(timeout)
        with self._cond:
            while self._writer or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> bool:
        deadline = self._deadline(timeout)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    if not self._wait(deadline):
                        return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire")
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self, timeout: float | None = None):
        if not self.acquire_read(timeout):
            raise LockTimeout(f"read lock not acquired within {timeout}s")
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self, timeout: float | None = None):
        if not self.acquire_write(timeout):
            raise LockTimeout(f"write lock not acquired within {timeout}s")
        try:
            yield
        finally:
            self.release_write()


class Txn:
    """One open transaction handle (returned by ``TransactionManager.begin``).

    Write transactions own the heap exclusively until :meth:`commit` or
    :meth:`abort`; read transactions pin one committed version until
    :meth:`close`.  All three release the underlying lock exactly once —
    further calls are no-ops, so error paths can close unconditionally.
    """

    __slots__ = ("manager", "mode", "version", "_open")

    def __init__(self, manager: "TransactionManager", mode: str, version: int):
        self.manager = manager
        self.mode = mode
        #: committed-state version observed at begin
        self.version = version
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    def commit(self) -> None:
        """Publish (write) or simply end (read) the transaction."""
        if not self._open:
            return
        self._open = False
        self.manager._finish(self, commit=True)

    def abort(self) -> None:
        """Discard uncommitted changes (write) or end the snapshot (read)."""
        if not self._open:
            return
        self._open = False
        self.manager._finish(self, commit=False)

    close = abort

    def __enter__(self) -> "Txn":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False


class TransactionManager:
    """Per-session transactions over one shared :class:`ObjectHeap`."""

    def __init__(
        self,
        heap: ObjectHeap,
        default_timeout: float | None = None,
        io_rollback: bool = True,
    ):
        self.heap = heap
        self.lock = RWLock()
        self.default_timeout = default_timeout
        #: on commit I/O failure, roll the heap back to the durable state
        #: (heap.rollback_to_durable) instead of a logical abort — required
        #: for correctness after mid-commit ENOSPC/EIO/fsync failures; the
        #: exhaustion harness's negative control turns it off to prove that
        self._io_rollback = io_rollback
        self._version = 0
        self._version_lock = threading.Lock()

    @property
    def version(self) -> int:
        """Monotonic counter of committed write transactions."""
        return self._version

    def bump(self) -> None:
        """Advance the committed version for an externally applied commit.

        Replication applies records through :meth:`ObjectHeap.apply_changes`
        (no ``heap.commit``), so the replica bumps the version itself while
        holding the write lock — snapshot readers then observe the new
        state under a new version number, exactly as after a local commit.
        """
        with self._version_lock:
            self._version += 1

    # ------------------------------------------------------------ explicit

    def begin(self, mode: str = "read", timeout: float | None = None) -> Txn:
        """Open a transaction; raises :class:`LockTimeout` when contended."""
        if mode not in ("read", "write"):
            raise HeapError(f"unknown transaction mode {mode!r}")
        timeout = timeout if timeout is not None else self.default_timeout
        acquired = (
            self.lock.acquire_write(timeout)
            if mode == "write"
            else self.lock.acquire_read(timeout)
        )
        if not acquired:
            _TXN_TIMEOUTS.inc()
            raise LockTimeout(f"{mode} transaction not started within {timeout}s")
        _TXN_BEGINS.inc()
        (_ACTIVE_WRITERS if mode == "write" else _ACTIVE_READERS).inc()
        return Txn(self, mode, self._version)

    def _finish(self, txn: Txn, commit: bool) -> None:
        if txn.mode == "write":
            try:
                if commit:
                    self.heap.commit()
                    with self._version_lock:
                        self._version += 1
                    _TXN_COMMITS.inc()
                    TRACER.event("store.txn.commit", version=self._version)
                else:
                    self.heap.abort()
                    _TXN_ABORTS.inc()
            except BaseException as exc:
                # a failed commit keeps the old durable state; drop the
                # in-memory changes so the next writer starts clean.  When
                # the commit died in its *I/O* (disk full, EIO, fsync
                # failure) a logical abort is not enough — the object table
                # and free list may already reference half-written chains —
                # so re-read everything from the durable image instead.
                if commit and isinstance(exc, OSError) and self._io_rollback:
                    try:
                        self.heap.rollback_to_durable()
                        # the failure may have struck *after* the commit
                        # point, in which case the rollback adopted the new
                        # durable state: bump so version-keyed caches
                        # (code cache, snapshots) never serve stale reads
                        with self._version_lock:
                            self._version += 1
                    except Exception:
                        self.heap.abort()
                else:
                    self.heap.abort()
                _TXN_ABORTS.inc()
                raise
            finally:
                _ACTIVE_WRITERS.dec()
                self.lock.release_write()
        else:
            _ACTIVE_READERS.dec()
            self.lock.release_read()

    # ------------------------------------------------------- context forms

    @contextmanager
    def read(self, timeout: float | None = None):
        """Snapshot-read block: ``with txns.read(): ...``."""
        txn = self.begin("read", timeout)
        try:
            yield txn
        finally:
            txn.close()

    @contextmanager
    def write(self, timeout: float | None = None):
        """Exclusive write block: commits on success, aborts on exception."""
        txn = self.begin("write", timeout)
        try:
            yield txn
        except BaseException:
            txn.abort()
            raise
        else:
            txn.commit()
