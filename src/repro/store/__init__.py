"""The persistent object store (paper sections 2.2 and 4.1).

Layers: :mod:`repro.store.pager` (checksummed page file with dual-header
commits) → :mod:`repro.store.heap` (OID → object, roots, atomic commit) →
:mod:`repro.store.serialize` (value codec with domain extensions) and
:mod:`repro.store.ptml` (the compact persistent TML encoding attached to
compiled functions).  Durability tooling: :mod:`repro.store.faults`
(fault-injecting file layer), :mod:`repro.store.crashsim` (exhaustive
crash-point harness), :mod:`repro.store.fsck` (offline check/repair) and
:mod:`repro.store.format` (v1 → v2 migration); see docs/durability.md.
"""

from repro.store.crashsim import CrashSimReport, run_crash_sim
from repro.store.faults import CrashPoint, FaultFile, FaultPlan
from repro.store.fsck import FsckResult, fsck_image
from repro.store.heap import HeapError, ObjectHeap, Transaction
from repro.store.pager import FORMAT_VERSION, PageError, Pager
from repro.store.ptml import DecodedPtml, PtmlError, decode_ptml, encode_ptml, ptml_size
from repro.store.serialize import (
    Blob,
    Decoder,
    Encoder,
    SerializeError,
    decode_value,
    encode_value,
    register_codec,
)

__all__ = [
    "HeapError",
    "ObjectHeap",
    "Transaction",
    "PageError",
    "Pager",
    "FORMAT_VERSION",
    "CrashPoint",
    "FaultFile",
    "FaultPlan",
    "CrashSimReport",
    "run_crash_sim",
    "FsckResult",
    "fsck_image",
    "DecodedPtml",
    "PtmlError",
    "decode_ptml",
    "encode_ptml",
    "ptml_size",
    "Blob",
    "Decoder",
    "Encoder",
    "SerializeError",
    "decode_value",
    "encode_value",
    "register_codec",
]
