"""The persistent object store (paper sections 2.2 and 4.1).

Layers: :mod:`repro.store.pager` (page file) → :mod:`repro.store.heap`
(OID → object, roots, atomic commit) → :mod:`repro.store.serialize`
(value codec with domain extensions) and :mod:`repro.store.ptml` (the
compact persistent TML encoding attached to compiled functions).
"""

from repro.store.heap import HeapError, ObjectHeap, Transaction
from repro.store.pager import PageError, Pager
from repro.store.ptml import DecodedPtml, PtmlError, decode_ptml, encode_ptml, ptml_size
from repro.store.serialize import (
    Blob,
    Decoder,
    Encoder,
    SerializeError,
    decode_value,
    encode_value,
    register_codec,
)

__all__ = [
    "HeapError",
    "ObjectHeap",
    "Transaction",
    "PageError",
    "Pager",
    "DecodedPtml",
    "PtmlError",
    "decode_ptml",
    "encode_ptml",
    "ptml_size",
    "Blob",
    "Decoder",
    "Encoder",
    "SerializeError",
    "decode_value",
    "encode_value",
    "register_codec",
]
