"""Durable, checksummed commit log — the shipping unit of replication.

Every committed transaction of a replicated image is captured as one
logical :class:`ChangeRecord`: the serialized payload of each object the
commit wrote (exactly the bytes :meth:`repro.store.heap.ObjectHeap.commit`
put on disk), the full root directory after the commit, the OID counter,
and the replication coordinates — a monotone ``version`` and the fencing
``term`` of the primary that produced it.  Records are what a primary
appends locally and streams to replicas, and what a replica applies inside
a write transaction (:mod:`repro.server.replication`).

On disk a :class:`CommitLog` is an append-only file of framed records::

    magic "TYLG" | u32 format
    [ u32 payload_len | u32 crc32(payload) | payload ]*

The CRC (reused from :mod:`repro.store.checksum`) makes a torn tail
self-describing: opening the log stops at the first frame that fails to
verify and truncates it away, so a crash mid-append costs at most the
record being appended — which the image itself still has (the log append
happens *after* the heap's commit point), so nothing durable is lost.

Appends are fsynced before :meth:`CommitLog.append` returns; a record a
primary has streamed is therefore always recoverable locally for
followers that reconnect and catch up from an older version.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.metrics import METRICS
from repro.store.checksum import crc32
from repro.store.serialize import Decoder, Encoder, SerializeError

__all__ = ["CommitLogError", "ChangeRecord", "CommitLog", "READ_BATCH"]

_APPENDS = METRICS.counter("store.commitlog.appends", "records appended")
_APPEND_BYTES = METRICS.counter("store.commitlog.bytes", "record payload bytes appended")
_TRUNCATIONS = METRICS.counter(
    "store.commitlog.truncations", "opens that dropped a torn record tail"
)
_NOTE_ERRORS = METRICS.counter(
    "store.commitlog.note_errors",
    "I/O errors swallowed by the append truncate backstop",
)
#: records a read_from() iterator materializes per lock acquisition — a
#: large catch-up or restore replay never holds the whole tail in memory
READ_BATCH = 256

#: log the swallowed truncate-backstop error once per process (the counter
#: keeps counting); mirrors the server.io_errors log-once discipline
_note_error_logged = False


def _log_note_error_once(exc: OSError) -> None:
    global _note_error_logged
    _NOTE_ERRORS.inc()
    if not _note_error_logged:
        _note_error_logged = True
        print(
            "repro.store.commitlog: truncate backstop failed after an append "
            f"error ({exc}); the reopen-time CRC scan remains the backstop",
            file=sys.stderr,
        )

MAGIC = b"TYLG"
#: format 2 appends the originating trace context (``trace_id``) and the
#: commit wall-clock timestamp (µs) to every record, so one write is
#: followable primary → replica in a single distributed trace and
#: replicas can report commit-to-apply latency.  Format 3 adds ``meta``,
#: a small JSON annotation layer the sharding subsystem stamps two-phase
#: commit phases into (``{"twopc": "<txn>", "phase": "prepare"}``), making
#: in-doubt transactions visible from the log alone.  Older-format logs
#: are reset on open: the log is a sidecar of the image (the image is the
#: truth), so dropping it only costs followers a snapshot resync.
LOG_FORMAT = 3
_HEADER = struct.Struct("<4sI")
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


class CommitLogError(Exception):
    """Corrupt commit log or invalid log operation."""


@dataclass(frozen=True)
class ChangeRecord:
    """One committed transaction in shippable form."""

    #: replication version this commit produced (monotone, contiguous)
    version: int
    #: fencing term of the primary that produced the commit
    term: int
    #: OID counter after the commit (replicas allocate above it)
    oid_counter: int
    #: ``(oid, serialized payload)`` for every object the commit wrote
    objects: tuple[tuple[int, bytes], ...]
    #: the full root directory after the commit
    roots: dict[str, int] = field(default_factory=dict)
    #: node id of the producing primary (diagnostic, not part of fencing)
    node: str = ""
    #: trace id of the request whose commit produced this record ("" when
    #: the commit ran outside any sampled trace) — replicas re-activate it
    #: so primary and replica spans join into one distributed trace
    trace_id: str = ""
    #: wall-clock µs at which the primary committed (commit-to-apply
    #: latency source on replicas; 0 when unknown)
    committed_ts_us: int = 0
    #: small JSON-able annotations about the commit (e.g. the 2PC phase a
    #: sharded write is in); empty for ordinary commits
    meta: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        enc = Encoder()
        enc.uvarint(self.version)
        enc.uvarint(self.term)
        enc.uvarint(self.oid_counter)
        enc.text(self.node)
        enc.text(self.trace_id)
        enc.uvarint(max(0, self.committed_ts_us))
        enc.text(
            json.dumps(self.meta, sort_keys=True, separators=(",", ":"))
            if self.meta
            else ""
        )
        enc.uvarint(len(self.objects))
        for oid, payload in self.objects:
            enc.uvarint(oid)
            enc.raw(payload)
        enc.uvarint(len(self.roots))
        for name in sorted(self.roots):
            enc.text(name)
            enc.uvarint(self.roots[name])
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "ChangeRecord":
        try:
            dec = Decoder(payload)
            version = dec.uvarint()
            term = dec.uvarint()
            oid_counter = dec.uvarint()
            node = dec.text()
            trace_id = dec.text()
            committed_ts_us = dec.uvarint()
            meta_text = dec.text()
            objects = tuple(
                (dec.uvarint(), dec.raw()) for _ in range(dec.uvarint())
            )
            roots = {dec.text(): dec.uvarint() for _ in range(dec.uvarint())}
        except SerializeError as exc:
            raise CommitLogError(f"corrupt change record: {exc}") from exc
        try:
            meta = json.loads(meta_text) if meta_text else {}
        except json.JSONDecodeError as exc:
            raise CommitLogError(f"corrupt change record meta: {exc}") from exc
        return cls(
            version=version,
            term=term,
            oid_counter=oid_counter,
            objects=objects,
            roots=roots,
            node=node,
            trace_id=trace_id,
            committed_ts_us=committed_ts_us,
            meta=meta if isinstance(meta, dict) else {},
        )

    # wire form (the replication stream ships records as JSON frames) -------

    def as_wire(self) -> dict:
        wire = {
            "version": self.version,
            "term": self.term,
            "oid_counter": self.oid_counter,
            "node": self.node,
            "trace_id": self.trace_id,
            "committed_ts_us": self.committed_ts_us,
            "objects": [[oid, payload.hex()] for oid, payload in self.objects],
            "roots": dict(self.roots),
        }
        if self.meta:
            wire["meta"] = dict(self.meta)
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "ChangeRecord":
        try:
            return cls(
                version=int(wire["version"]),
                term=int(wire["term"]),
                oid_counter=int(wire["oid_counter"]),
                node=str(wire.get("node", "")),
                trace_id=str(wire.get("trace_id") or ""),
                committed_ts_us=int(wire.get("committed_ts_us", 0)),
                objects=tuple(
                    (int(oid), bytes.fromhex(payload))
                    for oid, payload in wire["objects"]
                ),
                roots={str(k): int(v) for k, v in wire["roots"].items()},
                meta=dict(wire.get("meta") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CommitLogError(f"malformed wire record: {exc!r}") from exc


class CommitLog:
    """Append-only, checksummed, crash-truncating record log."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        #: retention hook: called with this log *before* :meth:`reset`
        #: discards records, so an archiver can seal them first
        #: (:class:`repro.store.recovery.LogArchiver`); exceptions are
        #: counted, not raised — reset must win even when the archive
        #: volume is sick, or a snapshot resync could never complete
        self.retention: Callable[["CommitLog"], None] | None = None
        #: version -> byte offset of the frame (catch-up reads seek here)
        self._index: dict[int, int] = {}
        #: version -> term (fencing lineage checks without re-reading frames)
        self._terms: dict[int, int] = {}
        self.first_version: int | None = None
        self.last_version: int | None = None
        self.last_term: int = 0
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if existed else "w+b")
        if existed:
            self._recover()
        else:
            self._file.write(_HEADER.pack(MAGIC, LOG_FORMAT))
            self._file.flush()
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------- recovery

    def _recover(self) -> None:
        self._file.seek(0)
        head = self._file.read(_HEADER.size)
        if len(head) < _HEADER.size or head[:4] != MAGIC:
            raise CommitLogError(f"{self.path!r} is not a commit log")
        (_, fmt) = _HEADER.unpack(head)
        if fmt < LOG_FORMAT:
            # older record encoding: the image is the truth, the log just a
            # catch-up sidecar — restart it empty under the current format
            # (followers older than this point resync via snapshot)
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(_HEADER.pack(MAGIC, LOG_FORMAT))
            self._file.flush()
            os.fsync(self._file.fileno())
            _TRUNCATIONS.inc()
            return
        if fmt != LOG_FORMAT:
            raise CommitLogError(f"unsupported commit-log format {fmt}")
        offset = _HEADER.size
        good_end = offset
        while True:
            frame = self._file.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                break
            length, stored_crc = _FRAME.unpack(frame)
            payload = self._file.read(length)
            if len(payload) < length or crc32(payload) != stored_crc:
                break  # torn tail: everything from here on is garbage
            try:
                record = ChangeRecord.decode(payload)
            except CommitLogError:
                break
            self._note(record, offset)
            offset += _FRAME.size + length
            good_end = offset
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() > good_end:
            _TRUNCATIONS.inc()
            self._file.truncate(good_end)
            self._file.flush()
            os.fsync(self._file.fileno())

    def _note(self, record: ChangeRecord, offset: int) -> None:
        self._index[record.version] = offset
        self._terms[record.version] = record.term
        if self.first_version is None:
            self.first_version = record.version
        self.last_version = record.version
        self.last_term = record.term

    # --------------------------------------------------------------- writes

    def append(self, record: ChangeRecord) -> None:
        """Append one record and make it durable before returning."""
        with self._lock:
            if self.last_version is not None and record.version != self.last_version + 1:
                raise CommitLogError(
                    f"non-contiguous append: version {record.version} "
                    f"after {self.last_version}"
                )
            payload = record.encode()
            self._file.seek(0, os.SEEK_END)
            offset = self._file.tell()
            try:
                self._file.write(_FRAME.pack(len(payload), crc32(payload)) + payload)
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:
                # disk full / EIO mid-append: drop the torn frame now so
                # appends after the disk recovers start from a clean tail
                # (the CRC scan at reopen would also drop it, but a live
                # log must not carry a torn frame between two good ones)
                try:
                    self._file.truncate(offset)
                    self._file.flush()
                except OSError as backstop_exc:
                    _log_note_error_once(backstop_exc)
                raise
            self._note(record, offset)
            _APPENDS.inc()
            _APPEND_BYTES.inc(len(payload))

    def reset(self) -> None:
        """Discard every record, keeping only the file header.

        Used when the log and its image disagree at boot (a crash landed
        between the image commit and the log append) and after a snapshot
        resync replaced the image's history: followers that would have
        needed the dropped records are served a snapshot instead.

        When a :attr:`retention` hook is attached (continuous archiving),
        it runs first so every record is sealed into the archive before
        being discarded — reset is the only operation that destroys
        history, so hooking it makes the archive lossless.
        """
        retention = self.retention
        if retention is not None and self.last_version is not None:
            try:
                retention(self)
            except OSError as exc:
                _log_note_error_once(exc)
        with self._lock:
            self._file.truncate(_HEADER.size)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._index.clear()
            self._terms.clear()
            self.first_version = None
            self.last_version = None
            self.last_term = 0
            _TRUNCATIONS.inc()

    # ---------------------------------------------------------------- reads

    def term_at(self, version: int) -> int | None:
        """The term of the record at ``version`` (lineage/fencing checks)."""
        with self._lock:
            return self._terms.get(version)

    def has(self, version: int) -> bool:
        with self._lock:
            return version in self._index

    def bytes_since(self, version: int) -> int:
        """Payload bytes logged after ``version`` (replication byte-lag).

        A follower acked up to ``version``; everything appended after it is
        data that follower has not applied yet.  0 when it is caught up;
        the whole log when ``version`` predates it (the follower will be
        resynced anyway).
        """
        with self._lock:
            if self.last_version is None or version >= self.last_version:
                return 0
            start = self._index.get(version + 1)
            if start is None:
                start = _HEADER.size
            self._file.seek(0, os.SEEK_END)
            return max(0, self._file.tell() - start)

    def read_from(
        self, version: int, batch: int = READ_BATCH
    ) -> Iterator[ChangeRecord]:
        """Iterate records with ``record.version >= version``, in order.

        Bounded-batch: at most ``batch`` records are materialized per lock
        acquisition, so a large follower catch-up or a restore replay
        streams the tail instead of holding it all in memory.  Validation
        is eager — a ``version`` that predates the log raises
        :class:`CommitLogError` *here*, before any iteration (callers
        branch to a snapshot resync on it).  Records appended after a
        batch was read are picked up by the next batch; a concurrent
        :meth:`reset` simply ends the iteration.
        """
        with self._lock:
            if version not in self._index and (
                self.last_version is not None and version <= self.last_version
            ):
                raise CommitLogError(
                    f"version {version} predates this log "
                    f"(first is {self.first_version})"
                )
        return self._iter_from(version, max(1, batch))

    def _iter_from(self, version: int, batch: int) -> Iterator[ChangeRecord]:
        next_version = version
        while True:
            with self._lock:
                start = self._index.get(next_version)
                if start is None:
                    return  # past the end (or the log was reset): done
                self._file.seek(start)
                records: list[ChangeRecord] = []
                while len(records) < batch:
                    frame = self._file.read(_FRAME.size)
                    if len(frame) < _FRAME.size:
                        break
                    length, stored_crc = _FRAME.unpack(frame)
                    payload = self._file.read(length)
                    if len(payload) < length or crc32(payload) != stored_crc:
                        raise CommitLogError("corrupt record mid-log")
                    records.append(ChangeRecord.decode(payload))
            if not records:
                return
            yield from records
            next_version = records[-1].version + 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "CommitLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
