"""Commit-log shipping replication: primary fan-out, followers, fencing.

One replicated image is a *primary* daemon plus any number of *replica*
daemons.  The primary captures every committed transaction as a logical
:class:`~repro.store.commitlog.ChangeRecord` (the heap's ``change_sink``
hook hands it the exact serialized payloads the commit wrote), appends it
to a durable :class:`~repro.store.commitlog.CommitLog` next to the image,
and streams it to subscribed replicas over the ordinary length-prefixed
JSON protocol.  Replicas apply records under the image's write lock via
:meth:`~repro.store.heap.ObjectHeap.apply_changes`, append them to their
own log (so a promoted replica can serve catch-up), and acknowledge each
applied version back to the primary.

**Coordinates.**  Each record carries a monotone ``version`` (contiguous
per lineage) and the producing primary's fencing ``term``.  Both are also
stamped *inside* the image via the ``__replication__`` root, which the
primary's ``pre_commit`` hook folds into every commit — so the durable
image itself always knows which (term, version) it embodies, atomically
with the data.

**Fencing.**  Promotion (:meth:`ReplicaFollower.promote` via the daemon's
``promote`` op) bumps the term above every term the node has ever seen.
A deposed primary keeps producing records under its old term; any replica
that has accepted a higher term rejects those records — and rejects
snapshot resyncs stamped with the stale term — so a split brain cannot
roll back state acknowledged under the newer term.  ``fence=False``
disables exactly these checks; the chaos harness uses it as the negative
control that proves the checks are what prevents acknowledged-write loss.

**Sync acknowledgement.**  With ``sync_replicas=N`` the daemon holds each
write's response until N subscribers acknowledged the commit's version
(:meth:`PrimaryReplication.wait_for_acks`); a timeout answers with the
structured ``replication_timeout`` error (the write *is* committed
locally), so a client-visible success implies the write survives failover
to any acked replica.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.server import protocol
from repro.server.protocol import recv_frame, send_frame
from repro.store.commitlog import ChangeRecord, CommitLog, CommitLogError
from repro.store.concurrency import TransactionManager
from repro.store.heap import ChangeSet, HeapError, ObjectHeap

__all__ = [
    "REPL_ROOT",
    "ReplicationError",
    "StaleTermError",
    "replication_state",
    "PrimaryReplication",
    "ReplicaFollower",
]

_RECORDS_SHIPPED = METRICS.counter(
    "server.repl.records_shipped", "change records enqueued to subscribers"
)
_RECORDS_APPLIED = METRICS.counter(
    "server.repl.records_applied", "change records applied by this follower"
)
_RESYNCS = METRICS.counter(
    "server.repl.resyncs", "snapshot resyncs served or applied"
)
_FENCED = METRICS.counter(
    "server.repl.fenced", "stale-term records/snapshots rejected by fencing"
)
_ACK_TIMEOUTS = METRICS.counter(
    "server.repl.ack_timeouts", "sync writes that missed their ack quorum"
)
_LAG_VERSIONS = METRICS.gauge(
    "server.repl.lag_versions", "versions this follower is behind its primary"
)
_APPLY_LATENCY = METRICS.histogram(
    "server.repl.apply_latency_us",
    "primary commit → local apply latency (microseconds)",
)

#: root holding ``{"term", "version", "node"}`` — committed atomically with
#: every transaction, making the image self-describing for replication
REPL_ROOT = "__replication__"

#: prefix of two-phase-commit staging roots (:mod:`repro.server.sharding`).
#: A commit that creates or retires one is a 2PC phase transition; the
#: change sink stamps the phase into the record's ``meta`` so the commit
#: log itself shows which transactions were in doubt at any point.
TWOPC_STAGING_PREFIX = "__2pc__:"


def _twopc_meta(changes: ChangeSet, before: set[str]) -> dict:
    """Commit-log ``meta`` for a 2PC phase transition (empty otherwise).

    ``before`` is the staging-root set of the previous record; comparing
    it with the committed root directory classifies the commit: a staging
    root appearing is a *prepare*, one disappearing is a *decide* (the
    participant applied or rolled back and retired the staging record).
    """
    after = {
        name for name in changes.roots if name.startswith(TWOPC_STAGING_PREFIX)
    }
    prepared = sorted(n[len(TWOPC_STAGING_PREFIX):] for n in after - before)
    decided = sorted(n[len(TWOPC_STAGING_PREFIX):] for n in before - after)
    meta: dict = {}
    if prepared:
        meta["twopc"] = prepared[0] if len(prepared) == 1 else prepared
        meta["phase"] = "prepare"
    elif decided:
        meta["twopc"] = decided[0] if len(decided) == 1 else decided
        meta["phase"] = "decide"
    return meta


class ReplicationError(Exception):
    """Replication protocol violation or invalid role operation."""


class StaleTermError(ReplicationError):
    """Fencing: the peer's term proves this node's view is deposed."""

    def __init__(self, message: str, term: int):
        super().__init__(message)
        self.term = term


def replication_state(heap: ObjectHeap) -> dict:
    """The committed ``__replication__`` coordinates of an image."""
    oid = heap.root(REPL_ROOT)
    if oid is None:
        return {"term": 0, "version": 0, "node": ""}
    try:
        state = heap.load(oid)
    except HeapError:
        return {"term": 0, "version": 0, "node": ""}
    if not isinstance(state, dict):
        return {"term": 0, "version": 0, "node": ""}
    return {
        "term": int(state.get("term", 0)),
        "version": int(state.get("version", 0)),
        "node": str(state.get("node", "")),
    }


def _open_log(path: str, version: int, term: int) -> CommitLog:
    """Open the node's commit log, dropping it when it disagrees with the
    image (a crash can land between image commit and log append; serving
    catch-up from a log that skips a version would diverge followers —
    they get a snapshot resync instead)."""
    log = CommitLog(path)
    if log.last_version is not None and (
        log.last_version != version or log.last_term != term
    ):
        log.reset()
    return log


class _Subscriber:
    """One follower connection on the primary: queue + sender thread."""

    def __init__(self, key: int, node: str, send, acked: int):
        self.key = key
        self.node = node
        self.send = send  # session.send — thread-safe, raises OSError when gone
        self.queue: queue.Queue = queue.Queue()
        #: highest version this follower acknowledged as applied
        self.acked = acked
        self.alive = True


class PrimaryReplication:
    """The primary role: change capture, durable log, subscriber fan-out."""

    def __init__(
        self,
        heap: ObjectHeap,
        txns: TransactionManager,
        log_path: str,
        node: str,
        term: int | None = None,
        fence: bool = True,
    ):
        self.heap = heap
        self.txns = txns
        self.node = node
        self.fence = fence
        state = replication_state(heap)
        self.version = state["version"]
        #: fencing term this primary produces records under (>= 1)
        self.term = term if term is not None else max(1, state["term"])
        if self.term < state["term"]:
            raise ReplicationError(
                f"cannot start primary at term {self.term}: the image has "
                f"already committed under term {state['term']}"
            )
        self.log = _open_log(log_path, self.version, state["term"])
        self._pending = self.version
        #: staging roots present in the committed image — the baseline the
        #: next commit's 2PC phase classification diffs against
        self._staging = {
            n for n in heap.root_names() if n.startswith(TWOPC_STAGING_PREFIX)
        }
        #: serializes fan-out vs. subscriber registration, so a subscriber
        #: never misses the records committed while it was catching up
        self._fanout = threading.Lock()
        self._subs: dict[int, _Subscriber] = {}
        self._ack_cond = threading.Condition()
        self._stopped = False

    # --------------------------------------------------------- commit hooks

    def attach(self) -> None:
        self.heap.pre_commit = self._pre_commit
        self.heap.change_sink = self._change_sink

    def detach(self) -> None:
        if self.heap.pre_commit is self._pre_commit:
            self.heap.pre_commit = None
        if self.heap.change_sink is self._change_sink:
            self.heap.change_sink = None

    def _pre_commit(self, heap: ObjectHeap) -> None:
        # stamp the coordinates of the commit being built; self.version only
        # advances in _change_sink, i.e. once the commit actually succeeded
        self._pending = self.version + 1
        state = {"term": self.term, "version": self._pending, "node": self.node}
        oid = heap.root(REPL_ROOT)
        if oid is None:
            heap.set_root(REPL_ROOT, heap.store(state))
        else:
            heap.update(oid, state)

    def _change_sink(self, changes: ChangeSet) -> None:
        self.version = self._pending
        meta = _twopc_meta(changes, self._staging)
        self._staging = {
            n for n in changes.roots if n.startswith(TWOPC_STAGING_PREFIX)
        }
        # the sink runs on the committing request's thread: whatever trace
        # context the daemon activated for that request is current here, so
        # the record carries the originating trace end-to-end
        ctx = TRACER.current()
        record = ChangeRecord(
            version=self.version,
            term=self.term,
            oid_counter=changes.oid_counter,
            objects=changes.objects,
            roots=dict(changes.roots),
            node=self.node,
            trace_id=ctx.trace_id if ctx is not None else "",
            committed_ts_us=int(time.time() * 1_000_000),
            meta=meta,
        )
        try:
            self.log.append(record)
        except CommitLogError:
            # a gap (e.g. the log was behind the image at boot): restart the
            # log here; followers older than this point get snapshots
            self.log.reset()
            self.log.append(record)
        with self._fanout:
            subs = [s for s in self._subs.values() if s.alive]
        for sub in subs:
            sub.queue.put(record)
            _RECORDS_SHIPPED.inc()

    # ---------------------------------------------------------- subscribers

    def subscribe(
        self, key: int, node: str, from_version: int, last_term: int, send
    ) -> dict:
        """Register a follower; returns the handshake result.

        The caller (daemon) invokes this on the subscriber's connection
        thread.  Either the follower's history is a prefix of ours (serve
        records ``from_version+1..``) or it diverged / predates the log
        (serve a full snapshot).  Registration happens under the fan-out
        lock *while holding a read transaction*, so the catch-up content
        and the live stream tile exactly: no record is missed or doubled.
        """
        if self.fence and last_term > self.term:
            _FENCED.inc()
            raise StaleTermError(
                f"subscriber {node!r} has accepted term {last_term}, "
                f"this primary is at term {self.term}",
                term=last_term,
            )
        with self.txns.read():
            with self._fanout:
                resync = False
                catchup = iter(())  # bounded-batch record iterator
                if from_version > self.version:
                    resync = True  # follower is ahead: divergent lineage
                elif from_version < self.version:
                    lineage_ok = from_version == 0 or (
                        self.log.term_at(from_version) == last_term
                    )
                    if lineage_ok and self.log.has(from_version + 1):
                        catchup = self.log.read_from(from_version + 1)
                    else:
                        resync = True
                elif from_version and self.log.term_at(from_version) not in (
                    None,
                    last_term,
                ):
                    resync = True  # same version, different history
                result: dict = {
                    "term": self.term,
                    "version": self.version,
                    "node": self.node,
                    "resync": resync,
                }
                if resync:
                    _RESYNCS.inc()
                    objects, roots, oid_counter = self.heap.snapshot_state()
                    result["snapshot"] = ChangeRecord(
                        version=self.version,
                        term=self.term,
                        oid_counter=oid_counter,
                        objects=tuple(objects),
                        roots=roots,
                        node=self.node,
                    ).as_wire()
                sub = _Subscriber(key, node, send, acked=from_version)
                # drain the (batched) catch-up iterator while still inside
                # the read txn + fan-out lock, so catch-up and live stream
                # tile exactly; only one batch is in memory at a time
                caught_up = 0
                for record in catchup:
                    sub.queue.put(record)
                    caught_up += 1
                self._subs[key] = sub
        threading.Thread(
            target=self._pump, args=(sub,), name=f"repro-repl-sub-{key}", daemon=True
        ).start()
        TRACER.event(
            "server.repl.subscribe", node=node, from_version=from_version,
            resync=resync, catchup=caught_up,
        )
        return result

    def _pump(self, sub: _Subscriber) -> None:
        while sub.alive and not self._stopped:
            try:
                record = sub.queue.get(timeout=0.5)
            except queue.Empty:
                continue
            try:
                sub.send({"push": "record", "record": record.as_wire()})
            except (OSError, protocol.ProtocolError):
                self.drop_subscriber(sub.key)
                return

    def notify_degraded(self, reason: str) -> None:
        """Tell every subscriber the primary lost its disk (best effort).

        Pushes a ``{"push": "degraded"}`` frame on each subscriber
        connection so replicas can surface ``primary_degraded`` in their
        status — the signal a cluster client uses to fail writes over
        instead of hammering a read-only primary.  Pre-v5 followers skip
        unknown push kinds, so the frame is backward-safe.
        """
        with self._fanout:
            subs = list(self._subs.values())
        for sub in subs:
            try:
                sub.send({"push": "degraded", "reason": reason})
            except (OSError, protocol.ProtocolError):
                self.drop_subscriber(sub.key)

    def ack(self, key: int, version: int) -> None:
        with self._fanout:
            sub = self._subs.get(key)
            if sub is not None:
                sub.acked = max(sub.acked, int(version))
        with self._ack_cond:
            self._ack_cond.notify_all()

    def drop_subscriber(self, key: int) -> None:
        with self._fanout:
            sub = self._subs.pop(key, None)
            if sub is not None:
                sub.alive = False
        with self._ack_cond:
            self._ack_cond.notify_all()

    def acked_count(self, version: int) -> int:
        with self._fanout:
            return sum(1 for s in self._subs.values() if s.acked >= version)

    def wait_for_acks(self, version: int, count: int, timeout: float) -> int:
        """Block until ``count`` subscribers acked ``version`` (or timeout);
        returns the number that did."""
        deadline = time.monotonic() + timeout
        with self._ack_cond:
            while True:
                acked = self.acked_count(version)
                if acked >= count:
                    return acked
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    _ACK_TIMEOUTS.inc()
                    return acked
                self._ack_cond.wait(remaining)

    # -------------------------------------------------------------- control

    def status(self) -> dict:
        with self._fanout:
            subs = [
                {
                    "node": s.node,
                    "acked": s.acked,
                    "lag": max(0, self.version - s.acked),
                    "bytes_behind": self.log.bytes_since(s.acked),
                }
                for s in self._subs.values()
            ]
        return {
            "role": "primary",
            "node": self.node,
            "term": self.term,
            "version": self.version,
            "fence": self.fence,
            "subscribers": subs,
            "log": {
                "first": self.log.first_version,
                "last": self.log.last_version,
            },
        }

    def stop(self) -> None:
        self._stopped = True
        self.detach()
        with self._fanout:
            subs = list(self._subs.values())
            self._subs.clear()
        for sub in subs:
            sub.alive = False
        self.log.close()


class ReplicaFollower:
    """The replica role: subscribe upstream, apply, ack, report lag."""

    def __init__(
        self,
        heap: ObjectHeap,
        txns: TransactionManager,
        upstream: tuple[str, int],
        log_path: str,
        node: str,
        fence: bool = True,
        retry_delay: float = 0.2,
        connect_timeout: float = 5.0,
    ):
        self.heap = heap
        self.txns = txns
        self.upstream = (upstream[0], int(upstream[1]))
        self.node = node
        self.fence = fence
        self.retry_delay = retry_delay
        self.connect_timeout = connect_timeout
        state = replication_state(heap)
        #: highest term this node has ever accepted (fencing floor)
        self.term = state["term"]
        #: last applied record version
        self.version = state["version"]
        #: primary's version as of the last handshake/record (lag source)
        self.primary_version = self.version
        self.connected = False
        self.last_error: str | None = None
        #: the upstream primary announced it flipped into degraded
        #: read-only mode (disk failure) — surfaced in status() so a
        #: cluster client can fail writes over to a promoted node
        self.primary_degraded = False
        self.primary_degraded_reason: str | None = None
        self.log = _open_log(log_path, self.version, self.term)
        self._apply_lock = threading.Lock()
        self._stop = threading.Event()
        self._sock: socket.socket | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-repl-follow-{node}", daemon=True
        )

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._thread.start()

    def _interrupt(self) -> None:
        """Wake the follow thread out of a blocking recv immediately."""
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def stop(self) -> None:
        self._stop.set()
        self._interrupt()
        self._thread.join(timeout=10)
        self.log.close()

    def promote(self, term: int | None = None) -> int:
        """Stop following and return the fencing term to produce under:
        strictly above every term this node has accepted."""
        self._stop.set()
        self._interrupt()
        self._thread.join(timeout=10)
        new_term = max(self.term + 1, term if term is not None else 0)
        self.log.close()
        return new_term

    # ------------------------------------------------------------ following

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._follow_once()
            except (OSError, protocol.ProtocolError, ReplicationError,
                    CommitLogError, HeapError) as exc:
                self.connected = False
                self.last_error = f"{type(exc).__name__}: {exc}"
            if not self._stop.is_set():
                self._stop.wait(self.retry_delay)

    def _follow_once(self) -> None:
        with socket.create_connection(self.upstream, timeout=self.connect_timeout) as sock:
            self._sock = sock
            send_frame(sock, {
                "id": 1,
                "op": "repl.subscribe",
                "node": self.node,
                "from_version": self.version,
                "last_term": self.term,
            })
            sock.settimeout(self.connect_timeout)
            # the primary's sender thread may start pushing records before
            # the handshake response frame is written: buffer such pushes
            # (they are already in apply order) and replay them after
            pending: list[dict] = []
            response = None
            while response is None:
                frame = self._next_frame(sock)
                if frame is None:
                    return
                if frame.get("push") == "record":
                    pending.append(frame)
                elif "id" in frame:
                    response = frame
            if not response.get("ok"):
                error = response.get("error") or {}
                self.last_error = f"[{error.get('code')}] {error.get('message')}"
                return
            result = response.get("result", {})
            upstream_term = int(result.get("term", 0))
            if self.fence and upstream_term < self.term:
                # a deposed primary: refuse to follow it backwards
                _FENCED.inc()
                self.last_error = (
                    f"upstream term {upstream_term} is behind accepted term "
                    f"{self.term}; refusing stream"
                )
                return
            self.primary_version = int(result.get("version", self.version))
            _LAG_VERSIONS.set(self.lag)
            if result.get("resync"):
                self._apply_snapshot(ChangeRecord.from_wire(result["snapshot"]))
            self.connected = True
            self.last_error = None
            ack_id = 2
            while not self._stop.is_set():
                if pending:
                    frame = pending.pop(0)
                else:
                    frame = self._next_frame(sock)
                if frame is None:
                    self.connected = False
                    return
                if frame.get("push") == "degraded":
                    self.primary_degraded = True
                    self.primary_degraded_reason = frame.get("reason")
                    continue
                if frame.get("push") != "record":
                    continue  # ack responses and future pushes
                # a record push means the primary is writing again
                self.primary_degraded = False
                self.primary_degraded_reason = None
                record = ChangeRecord.from_wire(frame["record"])
                if not self._apply_record(record):
                    self.connected = False
                    return  # rejected (fencing) or gap: reconnect/handshake
                send_frame(sock, {
                    "id": ack_id, "op": "repl.ack",
                    "version": self.version, "node": self.node,
                })
                ack_id += 1

    def _next_frame(self, sock: socket.socket) -> dict | None:
        """One frame, treating idle timeouts as 'check _stop and go on'."""
        while True:
            try:
                return recv_frame(sock)
            except socket.timeout:
                if self._stop.is_set():
                    return None

    # -------------------------------------------------------------- applying

    def _apply_snapshot(self, snapshot: ChangeRecord) -> None:
        if self.fence and snapshot.term < self.term:
            _FENCED.inc()
            raise StaleTermError(
                f"snapshot from term {snapshot.term} rejected: this node "
                f"accepted term {self.term}",
                term=snapshot.term,
            )
        _RESYNCS.inc()
        with self._apply_lock:
            with self.txns.lock.write_locked(timeout=self.connect_timeout):
                self.heap.reset_state(
                    list(snapshot.objects), dict(snapshot.roots), snapshot.oid_counter
                )
                self.txns.bump()
            self.version = snapshot.version
            self.term = max(self.term, snapshot.term)
            self.log.reset()
        _LAG_VERSIONS.set(self.lag)
        TRACER.event(
            "server.repl.resync", version=snapshot.version, term=snapshot.term,
            objects=len(snapshot.objects),
        )

    def _apply_record(self, record: ChangeRecord) -> bool:
        if self.fence and record.term < self.term:
            _FENCED.inc()
            self.last_error = (
                f"record v{record.version} from deposed term {record.term} "
                f"rejected (accepted term {self.term})"
            )
            return False
        with self._apply_lock:
            if record.version != self.version + 1:
                self.last_error = (
                    f"record v{record.version} does not follow applied "
                    f"v{self.version}; renegotiating"
                )
                return False
            # re-activate the originating trace so the apply span joins the
            # same distributed trace the primary's commit belongs to
            with TRACER.activate(record.trace_id or None):
                with TRACER.span(
                    "server.repl.apply", version=record.version,
                    term=record.term, origin=record.node,
                ):
                    with self.txns.lock.write_locked(timeout=self.connect_timeout):
                        self.heap.apply_changes(
                            list(record.objects),
                            dict(record.roots),
                            record.oid_counter,
                        )
                        self.txns.bump()
            self.version = record.version
            self.term = max(self.term, record.term)
            self.primary_version = max(self.primary_version, record.version)
            try:
                self.log.append(record)
            except CommitLogError:
                self.log.reset()
                self.log.append(record)
        _RECORDS_APPLIED.inc()
        if record.committed_ts_us:
            _APPLY_LATENCY.observe(
                max(0, int(time.time() * 1_000_000) - record.committed_ts_us)
            )
        _LAG_VERSIONS.set(self.lag)
        return True

    # --------------------------------------------------------------- status

    @property
    def lag(self) -> int:
        return max(0, self.primary_version - self.version)

    def status(self) -> dict:
        return {
            "role": "replica",
            "node": self.node,
            "term": self.term,
            "version": self.version,
            "fence": self.fence,
            "upstream": {"host": self.upstream[0], "port": self.upstream[1]},
            "connected": self.connected,
            "lag": self.lag,
            "last_error": self.last_error,
            "primary_degraded": self.primary_degraded,
            "primary_degraded_reason": self.primary_degraded_reason,
        }
