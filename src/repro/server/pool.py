"""Bounded worker pool — the server's admission control.

A fixed number of worker threads drain a bounded queue.  ``submit`` never
blocks: when the queue is full the request is rejected immediately with
:class:`Backpressure`, which the connection layer turns into the
structured ``backpressure`` protocol error.  Rejecting at the door keeps
the server's latency bounded under overload instead of letting every
client hang behind an unbounded backlog.
"""

from __future__ import annotations

import queue
import sys
import threading
import traceback
from typing import Any, Callable

from repro.obs.metrics import METRICS

__all__ = ["Backpressure", "WorkerPool"]

_REJECTIONS = METRICS.counter(
    "server.pool.rejections", "requests rejected by admission control"
)
_QUEUE_DEPTH = METRICS.gauge(
    "server.pool.queue_depth", "requests waiting for a worker"
)
_EXECUTED = METRICS.counter("server.pool.executed", "jobs executed by workers")


class Backpressure(Exception):
    """The worker queue is full; the request was not admitted."""

    def __init__(self, queue_size: int):
        super().__init__(f"server over capacity: {queue_size} requests queued")
        self.queue_size = queue_size


class WorkerPool:
    """N worker threads over one bounded FIFO queue."""

    def __init__(self, workers: int = 4, queue_size: int = 64, name: str = "repro"):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.queue_size = queue_size
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._threads: list[threading.Thread] = []
        self._name = name
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._work, name=f"{self._name}-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    @property
    def depth(self) -> int:
        """Jobs currently waiting for a worker (admission-control signal)."""
        return self._queue.qsize()

    def submit(self, job: Callable[[], Any]) -> None:
        """Enqueue ``job`` or raise :class:`Backpressure` without waiting."""
        if not self._started:
            raise RuntimeError("pool is not running")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            _REJECTIONS.inc()
            raise Backpressure(self.queue_size) from None
        _QUEUE_DEPTH.set(self._queue.qsize())

    def stop(self, drain: bool = True) -> None:
        """Stop the workers; with ``drain`` the queued jobs finish first."""
        if not self._started:
            return
        if not drain:
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
        for _ in self._threads:
            self._queue.put(None)  # one stop sentinel per worker
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads.clear()
        self._started = False
        _QUEUE_DEPTH.set(0)

    def _work(self) -> None:
        while True:
            job = self._queue.get()
            _QUEUE_DEPTH.set(self._queue.qsize())
            if job is None:
                return
            try:
                job()
                _EXECUTED.inc()
            except Exception:  # a job must never kill its worker
                traceback.print_exc(file=sys.stderr)
