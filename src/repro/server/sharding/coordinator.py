"""The sharding coordinator: routing, cross-shard 2PC, scatter-gather.

A coordinator is an ordinary :class:`~repro.server.daemon.ReproServer`
(it has its own image, holding decision records and any modules pushed
through it) whose request dispatch consults :attr:`Coordinator.OPS`
first.  Single-shard data operations are routed to the owning shard
group through one failover-aware :class:`~repro.server.client.ClusterClient`
per shard; cross-shard ``mset`` runs the two-phase commit of
:mod:`repro.server.sharding.twopc`; ``scatter`` fans a ``query`` out to
every shard and merges the partial results.

**Recovery.**  At start the coordinator refuses cross-shard writes until
one full resolver pass succeeded: recorded decisions are re-driven to
their participants (a crash after the decision fsync must still commit
everywhere) and orphaned in-doubt staging — a transaction this
coordinator owns with *no* decision record — is aborted (presumed
abort: the decision fsync had not happened, so no participant may have
applied).  The same pass then runs periodically, so a shard that was
unreachable during phase two converges as soon as it returns.

**Failpoints.**  ``twopc_failpoint`` crashes the daemon at a named
protocol point (``after-prepare``, ``after-decision``, ``mid-decide``);
the sharding chaos harness uses them to prove recovery handles every
crash window, and ``durable_decisions=False`` + ``mid-decide`` is the
negative control that loses atomicity exactly as the design predicts.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.server import protocol
from repro.server.client import (
    ClientError,
    ClusterClient,
    RetryPolicy,
    ServerError,
)
from repro.server.sharding.ring import ShardTopology, is_system_root
from repro.server.sharding.twopc import (
    DECISION_PREFIX,
    TwopcError,
    decision_root,
    make_decision,
    parse_decision,
)

__all__ = ["Coordinator"]

_TXNS_COMMITTED = METRICS.counter(
    "server.shard.twopc_committed", "cross-shard transactions committed"
)
_TXNS_ABORTED = METRICS.counter(
    "server.shard.twopc_aborted", "cross-shard transactions aborted"
)
_TXNS_RESOLVED = METRICS.counter(
    "server.shard.twopc_resolved", "in-doubt transactions resolved by recovery"
)
_SCATTERS = METRICS.counter(
    "server.shard.scatters", "scatter-gather queries coordinated"
)

#: merge strategies the scatter op accepts
_MERGES = ("concat", "sum", "values")


class Coordinator:
    """Request routing and 2PC over the shard groups of one topology."""

    def __init__(self, server):
        self.server = server
        config = server.config
        topology = server.topology
        if topology is None:
            raise ValueError(
                "a coordinator needs shard groups (config.shards) or a "
                "persisted __topology__ root"
            )
        self.topology: ShardTopology = topology
        self.node = config.node_id or "coordinator"
        self._routers: dict[int, ClusterClient] = {}
        self._router_locks = {
            sid: threading.Lock() for sid in range(len(topology.shards))
        }
        #: last fencing term observed per shard primary — prepares carry it
        #: so a deposed shard primary cannot stage writes for a transaction
        #: the new primary never hears about
        self._terms: dict[int, int] = {}
        #: txn ids with a live mset request on this process — recovery and
        #: the resolver must not abort them out from under the handler
        self._inflight: set[str] = set()
        self._inflight_lock = threading.Lock()
        self._seq = itertools.count(1)
        #: set once boot recovery completed one full resolver pass;
        #: cross-shard msets wait on it
        self._recovered = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._recover_loop, name="repro-shard-resolver", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        for router in list(self._routers.values()):
            router.close()
        self._routers.clear()

    # -------------------------------------------------------------- routing

    def _shard_call(self, sid: int, fn):
        """Run ``fn(router)`` against shard ``sid``'s ClusterClient.

        Routers are lazy and serialized per shard — ClusterClient is not
        thread-safe, and one connection per shard is plenty for a
        coordinator (parallelism comes from fanning out across shards).
        """
        lock = self._router_locks[sid]
        with lock:
            router = self._routers.get(sid)
            if router is None:
                router = ClusterClient(
                    self.topology.endpoints(sid),
                    timeout=self.server.config.replication_timeout + 25.0,
                    retry=RetryPolicy(max_attempts=4),
                    trace_sample=0.0,  # the incoming request owns the trace
                )
                self._routers[sid] = router
            return fn(router)

    def _wrap(self, sid: int, exc: Exception):
        """Shard-call failure → the structured error the client sees."""
        from repro.server.daemon import RequestError

        if isinstance(exc, RequestError):
            return exc
        if isinstance(exc, ServerError):
            details = dict(exc.details)
            details["shard"] = sid
            error = RequestError(exc.code, f"shard {sid}: {exc.message}")
            error.details = details
            return error
        if isinstance(exc, ClientError):
            # shard group unreachable: report retryable, the client may
            # come back once its failover settles
            return RequestError(
                protocol.E_BUSY, f"shard {sid} unreachable: {exc}", shard=sid
            )
        return RequestError(
            protocol.E_INTERNAL, f"shard {sid}: {type(exc).__name__}: {exc}",
            shard=sid,
        )

    def _refresh_term(self, sid: int) -> None:
        try:
            info = self._shard_call(
                sid, lambda r: r.op_primary("ping", idempotent=True)
            )
        except (ClientError, ServerError):
            self._terms.pop(sid, None)
            return
        term = info.get("term")
        if isinstance(term, int):
            self._terms[sid] = term

    def push_topology(self) -> dict:
        """Push the ring to every shard (``shard.adopt``); best effort.

        Shards assembled from config already hold the topology — this is
        how a deployment bootstrapped through a coordinator distributes
        it, and how epoch bumps will propagate.
        """
        wire = self.topology.as_dict()
        adopted: dict[int, bool] = {}
        for sid in range(len(self.topology.shards)):
            try:
                self._shard_call(
                    sid,
                    lambda r, sid=sid: r.op_primary(
                        "shard.adopt", topology=wire, shard=sid
                    ),
                )
                adopted[sid] = True
            except (ClientError, ServerError):
                adopted[sid] = False
        return adopted

    # ------------------------------------------------------- fan-out helper

    def _fan_out(self, sids: list[int], fn, timeout: float):
        """Run ``fn(sid)`` for each shard concurrently; {sid: (ok, value)}.

        Worker threads re-activate the caller's trace context so every
        per-shard request joins the one distributed trace of the incoming
        request.  A shard that misses ``timeout`` counts as failed (its
        thread may still finish in the background; results arriving late
        are discarded).
        """
        ctx = TRACER.current()
        results: dict[int, tuple[bool, object]] = {}
        results_lock = threading.Lock()

        def work(sid: int) -> None:
            with TRACER.activate(
                ctx.trace_id if ctx is not None else None,
                ctx.span_id if ctx is not None else None,
            ):
                try:
                    value = fn(sid)
                    outcome = (True, value)
                except Exception as exc:  # collected, classified by caller
                    outcome = (False, exc)
            with results_lock:
                results[sid] = outcome

        threads = [
            threading.Thread(
                target=work, args=(sid,), name=f"repro-shard-fan-{sid}",
                daemon=True,
            )
            for sid in sids
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        with results_lock:
            for sid in sids:
                if sid not in results:
                    results[sid] = (
                        False,
                        TimeoutError(f"shard {sid} did not answer in {timeout}s"),
                    )
            return dict(results)

    # ------------------------------------------------------------- data ops

    def op_get(self, session, request):
        from repro.server.daemon import RequestError

        roots = request.get("roots")
        if not isinstance(roots, list) or not roots:
            raise RequestError(protocol.E_BAD_REQUEST, "get needs a list of roots")
        if all(is_system_root(str(r)) for r in roots):
            return self.server._op_get(session, request)
        if any(is_system_root(str(r)) for r in roots):
            raise RequestError(
                protocol.E_BAD_REQUEST,
                "one get cannot mix system roots and sharded roots",
            )
        groups: dict[int, list[str]] = {}
        for name in roots:
            groups.setdefault(self.topology.shard_for(str(name)), []).append(
                str(name)
            )
        fanned = self._fan_out(
            sorted(groups),
            lambda sid: self._shard_get(sid, groups[sid]),
            timeout=self.server.config.twopc_timeout,
        )
        values: dict[str, object] = {}
        shards: dict[str, int] = {}
        for sid, (ok, payload) in sorted(fanned.items()):
            if not ok:
                raise self._wrap(sid, payload)
            values.update(payload.get("values", {}))
            shards[str(sid)] = int(payload.get("repl_version", 0))
        return {"values": values, "shards": shards, "version": self.server.txns.version}

    def _shard_get(self, sid: int, names: list[str]) -> dict:
        def run(router: ClusterClient) -> dict:
            operands: dict = {"roots": names}
            # per-shard read-your-writes: the router's floor is the highest
            # repl_version a write through this coordinator produced there
            if router.last_write_version > 0:
                operands["min_version"] = router.last_write_version
            return router.op_replica("get", **operands)

        return self._shard_call(sid, run)

    def op_set(self, session, request):
        from repro.server.daemon import RequestError

        root = request.get("root")
        if not isinstance(root, str):
            raise RequestError(protocol.E_BAD_REQUEST, "set needs a root name")
        if is_system_root(root):
            return self.server._op_set(session, request)
        sid = self.topology.shard_for(root)
        try:
            result = self._shard_call(
                sid,
                lambda r: r.op_primary("set", root=root, value=request.get("value")),
            )
        except Exception as exc:
            raise self._wrap(sid, exc) from exc
        result["shard"] = sid
        return result

    def op_run(self, session, request):
        """Persist modules locally, then broadcast to every shard primary.

        Scatter-gather ships *names* of stored functions, not code — the
        PTML plan fragments must already live on every shard, which is
        exactly what this broadcast establishes.
        """
        result = self.server._op_run(session, request)
        source = request.get("source")
        fanned = self._fan_out(
            list(range(len(self.topology.shards))),
            lambda sid: self._shard_call(
                sid, lambda r: r.op_primary("run", source=source)
            ),
            timeout=self.server.config.twopc_timeout,
        )
        for sid, (ok, payload) in sorted(fanned.items()):
            if not ok:
                raise self._wrap(sid, payload)
        result["shards"] = len(self.topology.shards)
        return result

    def op_topology(self, session, request):
        return {
            "topology": self.topology.as_dict(),
            "coordinator": True,
            "node": self.node,
            "recovered": self._recovered.is_set(),
        }

    # ---------------------------------------------------------------- mset

    def op_mset(self, session, request):
        from repro.server.daemon import RequestError

        writes = request.get("writes")
        if not isinstance(writes, dict) or not writes:
            raise RequestError(
                protocol.E_BAD_REQUEST, "mset needs a writes object"
            )
        if all(is_system_root(str(r)) for r in writes):
            return self.server._op_mset(session, request)
        if any(is_system_root(str(r)) for r in writes):
            raise RequestError(
                protocol.E_BAD_REQUEST,
                "one mset cannot mix system roots and sharded roots",
            )
        groups: dict[int, dict] = {}
        for root, wire in writes.items():
            groups.setdefault(self.topology.shard_for(str(root)), {})[
                str(root)
            ] = wire
        if len(groups) == 1:
            # single-shard fast path: one ordinary atomic commit there
            (sid, shard_writes), = groups.items()
            try:
                result = self._shard_call(
                    sid, lambda r: r.op_primary("mset", writes=shard_writes)
                )
            except Exception as exc:
                raise self._wrap(sid, exc) from exc
            return {
                "committed": True,
                "txn": None,
                "shards": {str(sid): int(result.get("repl_version", 0))},
                "roots": result.get("roots", {}),
            }
        return self._two_phase(request, groups)

    def _two_phase(self, request, groups: dict[int, dict]) -> dict:
        from repro.server.daemon import RequestError

        config = self.server.config
        if not self._recovered.wait(timeout=config.twopc_timeout):
            raise RequestError(
                protocol.E_BUSY,
                "coordinator is still recovering in-doubt transactions",
            )
        participants = sorted(groups)
        txn = f"{self.node}:{int(time.time() * 1_000_000)}:{next(self._seq)}"
        with self._inflight_lock:
            self._inflight.add(txn)
        try:
            TRACER.event(
                "server.shard.twopc_begin", txn=txn, participants=participants
            )
            fanned = self._fan_out(
                participants,
                lambda sid: self._prepare_shard(sid, txn, participants, groups[sid]),
                timeout=config.twopc_timeout,
            )
            failed = {sid: exc for sid, (ok, exc) in fanned.items() if not ok}
            if failed:
                # phase one failed somewhere: abort everywhere (idempotent —
                # shards that never staged treat the abort as a no-op), and
                # anything unreachable is caught by presumed-abort recovery
                for sid in participants:
                    if sid not in failed:
                        try:
                            self._decide_shard(sid, txn, "abort")
                        except (ClientError, ServerError):
                            pass
                _TXNS_ABORTED.inc()
                sid, exc = sorted(failed.items())[0]
                cause = self._wrap(sid, exc)
                error = RequestError(
                    protocol.E_TWOPC,
                    f"prepare failed on shard {sid}: {cause}; "
                    f"transaction rolled back",
                    txn=txn,
                    shard=sid,
                )
                raise error from (exc if isinstance(exc, Exception) else None)
            self._failpoint("after-prepare")
            if config.durable_decisions:
                # THE commit point: the decision record's fsync.  Crash
                # before it → presumed abort; crash after it → recovery
                # re-drives the commit to every participant.
                self._record_decision(txn, participants)
            self._failpoint("after-decision")
            versions: dict[str, int] = {}
            first = True
            for sid in participants:
                result = self._decide_shard(sid, txn, "commit")
                versions[str(sid)] = int(result.get("repl_version", 0))
                if first:
                    first = False
                    self._failpoint("mid-decide")
            if config.durable_decisions:
                self._clear_decision(txn)
            _TXNS_COMMITTED.inc()
            TRACER.event("server.shard.twopc_commit", txn=txn)
            return {
                "committed": True,
                "txn": txn,
                "participants": participants,
                "shards": versions,
            }
        finally:
            with self._inflight_lock:
                self._inflight.discard(txn)

    def _prepare_shard(
        self, sid: int, txn: str, participants: list[int], writes: dict
    ) -> dict:
        operands = {
            "txn": txn,
            "coordinator": self.node,
            "participants": participants,
            "writes": writes,
        }
        term = self._terms.get(sid)
        if term is not None:
            operands["term"] = term

        def send(router: ClusterClient) -> dict:
            # prepare is idempotent on the shard (an existing staging root
            # answers "already"), so a connection lost mid-request may be
            # replayed safely
            return router.op_primary("shard.prepare", idempotent=True, **operands)

        try:
            result = self._shard_call(sid, send)
        except ServerError as exc:
            if exc.code != protocol.E_STALE_TERM:
                raise
            # the shard failed over since we last looked: learn the new
            # primary's term and retry once under it
            self._refresh_term(sid)
            term = self._terms.get(sid)
            if term is not None:
                operands["term"] = term
            else:
                operands.pop("term", None)
            result = self._shard_call(sid, send)
        term = result.get("term")
        if isinstance(term, int):
            self._terms[sid] = term
        return result

    def _decide_shard(self, sid: int, txn: str, decision: str) -> dict:
        return self._shard_call(
            sid,
            lambda r: r.op_primary(
                "shard.decide", idempotent=True, txn=txn, decision=decision
            ),
        )

    def _failpoint(self, name: str) -> None:
        from repro.server.daemon import RequestError

        if self.server.config.twopc_failpoint != name:
            return
        TRACER.event("server.shard.failpoint", failpoint=name)
        # die like a crash: the response must never reach the client (the
        # invariant under test is about *acknowledged* writes)
        threading.Thread(
            target=self.server.crash, name="repro-shard-failpoint", daemon=True
        ).start()
        raise RequestError(
            protocol.E_SHUTTING_DOWN, f"coordinator crashed at failpoint {name!r}"
        )

    # ------------------------------------------------------ decision records

    def _record_decision(self, txn: str, participants: list[int]) -> None:
        server = self.server
        record = make_decision(txn, "commit", participants)
        with server.txns.write(timeout=server.config.lock_timeout):
            server.heap.set_root(decision_root(txn), server.heap.store(record))

    def _clear_decision(self, txn: str) -> None:
        server = self.server
        with server.txns.write(timeout=server.config.lock_timeout):
            server.heap.remove_root(decision_root(txn))

    def _pending_decisions(self) -> list[dict]:
        heap = self.server.heap
        out = []
        for name in heap.root_names():
            if not name.startswith(DECISION_PREFIX):
                continue
            try:
                out.append(parse_decision(heap.load_root(name)))
            except TwopcError:
                continue
        return out

    # -------------------------------------------------------------- recovery

    def _resolve_once(self) -> bool:
        """One resolver pass; True when every shard was reached.

        Two halves: (1) re-drive recorded decisions — a decision root that
        still exists means phase two may not have reached every
        participant; (2) presumed abort — staging on a shard for a
        transaction this coordinator owns, with no live request and no
        decision record, proves the transaction never reached its commit
        point, so it is aborted.
        """
        complete = True
        decided = {d["txn"]: d for d in self._pending_decisions()}
        for txn, decision in decided.items():
            with self._inflight_lock:
                if txn in self._inflight:
                    continue
            done = True
            for sid in decision["participants"]:
                if sid >= len(self.topology.shards):
                    continue
                try:
                    self._decide_shard(sid, txn, decision["decision"])
                except (ClientError, ServerError):
                    done = False
                    complete = False
            if done:
                self._clear_decision(txn)
                _TXNS_RESOLVED.inc()
                TRACER.event(
                    "server.shard.twopc_resolved", txn=txn,
                    decision=decision["decision"],
                )
        for sid in range(len(self.topology.shards)):
            try:
                listed = self._shard_call(
                    sid, lambda r: r.op_replica("shard.indoubt")
                )
            except (ClientError, ServerError):
                complete = False
                continue
            for entry in listed.get("indoubt", []):
                txn = entry.get("txn")
                if not isinstance(txn, str):
                    continue
                if entry.get("coordinator") != self.node:
                    continue  # another coordinator's transaction
                with self._inflight_lock:
                    if txn in self._inflight:
                        continue
                if txn in decided:
                    continue  # the re-drive half handles it
                try:
                    self._decide_shard(sid, txn, "abort")
                    _TXNS_RESOLVED.inc()
                    TRACER.event(
                        "server.shard.twopc_presumed_abort", txn=txn, shard=sid
                    )
                except (ClientError, ServerError):
                    complete = False
        return complete

    def _recover_loop(self) -> None:
        # best-effort topology push first: shards assembled by hand learn
        # the ring before any ownership-checked traffic arrives
        try:
            self.push_topology()
        except Exception:
            pass
        while not self._stop.is_set():
            try:
                if self._resolve_once():
                    break
            except Exception:
                pass
            self._stop.wait(0.5)
        self._recovered.set()
        TRACER.event("server.shard.recovered")
        interval = self.server.config.resolver_interval
        if interval is None:
            return
        while not self._stop.wait(interval):
            try:
                self._resolve_once()
            except Exception:
                pass

    def indoubt_count(self) -> int:
        """Decision roots still pending phase two (the `repro top` column)."""
        return len(self._pending_decisions())

    # -------------------------------------------------------------- scatter

    def op_scatter(self, session, request):
        from repro.server.daemon import RequestError

        merge = request.get("merge", "concat")
        if merge not in _MERGES:
            raise RequestError(
                protocol.E_BAD_REQUEST,
                f"unknown merge {merge!r} (one of {', '.join(_MERGES)})",
            )
        module = request.get("module")
        function = request.get("function")
        prefix = request.get("prefix", "")
        _SCATTERS.inc()

        def query_shard(sid: int) -> dict:
            def run(router: ClusterClient) -> dict:
                operands: dict = {"prefix": prefix}
                if module and function:
                    operands["module"] = module
                    operands["function"] = function
                if request.get("step_limit") is not None:
                    operands["step_limit"] = request.get("step_limit")
                if router.last_write_version > 0:
                    operands["min_version"] = router.last_write_version
                return router.op_replica("query", **operands)

            return self._shard_call(sid, run)

        sids = list(range(len(self.topology.shards)))
        fanned = self._fan_out(
            sids, query_shard, timeout=self.server.config.twopc_timeout
        )
        partials: dict[int, dict] = {}
        for sid, (ok, payload) in sorted(fanned.items()):
            if not ok:
                raise self._wrap(sid, payload)
            partials[sid] = payload
        shards = {
            str(sid): {
                "count": int(p.get("count", 0)),
                "repl_version": int(p.get("repl_version", 0)),
            }
            for sid, p in partials.items()
        }
        result: dict = {"merge": merge, "shards": shards}
        if module and function:
            values = [
                (sid, p.get("value")) for sid, p in sorted(partials.items())
            ]
            if merge == "sum":
                total = 0
                for _sid, value in values:
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        raise RequestError(
                            protocol.E_BAD_REQUEST,
                            "merge=sum needs numeric per-shard values, got "
                            f"{type(value).__name__}",
                        )
                    total += value
                result["value"] = total
            else:
                result["partials"] = [
                    {"shard": sid, "value": value} for sid, value in values
                ]
        else:
            merged: dict[str, object] = {}
            for _sid, partial in sorted(partials.items()):
                merged.update(partial.get("values", {}))
            result["values"] = merged
            result["count"] = len(merged)
        return result

    # ---------------------------------------------------------------- stats

    def op_stats(self, session, request):
        report = self.server._op_stats(session, request)
        report["coordinator"] = {
            "node": self.node,
            "recovered": self._recovered.is_set(),
            "inflight": len(self._inflight),
            "indoubt_decisions": self.indoubt_count(),
            "epoch": self.topology.epoch,
        }
        rows: dict[str, dict] = {}
        for sid in range(len(self.topology.shards)):
            row: dict = {
                "endpoints": [
                    f"{host}:{port}"
                    for host, port in self.topology.endpoints(sid)
                ],
            }
            try:
                stats = self._shard_call(
                    sid, lambda r: r.op_primary("stats", idempotent=True)
                )
            except (ClientError, ServerError) as exc:
                row["error"] = str(exc)
                rows[str(sid)] = row
                continue
            row["role"] = stats.get("role")
            row["repl_version"] = stats.get("repl_version")
            latency = stats.get("latency_us") or {}
            row["p99_us"] = latency.get("p99")
            replication = stats.get("replication") or {}
            row["term"] = replication.get("term")
            subscribers = replication.get("subscribers") or []
            row["replicas"] = len(subscribers)
            row["lag"] = max((s.get("lag", 0) for s in subscribers), default=0)
            try:
                listed = self._shard_call(
                    sid, lambda r: r.op_replica("shard.indoubt")
                )
                row["indoubt"] = len(listed.get("indoubt", []))
            except (ClientError, ServerError):
                row["indoubt"] = None
            rows[str(sid)] = row
        report["shards"] = rows
        return report

    #: op table consulted by the daemon's dispatch before its own — the
    #: coordinator overrides the data plane and augments introspection;
    #: everything else (ping, call, begin/commit, repl.*, …) falls through
    OPS = {
        "get": op_get,
        "set": op_set,
        "mset": op_mset,
        "run": op_run,
        "scatter": op_scatter,
        "topology": op_topology,
        "stats": op_stats,
    }
