"""Two-phase-commit record formats, layered on the persistent store.

2PC here owns no storage of its own: both phases are ordinary durable
commits of ordinary roots, so every guarantee the fenced commit log gives
single-shard writes (fsync before ack, replication to the shard group,
fencing against deposed primaries) extends to the cross-shard protocol
without new machinery.

**Prepare** — the participant shard commits a *staging root*
``__2pc__:<txn>`` holding the transaction's writes for that shard plus
the participant list.  The commit flows through the shard's commit log
and replicas like any write; once it is acked, the shard is *in doubt*
for that transaction and will apply or discard the staged writes only on
a coordinator decision (or presumed-abort recovery).

**Decision** — the coordinator commits a *decision root* ``2pc:<txn>`` on
its own image recording ``commit`` plus the participants still pending
the phase-two message.  The decision commit's fsync is the transaction's
commit point.  As phase-two ``shard.decide`` calls succeed, participants
are removed from ``pending``; when the list drains, the decision root is
retired (:meth:`repro.store.heap.ObjectHeap.remove_root`).

**Presumed abort** — a participant in doubt whose coordinator has *no*
decision root for the transaction learns the transaction never reached
its commit point and rolls the staging root back.  This is safe precisely
because the decision is durable *before* any phase-two message: absence
of the record proves absence of a commit decision.

The failure matrix lives in docs/sharding.md; the edge-case tests in
tests/server/test_twopc_edge.py.
"""

from __future__ import annotations

import json

__all__ = [
    "STAGING_PREFIX",
    "DECISION_PREFIX",
    "TwopcError",
    "staging_root",
    "decision_root",
    "make_staging",
    "make_decision",
    "parse_staging",
    "parse_decision",
]

#: participant-side staging roots — dunder prefix keeps them out of the
#: sharded keyspace (see :func:`repro.server.sharding.ring.is_system_root`)
#: and lets the replication sink stamp 2PC phases into commit-log ``meta``
STAGING_PREFIX = "__2pc__:"

#: coordinator-side decision roots — the ``name:space`` convention also
#: classifies them as system roots
DECISION_PREFIX = "2pc:"


class TwopcError(Exception):
    """Malformed 2PC record or an illegal state transition."""


def staging_root(txn: str) -> str:
    return STAGING_PREFIX + txn


def decision_root(txn: str) -> str:
    return DECISION_PREFIX + txn


def make_staging(
    txn: str, coordinator: str, participants: list[int], writes: dict
) -> dict:
    """Participant staging record, in heap-storable form.

    ``writes`` maps root name → value in JSON wire form
    (:func:`repro.server.protocol.to_jsonable`); it is persisted as
    canonical JSON *text* — the store's serializer has no plain-list tag,
    and the text form also means the decide step reconstructs exactly the
    bytes the client sent, independent of object identity.  Sequence
    fields are tuples for the same serializer reason.
    """
    return {
        "txn": str(txn),
        "coordinator": str(coordinator),
        "participants": tuple(int(p) for p in participants),
        "writes": json.dumps(dict(writes), sort_keys=True, separators=(",", ":")),
        "state": "prepared",
    }


def make_decision(
    txn: str, decision: str, participants: list[int], pending=None
) -> dict:
    """Coordinator decision record; ``pending`` starts as all participants
    and drains as phase-two acknowledgements arrive."""
    if decision not in ("commit", "abort"):
        raise TwopcError(f"decision must be commit|abort, got {decision!r}")
    return {
        "txn": str(txn),
        "decision": decision,
        "participants": tuple(int(p) for p in participants),
        "pending": tuple(
            int(p) for p in (participants if pending is None else pending)
        ),
    }


def _require(record, key: str, kind, what: str):
    value = record.get(key)
    if not isinstance(value, kind):
        raise TwopcError(f"{what} record missing/malformed {key!r}: {value!r}")
    return value


def parse_staging(record) -> dict:
    """Validate a staging record loaded from an image (raises TwopcError);
    ``writes`` comes back as the root → wire-value dict."""
    if not isinstance(record, dict):
        raise TwopcError(f"staging record is not a dict: {record!r}")
    writes_text = _require(record, "writes", str, "staging")
    try:
        writes = json.loads(writes_text)
    except json.JSONDecodeError as exc:
        raise TwopcError(f"staging writes are not valid JSON: {exc}") from exc
    if not isinstance(writes, dict):
        raise TwopcError(f"staging writes must be an object: {writes!r}")
    return {
        "txn": _require(record, "txn", str, "staging"),
        "coordinator": _require(record, "coordinator", str, "staging"),
        "participants": [
            int(p) for p in _require(record, "participants", (list, tuple), "staging")
        ],
        "writes": writes,
        "state": str(record.get("state", "prepared")),
    }


def parse_decision(record) -> dict:
    """Validate a decision record loaded from an image (raises TwopcError)."""
    if not isinstance(record, dict):
        raise TwopcError(f"decision record is not a dict: {record!r}")
    decision = _require(record, "decision", str, "decision")
    if decision not in ("commit", "abort"):
        raise TwopcError(f"decision record has bad decision {decision!r}")
    return {
        "txn": _require(record, "txn", str, "decision"),
        "decision": decision,
        "participants": [
            int(p)
            for p in _require(record, "participants", (list, tuple), "decision")
        ],
        "pending": [int(p) for p in record.get("pending", [])],
    }
