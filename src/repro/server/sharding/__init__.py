"""Horizontal partitioning of the persistent store across shard groups.

A *sharded deployment* is N independent replicated units (each a primary
plus replicas, exactly as in :mod:`repro.server.replication`) plus one or
more *coordinator* daemons.  Root names are assigned to shard groups by a
consistent-hash ring (:mod:`repro.server.sharding.ring`); the ring is
itself persisted under the replicated ``__topology__`` root on every
image, so topology survives restarts and ships to replicas for free.

Coordinators route single-shard operations, run cross-shard writes as
two-phase commit layered on the fenced commit log
(:mod:`repro.server.sharding.twopc`,
:mod:`repro.server.sharding.coordinator`), and evaluate scatter-gather
reads by shipping plan fragments to every shard and merging the partial
results.  See docs/sharding.md for the full design and failure matrix.
"""

# NOTE: Coordinator is intentionally NOT re-exported here.  The client
# imports the ring (pure placement) and the coordinator imports the
# client (routing); pulling the coordinator into the package __init__
# would close that cycle.  Import it from its module:
# ``from repro.server.sharding.coordinator import Coordinator``.
from repro.server.sharding.ring import (
    HashRing,
    ShardTopology,
    TOPOLOGY_ROOT,
    is_system_root,
)
from repro.server.sharding.twopc import (
    DECISION_PREFIX,
    STAGING_PREFIX,
    decision_root,
    staging_root,
)

__all__ = [
    "HashRing",
    "ShardTopology",
    "TOPOLOGY_ROOT",
    "is_system_root",
    "STAGING_PREFIX",
    "DECISION_PREFIX",
    "staging_root",
    "decision_root",
]
