"""Consistent-hash ring: root names → shard groups.

Placement must be a pure function of the topology — every coordinator,
shard and client that holds the same topology must route a root to the
same shard group with no coordination.  A consistent-hash ring gives
that, plus minimal movement when the shard set changes: each shard
projects ``vnodes`` points onto a 2^64 ring (SHA-256 of ``"s<id>:<v>"``),
a root name hashes to a point the same way, and the first shard point at
or clockwise-after the root's point owns it.  Adding a shard steals
roughly ``1/(N+1)`` of each existing shard's keyspace instead of
reshuffling everything.

*System* roots (:func:`is_system_root`) are exempt from placement: names
like ``module:*``, ``server:*``, ``__replication__`` or the 2PC staging
roots are per-image infrastructure that every image owns locally — they
are deliberately outside the sharded keyspace, and ``__topology__``
itself must be readable before any routing can happen.

The topology is persisted under the ``__topology__`` root of every image
in wire form (:meth:`ShardTopology.as_dict`), so it replicates through
the ordinary commit-log shipping and survives restarts; coordinators push
it to shards via the ``shard.adopt`` op when a deployment is first
assembled.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

__all__ = [
    "TOPOLOGY_ROOT",
    "SHARD_ROOT",
    "RingError",
    "is_system_root",
    "ring_hash",
    "HashRing",
    "ShardTopology",
]

#: replicated root holding the serialized topology on every image
TOPOLOGY_ROOT = "__topology__"

#: replicated root holding this shard group's integer id, so a restarted
#: daemon re-enforces ownership without waiting to be re-adopted
SHARD_ROOT = "__shard__"

#: default virtual nodes per shard — enough that keyspace shares stay
#: within a few percent of equal for small shard counts
DEFAULT_VNODES = 64

_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


class RingError(Exception):
    """Malformed topology or a placement query it cannot answer."""


def is_system_root(name: str) -> bool:
    """True for per-image infrastructure roots exempt from placement.

    Covers the dunder roots (``__replication__``, ``__topology__``, the
    ``__2pc__:`` staging namespace) and every namespaced root
    (``module:``, ``server:``, ``analysis:``, ``obs:``, ``2pc:`` …) — the
    colon convention is what the rest of the codebase already uses for
    image-local bookkeeping.
    """
    return name.startswith("__") or ":" in name


def ring_hash(key: str) -> int:
    """Position of ``key`` on the 2^64 ring (first 8 bytes of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """The pure placement function: shard ids + vnodes → ring points."""

    def __init__(self, shard_ids: list[int], vnodes: int = DEFAULT_VNODES):
        if not shard_ids:
            raise RingError("a ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise RingError(f"duplicate shard ids: {shard_ids}")
        if vnodes < 1:
            raise RingError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_ids = sorted(int(s) for s in shard_ids)
        self.vnodes = int(vnodes)
        points: list[tuple[int, int]] = []
        for sid in self.shard_ids:
            for v in range(self.vnodes):
                points.append((ring_hash(f"s{sid}:{v}"), sid))
        # ties are astronomically unlikely but must still be deterministic:
        # sort on (point, shard) so every process builds the same ring
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, name: str) -> int:
        """Owning shard id: first ring point clockwise from the key."""
        idx = bisect.bisect_left(self._points, ring_hash(name))
        if idx == len(self._points):
            idx = 0  # wrap: the lowest point owns the top arc
        return self._owners[idx]

    def owned_ranges(self, shard_id: int) -> list[tuple[int, int]]:
        """The [start, end] arcs of the ring owned by ``shard_id``.

        Each arc is ``(predecessor_point + 1, point)`` inclusive, with the
        top-of-ring wrap folded into two arcs.  Used for introspection
        (``ping``/``stats`` report the owned keyspace), not routing.
        """
        if shard_id not in self.shard_ids:
            raise RingError(f"unknown shard id {shard_id}")
        ranges: list[tuple[int, int]] = []
        for i, point in enumerate(self._points):
            if self._owners[i] != shard_id:
                continue
            if i == 0:
                # the lowest point also owns the arc above the highest point
                ranges.append((self._points[-1] + 1, _RING_SIZE - 1))
                ranges.append((0, point))
            else:
                ranges.append((self._points[i - 1] + 1, point))
        return sorted(ranges)

    def share(self, shard_id: int) -> float:
        """Fraction of the ring owned by ``shard_id`` (introspection)."""
        total = 0
        for start, end in self.owned_ranges(shard_id):
            total += end - start + 1
        return total / _RING_SIZE


@dataclass(frozen=True)
class ShardTopology:
    """The deployment map: one endpoint list per shard group + the ring.

    ``shards[i]`` is shard group ``i``'s endpoints ``[(host, port), ...]``
    — primary first by convention, but clients rediscover roles, so order
    is only a hint.  ``epoch`` increments on every topology change so a
    node can tell a newer map from the one it holds.
    """

    shards: tuple[tuple[tuple[str, int], ...], ...]
    vnodes: int = DEFAULT_VNODES
    epoch: int = 1
    _ring: HashRing = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.shards:
            raise RingError("topology needs at least one shard group")
        object.__setattr__(
            self, "_ring", HashRing(list(range(len(self.shards))), self.vnodes)
        )

    # ------------------------------------------------------------- placement

    @property
    def ring(self) -> HashRing:
        return self._ring

    def shard_for(self, name: str) -> int:
        """Owning shard id for a *user* root (system roots have no owner)."""
        if is_system_root(name):
            raise RingError(f"system root {name!r} is not placed on the ring")
        return self._ring.shard_for(name)

    def shard_ids(self) -> list[int]:
        return list(range(len(self.shards)))

    def endpoints(self, shard_id: int) -> list[tuple[str, int]]:
        try:
            group = self.shards[shard_id]
        except IndexError:
            raise RingError(f"unknown shard id {shard_id}") from None
        return [(h, p) for h, p in group]

    # ------------------------------------------------------------- wire form

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "vnodes": self.vnodes,
            "shards": [
                [[host, port] for host, port in group] for group in self.shards
            ],
        }

    @classmethod
    def from_dict(cls, wire) -> "ShardTopology":
        if not isinstance(wire, dict):
            raise RingError(f"topology wire form must be a dict, got {wire!r}")
        try:
            shards = tuple(
                tuple((str(host), int(port)) for host, port in group)
                for group in wire["shards"]
            )
            return cls(
                shards=shards,
                vnodes=int(wire.get("vnodes", DEFAULT_VNODES)),
                epoch=int(wire.get("epoch", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RingError(f"malformed topology: {exc}") from exc

    @classmethod
    def build(
        cls,
        groups: list[list[tuple[str, int]]],
        vnodes: int = DEFAULT_VNODES,
        epoch: int = 1,
    ) -> "ShardTopology":
        return cls(
            shards=tuple(tuple((h, int(p)) for h, p in g) for g in groups),
            vnodes=vnodes,
            epoch=epoch,
        )

    # --------------------------------------------------------- introspection

    def describe_shard(self, shard_id: int) -> dict:
        """Ring placement summary for ``ping``/``stats``."""
        ranges = self._ring.owned_ranges(shard_id)
        # the widest arc, as hex endpoints — a human-readable anchor for
        # "which keyspace does this node own"
        widest = max(ranges, key=lambda r: r[1] - r[0])
        return {
            "shard": shard_id,
            "shards": len(self.shards),
            "epoch": self.epoch,
            "vnodes": self.vnodes,
            "share": round(self._ring.share(shard_id), 4),
            "ranges": len(ranges),
            "widest_range": [f"{widest[0]:016x}", f"{widest[1]:016x}"],
        }
