"""Background integrity scrub and anti-entropy replica repair.

Bit rot on cold pages is invisible to a running daemon: the page checksum
layer only verifies pages that something *reads*, and a hot working set
plus the object cache can leave most of the image untouched for days.
This module makes corruption a detected-and-repaired event instead of a
read-time surprise:

**Scrub** — :func:`scrub_heap` walks every committed object and re-reads
its full page chain through the checksummed pager
(:meth:`ObjectHeap.committed_payload` bypasses the object cache on
purpose), under short read transactions so writers are never starved, at
a token-bucket page budget so a big image doesn't monopolize disk
bandwidth.  The daemon runs it periodically (``--scrub-interval``).

**Anti-entropy repair** — when scrub finds corruption on a replica, a
full snapshot resync would work but ships the whole image.  Instead the
replica and its primary exchange a digest tree over OID ranges: OIDs are
bucketed (``oid >> OID_BUCKET_BITS``), each bucket hashed over its
``(oid, payload)`` pairs, and only buckets whose digests differ are
re-fetched (wire ops ``repl.digest`` / ``repl.fetch``).  A locally
unreadable object folds a poison marker into its bucket digest, so rot
always diverges the digest even though the payload cannot be read.
Fetched payloads are applied under the write lock with the replica's own
roots and OID counter — repair replaces bytes, never logical state, so
the follower's replication cursor stays valid throughout.

Version skew would make every recently-written bucket look diverged, so
digests are only compared when both sides report the same replication
version; the repair loop waits for the replica to catch up first.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.store.heap import HeapError, ObjectHeap
from repro.store.pager import DEFAULT_PAGE_SIZE, PageError

__all__ = [
    "OID_BUCKET_BITS",
    "bucket_of",
    "bucket_digests",
    "digest_root",
    "diff_buckets",
    "ScrubReport",
    "scrub_heap",
    "RepairError",
    "repair_from_upstream",
]

_SCRUB_CYCLES = METRICS.counter("store.scrub.cycles", "scrub cycles completed")
_SCRUB_OIDS = METRICS.counter("store.scrub.oids", "objects verified by scrub")
_SCRUB_PAGES = METRICS.counter("store.scrub.pages", "pages (approx) read by scrub")
_SCRUB_CORRUPT = METRICS.counter(
    "store.scrub.corrupt", "corrupt objects detected by scrub"
)
_REPAIR_ROUNDS = METRICS.counter("store.repair.rounds", "anti-entropy rounds run")
_REPAIR_BUCKETS = METRICS.counter(
    "store.repair.buckets_fetched", "diverged OID buckets re-fetched from the primary"
)
_REPAIR_OBJECTS = METRICS.counter(
    "store.repair.objects_applied", "objects re-applied by anti-entropy repair"
)

#: OIDs per digest bucket = 2**OID_BUCKET_BITS; both sides of the exchange
#: must agree on it (the ``repl.digest`` response carries it for checking)
OID_BUCKET_BITS = 6


class RepairError(Exception):
    """Anti-entropy repair could not converge the replica."""


def bucket_of(oid: int) -> int:
    return int(oid) >> OID_BUCKET_BITS


def bucket_digests(heap: ObjectHeap) -> dict[int, str]:
    """SHA-256 per OID bucket over the committed ``(oid, payload)`` pairs.

    Call under a read transaction.  An object whose chain cannot be read
    (bit rot) contributes a deterministic poison marker instead of its
    payload, so the bucket digest diverges from any healthy peer's.
    """
    hashes: dict[int, "hashlib._Hash"] = {}
    for oid in heap.committed_oids():
        h = hashes.get(bucket_of(oid))
        if h is None:
            h = hashes[bucket_of(oid)] = hashlib.sha256()
        try:
            payload = heap.committed_payload(oid)
        except (PageError, HeapError, OSError):
            payload = b"\x00corrupt\x00" + struct.pack("<Q", oid)
        h.update(struct.pack("<QI", oid, len(payload)))
        h.update(payload)
    return {bucket: h.hexdigest() for bucket, h in hashes.items()}


def digest_root(digests: dict[int, str]) -> str:
    """One digest over all bucket digests (cheap equality precheck)."""
    h = hashlib.sha256()
    for bucket in sorted(digests):
        h.update(struct.pack("<Q", bucket))
        h.update(digests[bucket].encode("ascii"))
    return h.hexdigest()


def diff_buckets(local: dict, remote: dict) -> list[int]:
    """Bucket ids present or differing on either side, ascending."""
    keys = {int(k) for k in local} | {int(k) for k in remote}
    return sorted(
        b
        for b in keys
        if local.get(b, local.get(str(b))) != remote.get(b, remote.get(str(b)))
    )


# ----------------------------------------------------------------------- scrub


class _TokenBucket:
    """Pages-per-second budget for the scrub's disk reads (0 = unbounded)."""

    def __init__(self, rate: float):
        self.rate = float(rate)
        self.tokens = self.rate
        self.last = time.monotonic()

    def take(self, n: int) -> None:
        if self.rate <= 0:
            return
        need = min(float(n), self.rate)  # a huge object still makes progress
        while True:
            now = time.monotonic()
            self.tokens = min(self.rate, self.tokens + (now - self.last) * self.rate)
            self.last = now
            if self.tokens >= need:
                self.tokens -= need
                return
            time.sleep(min(0.5, (need - self.tokens) / self.rate))


@dataclass
class ScrubReport:
    """One scrub cycle's outcome."""

    oids_checked: int = 0
    pages_read: int = 0
    corrupt_oids: list[int] = field(default_factory=list)
    skipped: int = 0
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.corrupt_oids

    def as_dict(self) -> dict:
        return {
            "oids_checked": self.oids_checked,
            "pages_read": self.pages_read,
            "corrupt_oids": list(self.corrupt_oids),
            "skipped": self.skipped,
            "duration_s": round(self.duration_s, 4),
            "clean": self.clean,
        }


def scrub_heap(
    heap: ObjectHeap,
    txns=None,
    *,
    pages_per_sec: float = 0,
    batch: int = 64,
    page_size: int = DEFAULT_PAGE_SIZE,
    stop=None,
) -> ScrubReport:
    """Verify every committed object's page chain against its checksums.

    Takes a short read transaction per ``batch`` of objects (when a
    :class:`TransactionManager` is supplied) so a long scrub of a big
    image never starves writers; ``pages_per_sec`` bounds the disk-read
    rate; ``stop`` (an Event) aborts between batches.
    """
    started = time.perf_counter()
    report = ScrubReport()
    bucket = _TokenBucket(pages_per_sec)

    def snapshot_oids() -> list[int]:
        if txns is None:
            return heap.committed_oids()
        with txns.read():
            return heap.committed_oids()

    def check(oid: int) -> None:
        try:
            payload = heap.committed_payload(oid)
        except (PageError, OSError):
            report.corrupt_oids.append(oid)
            _SCRUB_CORRUPT.inc()
            return
        except HeapError:
            report.skipped += 1  # dropped between snapshot and read
            return
        pages = max(1, -(-len(payload) // page_size))
        report.oids_checked += 1
        report.pages_read += pages
        _SCRUB_OIDS.inc()
        _SCRUB_PAGES.inc(pages)
        bucket.take(pages)

    oids = snapshot_oids()
    for start in range(0, len(oids), max(1, batch)):
        if stop is not None and stop.is_set():
            break
        chunk = oids[start : start + max(1, batch)]
        if txns is None:
            for oid in chunk:
                check(oid)
        else:
            with txns.read():
                for oid in chunk:
                    check(oid)
    report.duration_s = time.perf_counter() - started
    _SCRUB_CYCLES.inc()
    TRACER.event(
        "store.scrub.cycle",
        oids=report.oids_checked,
        pages=report.pages_read,
        corrupt=len(report.corrupt_oids),
        duration_ms=int(report.duration_s * 1000),
    )
    return report


# ---------------------------------------------------------------------- repair


def _local_version(heap: ObjectHeap) -> int:
    """The replication version the image's committed state embodies."""
    from repro.server.replication import replication_state

    return replication_state(heap)["version"]


def repair_from_upstream(
    heap: ObjectHeap,
    txns,
    upstream: tuple[str, int],
    *,
    timeout: float = 30.0,
    lock_timeout: float = 10.0,
    max_rounds: int = 8,
    settle: float = 0.25,
) -> dict:
    """Converge this replica's bytes with its primary's, range by range.

    Rounds of digest-compare → fetch-diverged → apply until the digest
    trees match (or ``max_rounds``).  Rounds where the primary's version
    differs from the replica's applied version are skipped with a short
    sleep — comparing mid-catch-up would flag every fresh write as
    divergence and degenerate into a full copy.

    Returns a report dict; ``converged`` is the success flag.  Never
    raises on divergence (the caller decides whether to escalate to a
    snapshot resync); network errors propagate as client exceptions.
    """
    from repro.server.client import Client

    host, port = upstream
    report = {
        "rounds": 0,
        "skew_waits": 0,
        "buckets_fetched": 0,
        "objects_applied": 0,
        "converged": False,
    }
    with Client(host=host, port=int(port), timeout=timeout) as client:
        for _ in range(max_rounds):
            report["rounds"] += 1
            _REPAIR_ROUNDS.inc()
            remote = client.request("repl.digest")
            with txns.read(timeout=lock_timeout):
                local_version = _local_version(heap)
                local = bucket_digests(heap)
            if int(remote.get("version", -1)) != local_version:
                report["skew_waits"] += 1
                time.sleep(settle)
                continue
            diverged = diff_buckets(local, remote.get("buckets", {}))
            if not diverged:
                report["converged"] = True
                break
            fetched = client.request("repl.fetch", buckets=diverged)
            objects = [
                (int(oid), bytes.fromhex(payload))
                for oid, payload in fetched.get("objects", [])
            ]
            report["buckets_fetched"] += len(diverged)
            _REPAIR_BUCKETS.inc(len(diverged))
            if not objects:
                time.sleep(settle)
                continue
            with txns.lock.write_locked(lock_timeout):
                # bytes only: keep the replica's own roots and OID counter,
                # so its replication cursor and logical state are untouched
                roots = {
                    name: int(heap.root(name)) for name in heap.root_names()
                }
                heap.apply_changes(objects, roots, 0)
            txns.bump()
            report["objects_applied"] += len(objects)
            _REPAIR_OBJECTS.inc(len(objects))
    TRACER.event(
        "server.repair.run",
        converged=report["converged"],
        rounds=report["rounds"],
        buckets=report["buckets_fetched"],
        objects=report["objects_applied"],
    )
    return report
