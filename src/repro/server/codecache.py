"""The image-resident compiled-code cache, keyed by PTML content hash.

The paper stores *two* representations of every function: executable TAM
code and the persistent TML tree (PTML) it was generated from.  PTML is
the identity: two functions with byte-identical PTML have byte-identical
observable behavior, whatever code they currently carry.  The cache
exploits that — it maps ``sha256(PTML bytes)`` to a ready-to-run
:class:`VMClosure`, so repeated execution of the same stored function by
*any* session resolves without re-linking, and a server restart can warm
the executable half from the image.

Invalidation is the reflective loop's other half: when background PGO
rewrites a function, its PTML changes, so the old hash's entry is dropped
and the next call installs the regenerated code under the new hash.

Two tiers:

* a runtime closure table (hash → :class:`VMClosure`) serving ``call``
  requests — process-local, since closures capture live Python objects;
* an image-resident code table (hash → :class:`CodeObject`) persisted
  under heap root ``server:code-cache`` by :meth:`flush`, reloaded by
  :meth:`attach` — the shared, durable half that outlives the process.
"""

from __future__ import annotations

import threading

from repro.machine.isa import CodeObject, VMClosure
from repro.obs.metrics import METRICS
from repro.store.ptml import ptml_key

__all__ = ["CodeCache", "CACHE_ROOT"]

CACHE_ROOT = "server:code-cache"

_HITS = METRICS.counter("server.codecache.hits", "compiled-code cache hits")
_MISSES = METRICS.counter("server.codecache.misses", "compiled-code cache misses")
_INVALIDATIONS = METRICS.counter(
    "server.codecache.invalidations", "entries dropped after reoptimization"
)
_ENTRIES = METRICS.gauge("server.codecache.entries", "live compiled-code cache entries")


class CodeCache:
    """Shared compiled-code cache over one persistent image."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._closures: dict[str, VMClosure] = {}
        self._codes: dict[str, CodeObject] = {}
        self._dirty = False

    # ------------------------------------------------------------- keying

    @staticmethod
    def key_of(code: CodeObject, heap=None) -> str | None:
        """Content hash of the code's PTML blob (None when none attached)."""
        return ptml_key(code, heap)

    # ------------------------------------------------------------- lookup

    def lookup(self, key: str) -> VMClosure | None:
        """Runtime lookup; counts a hit or a miss."""
        with self._lock:
            closure = self._closures.get(key)
        if closure is None:
            _MISSES.inc()
            return None
        _HITS.inc()
        return closure

    def install(self, key: str, closure: VMClosure) -> None:
        with self._lock:
            self._closures[key] = closure
            self._codes[key] = closure.code
            self._dirty = True
            _ENTRIES.set(len(self._closures))

    def invalidate(self, key: str) -> bool:
        """Drop an entry (its function was rewritten); True when present."""
        with self._lock:
            dropped = self._closures.pop(key, None) is not None
            dropped = (self._codes.pop(key, None) is not None) or dropped
            if dropped:
                self._dirty = True
            _ENTRIES.set(len(self._closures))
        if dropped:
            _INVALIDATIONS.inc()
        return dropped

    def __len__(self) -> int:
        return len(self._closures)

    def stats(self) -> dict:
        return {
            "entries": len(self._closures),
            "persisted_codes": len(self._codes),
            "hits": _HITS.value,
            "misses": _MISSES.value,
            "invalidations": _INVALIDATIONS.value,
        }

    # -------------------------------------------------------- image resident

    def attach(self, heap) -> int:
        """Load the persisted code table from the image (warm start).

        Only the code half is recoverable — closures capture live values
        and are rebuilt lazily as functions are first called.  Returns the
        number of warm entries.
        """
        oid = heap.root(CACHE_ROOT)
        if oid is None:
            return 0
        stored = heap.load(oid)
        if not isinstance(stored, dict):
            return 0
        with self._lock:
            for key, code in stored.items():
                if isinstance(key, str) and isinstance(code, CodeObject):
                    self._codes.setdefault(key, code)
            self._dirty = False
            return len(self._codes)

    def flush(self, heap) -> None:
        """Persist the code table under ``server:code-cache``.

        Must run inside a write transaction — it marks the heap dirty; the
        surrounding commit publishes it.
        """
        with self._lock:
            if not self._dirty:
                return
            snapshot = dict(self._codes)
            self._dirty = False
        oid = heap.root(CACHE_ROOT)
        if oid is None:
            oid = heap.store(snapshot)
            heap.set_root(CACHE_ROOT, oid)
        else:
            heap.update(oid, snapshot)
