"""Background profile-guided optimization over the live image.

The paper's reflective loop (§4.1) run as a service: every profiled
execution request feeds one aggregate :class:`VMProfiler`; periodically
this worker takes the accumulated evidence, opens a *write* transaction on
the shared image and runs :func:`repro.reflect.pgo.optimize_hot` on the
measured-hottest stored functions.  The rewritten code (and its new PTML)
is committed to the image, the compiled-code cache entries of the replaced
functions are invalidated, and the next ``call`` from any session links
the optimized code — the clients never stop, the code under them just
gets faster.

Each round takes the profile with reset semantics, so evidence is spent
once: an already-optimized function must earn its next rewrite with fresh
measurements (``optimize_hot`` names regenerated code ``module.fn'``,
whose profile entries no longer match any export — no rewrite thrash).
"""

from __future__ import annotations

import sys
import threading
import traceback

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.reflect.pgo import PgoReport, optimize_hot

__all__ = ["PgoWorker"]

_ROUNDS = METRICS.counter("server.pgo.rounds", "completed background PGO rounds")
_RELINKED = METRICS.counter(
    "server.pgo.relinked", "stored functions replaced by background PGO"
)
_ERRORS = METRICS.counter("server.pgo.errors", "background PGO rounds that failed")
_SKIPPED = METRICS.counter(
    "server.pgo.skipped", "PGO wakeups with no profile evidence to act on"
)


class PgoWorker:
    """Periodic optimize-the-hot-functions worker over a :class:`ReproServer`.

    With ``interval=None`` the worker never wakes on its own; rounds are
    then driven explicitly through :meth:`run_round` (the daemon's ``pgo``
    op uses this for deterministic tests and demos).
    """

    def __init__(
        self,
        server,
        interval: float | None = 30.0,
        top: int = 2,
        min_instructions: int = 1_000,
    ):
        self.server = server
        self.interval = interval
        self.top = top
        self.min_instructions = min_instructions
        self._wake = threading.Event()
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()  # one round at a time (timer vs. op)
        #: load shedding: while True, timer wakeups skip their round (the
        #: daemon's memory watchdog and degraded mode pause PGO — optimizing
        #: code is the first work to drop when disk or memory is scarce)
        self.paused = False
        self.rounds = 0
        self.relinked = 0
        self.errors = 0
        self.last_selected: list[str] = []

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self.interval is None or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-pgo", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _loop(self) -> None:
        while not self._stopping:
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stopping:
                return
            if self.paused:
                _SKIPPED.inc()
                continue
            try:
                self.run_round()
            except Exception:  # a bad round must not kill the worker
                traceback.print_exc(file=sys.stderr)

    # ---------------------------------------------------------------- round

    def run_round(
        self, top: int | None = None, min_instructions: int | None = None
    ) -> PgoReport | None:
        """Run one optimization round now; None when there was no evidence.

        Takes the server's aggregated profile (reset semantics), rewrites
        up to ``top`` hot functions inside one write transaction, then
        invalidates their code-cache entries and persists the refreshed
        image-resident code table.
        """
        server = self.server
        with self._lock:
            profile = server.take_profile()
            if not profile.closures:
                _SKIPPED.inc()
                return None
            try:
                with server.txns.write():
                    report = optimize_hot(
                        server.system,
                        profile,
                        top=top if top is not None else self.top,
                        min_instructions=(
                            min_instructions
                            if min_instructions is not None
                            else self.min_instructions
                        ),
                        relink=True,
                        facts=server.fact_store,
                    )
                    for candidate in report.selected:
                        server.invalidate_function(candidate.module, candidate.function)
                    server.code_cache.flush(server.heap)
                    server.fact_store.flush(server.heap)
            except Exception:
                self.errors += 1
                _ERRORS.inc()
                raise
            self.rounds += 1
            _ROUNDS.inc()
            self.relinked += len(report.selected)
            _RELINKED.inc(len(report.selected))
            self.last_selected = [c.qualified for c in report.selected]
            TRACER.event(
                "server.pgo.round",
                selected=self.last_selected,
                profiled=len(profile.closures),
            )
            return report

    def stats(self) -> dict:
        return {
            "rounds": self.rounds,
            "relinked": self.relinked,
            "errors": self.errors,
            "last_selected": list(self.last_selected),
            "interval": self.interval,
            "paused": self.paused,
        }
