"""The repro daemon: concurrent sessions over one persistent image.

One :class:`ReproServer` owns one :class:`~repro.store.heap.ObjectHeap`
and one :class:`~repro.lang.TycoonSystem` built over it.  Clients connect
over TCP; each connection is one *session*.  Per connection a cheap reader
thread parses frames and submits stateless requests to the bounded worker
pool (:mod:`repro.server.pool`); a full queue answers with the structured
``backpressure`` error instead of queueing unboundedly.  ``begin`` and
every request of a session holding an open transaction run on the
session's own connection thread instead (see :meth:`ReproServer._admit`),
so a session blocked on the transaction lock can never starve the pool.

Transactions (single-writer / snapshot-reader, see
:mod:`repro.store.concurrency`):

* without an explicit transaction each request runs in its own implicit
  one — ``read`` for pure execution, ``write`` (auto-commit) for
  mutating operations;
* ``begin``/``commit``/``abort`` give a session an explicit transaction
  spanning several requests; a write transaction holds the image
  exclusively until the session commits, aborts or disconnects.

Execution requests resolve stored functions through the shared
compiled-code cache (:mod:`repro.server.codecache`) and run on a fresh VM
per request with a per-request step limit (the budget errors surface as
structured ``step_limit`` responses).  Each run is profiled; the
aggregated profile feeds the background PGO worker
(:mod:`repro.server.pgo`), which rewrites hot functions in the live image
— sessions transparently pick up the faster code on their next call.
"""

from __future__ import annotations

import errno
import json
import socket
import sys
import threading
import time
import traceback
from dataclasses import dataclass

from repro.analysis.facts import FactStore
from repro.lang import TycoonSystem
from repro.lang.errors import TLError
from repro.lang.parser import parse_modules
from repro.lang.stdlib import STDLIB_MODULE_NAMES
from repro.machine.runtime import (
    MachineError,
    TmlVector,
    UncaughtTmlException,
    show_value,
)
from repro.machine.vm import VM, StepLimitExceeded
from repro.obs.exporters import NdjsonRecorder
from repro.obs.history import MetricsHistory
from repro.obs.metrics import METRICS
from repro.obs.profile import VMProfiler
from repro.obs.slowlog import SlowLog
from repro.obs.trace import NULL_SPAN, TRACER, new_trace_id
from repro.server import protocol
from repro.server.codecache import CodeCache
from repro.server.pgo import PgoWorker
from repro.server.pool import Backpressure, WorkerPool
from repro.server.protocol import from_jsonable, recv_frame, send_frame, to_jsonable
from repro.server.repair import (
    OID_BUCKET_BITS,
    bucket_digests,
    bucket_of,
    digest_root,
    repair_from_upstream,
    scrub_heap,
)
from repro.server.replication import (
    PrimaryReplication,
    ReplicaFollower,
    StaleTermError,
    replication_state,
)
from repro.server.sharding.ring import (
    RingError,
    ShardTopology,
    SHARD_ROOT,
    TOPOLOGY_ROOT,
    is_system_root,
)
from repro.server.sharding.twopc import (
    STAGING_PREFIX,
    TwopcError,
    make_staging,
    parse_staging,
    staging_root,
)
from repro.store.concurrency import LockTimeout, TransactionManager
from repro.store.fsck import fsck_image
from repro.store.heap import HeapError, ObjectHeap
from repro.store.recovery import LogArchiver

__all__ = ["ServerConfig", "Session", "ReproServer", "RequestError"]

_REQUESTS = METRICS.counter("server.requests", "requests received")
_REQUEST_ERRORS = METRICS.counter("server.request_errors", "requests answered with an error")
_LATENCY = METRICS.histogram(
    "server.request_latency_us", "request handling latency (microseconds)"
)
_ACTIVE_SESSIONS = METRICS.gauge("server.active_sessions", "connected sessions")
_SESSIONS_OPENED = METRICS.counter("server.sessions_opened", "sessions accepted")
_DRAIN_ABORTS = METRICS.counter(
    "server.drain_aborted_txns", "open transactions aborted by graceful shutdown"
)
_REAPED_SESSIONS = METRICS.counter(
    "server.reaped_sessions", "sessions closed by the idle timeout/reaper"
)
_IO_ERRORS = METRICS.counter(
    "server.io_errors", "OS-level I/O errors observed (classified, not swallowed)"
)
_DEGRADED = METRICS.gauge(
    "server.degraded", "1 while the daemon is in degraded read-only mode"
)
_DEGRADED_ENTRIES = METRICS.counter(
    "server.degraded_entries", "times the daemon entered degraded read-only mode"
)
_SHED_DEADLINE = METRICS.counter(
    "server.shed.deadline", "requests dropped because their deadline had expired"
)
_SHED_OVERLOADED = METRICS.counter(
    "server.shed.overloaded", "requests shed after waiting too long in the queue"
)
_SHED_MEMORY = METRICS.counter(
    "server.shed.memory", "mutating requests rejected by the memory budget"
)
_SLOW_CLIENT_CLOSES = METRICS.counter(
    "server.slow_client_closes", "sessions closed for blocking in send too long"
)
_MEM_CACHED_BYTES = METRICS.gauge(
    "server.mem.heap_bytes", "serialized bytes held by the heap object cache"
)
_MEM_PRESSURE = METRICS.gauge(
    "server.mem.pressure", "1 while the memory watchdog is shedding load"
)

#: errnos that mean "the peer went away", not "the disk is failing" —
#: counted but never treated as a store-level incident
_DISCONNECT_ERRNOS = frozenset(
    getattr(errno, name, -1)
    for name in (
        "EPIPE", "ECONNRESET", "ENOTCONN", "ESHUTDOWN", "ECONNABORTED",
        "EBADF", "ETIMEDOUT",
    )
)
_DISK_FULL_ERRNOS = frozenset(
    getattr(errno, name, -1) for name in ("ENOSPC", "EDQUOT")
)


def classify_os_error(exc: OSError) -> str:
    """Bucket an OSError: ``disk_full`` / ``io_error`` / ``disconnect`` /
    ``os_error``.  Commit-path failures of the first two classes flip the
    daemon into degraded read-only mode; disconnects are routine."""
    if exc.errno in _DISK_FULL_ERRNOS:
        return "disk_full"
    if exc.errno in _DISCONNECT_ERRNOS:
        return "disconnect"
    if exc.errno == errno.EIO or "fsync" in str(exc):
        return "io_error"
    return "os_error"


def _note_io_error(where: str, exc: OSError) -> None:
    """Classify, count and debug-log an OSError instead of swallowing it.

    Replaces the former silent ``except OSError: pass`` sites: every
    OS-level failure is at least visible in ``server.io_errors`` (with a
    per-class child counter) and the trace stream; non-disconnect classes
    also reach stderr because they may be the first sign of a dying disk.
    """
    kind = classify_os_error(exc)
    _IO_ERRORS.inc()
    METRICS.counter(
        f"server.io_errors.{kind}", f"{kind}-class I/O errors observed"
    ).inc()
    TRACER.event("server.io_error", where=where, kind=kind, error=str(exc))
    if kind != "disconnect":
        print(f"repro-server: {kind} during {where}: {exc}", file=sys.stderr)


@dataclass
class ServerConfig:
    """Tuning knobs of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from server.port
    workers: int = 4
    queue_size: int = 64
    #: default/maximum instruction budget per execution request
    step_limit: int = 5_000_000
    #: transaction lock acquisition timeout (seconds)
    lock_timeout: float = 10.0
    #: bound on the heap's clean-object cache (None = unbounded)
    heap_cache_limit: int | None = 4096
    #: seconds between background PGO rounds (None disables the worker)
    pgo_interval: float | None = 30.0
    pgo_top: int = 2
    pgo_min_instructions: int = 1_000
    #: profile every execution request (the PGO evidence source)
    profile: bool = True
    #: allow debug ops (``sleep``) — test/diagnostic use only
    enable_debug_ops: bool = False
    max_frame: int = protocol.MAX_FRAME
    #: seconds a connection may sit idle (no frames) before the daemon
    #: closes it, aborting any open transaction; None disables the timeout.
    #: Without it, a silently dead client holding a write transaction wedges
    #: every writer until lock_timeout.
    idle_timeout: float | None = 300.0
    #: period of the session reaper sweep (idle-timeout enforcement even
    #: for sessions whose reader thread is not currently in recv)
    reaper_interval: float = 5.0
    #: conversion rate for request deadlines → instruction budgets: a
    #: request arriving with ``deadline`` seconds remaining gets at most
    #: ``deadline * steps_per_second`` TAM steps
    steps_per_second: int = 2_000_000
    #: produce a commit log and accept replica subscriptions (primary role)
    replicate: bool = False
    #: follow a primary at (host, port) instead of accepting writes
    replica_of: tuple[str, int] | None = None
    #: replication node id (defaults to host:port at start)
    node_id: str = ""
    #: starting fencing term for a replicating primary (None: from image)
    term: int | None = None
    #: writes are acknowledged only after this many replicas applied them
    sync_replicas: int = 0
    #: how long a sync write waits for its ack quorum
    replication_timeout: float = 5.0
    #: term fencing on (the only sane setting; the chaos harness disables
    #: it as a negative control to prove fencing is load-bearing)
    fence: bool = True
    #: sampling rate for trace roots the daemon itself opens (requests
    #: arriving without a client-stamped trace context); stamped requests
    #: were sampled upstream and are always honored
    trace_sample: float = 1.0
    #: slots in the slow-request log served by the ``slowlog`` op
    slowlog_capacity: int = 32
    #: seconds between in-image metrics-history snapshots (None disables)
    history_interval: float | None = 60.0
    #: snapshots the ``obs:history`` ring retains
    history_capacity: int = 256
    #: act as a sharding coordinator: consult the coordinator op table
    #: first, routing data ops across the shard groups of the topology
    coordinator: bool = False
    #: shard groups, one endpoint list per shard id — building a topology
    #: directly from config (coordinator and hand-assembled participants)
    shards: list[list[tuple[str, int]]] | None = None
    #: this daemon's shard id within the topology; participants use it to
    #: enforce ownership (``wrong_shard`` for roots hashing elsewhere)
    shard_id: int | None = None
    #: virtual nodes per shard on the consistent-hash ring
    shard_vnodes: int = 64
    #: overall time budget for one cross-shard operation (2PC, scatter)
    twopc_timeout: float = 15.0
    #: period of the coordinator's in-doubt resolver (None: boot pass only)
    resolver_interval: float | None = 2.0
    #: durably record the 2PC commit decision before phase two (the only
    #: sane setting; the sharding chaos harness disables it as the
    #: negative control that proves the decision fsync is load-bearing)
    durable_decisions: bool = True
    #: crash the coordinator at a named 2PC point — ``after-prepare``,
    #: ``after-decision`` or ``mid-decide`` (test/chaos use only)
    twopc_failpoint: str | None = None
    #: start (and stay) in degraded read-only mode — the manual operator
    #: override; unlike fault-triggered degradation it never auto-recovers
    read_only: bool = False
    #: seconds between writability re-probes while degraded (fsck-verify
    #: then a no-op commit); None disables auto-recovery
    degraded_probe_interval: float | None = 2.0
    #: global heap-cache byte budget; mutating requests beyond it get the
    #: busy-style memory rejection and the watchdog sheds load (None = off)
    mem_budget_bytes: int | None = None
    #: per-transaction dirty-object budget (one session holds the single
    #: write txn, so this bounds per-session uncommitted memory; None = off)
    mem_txn_budget_objects: int | None = None
    #: period of the memory watchdog sweep
    mem_watchdog_interval: float = 1.0
    #: shed a pooled request that waited longer than this in the admission
    #: queue (the ``overloaded`` error, distinct from full-queue
    #: ``backpressure``); None disables queue-time shedding
    queue_wait_limit: float | None = 5.0
    #: close a session whose socket send has been blocked longer than this
    #: (a slow client must not pin a worker thread); None disables
    send_timeout: float | None = 20.0
    #: seal commit-log frames into checksummed archive segments before any
    #: reset/truncation discards them — the continuous-archiving half of
    #: incremental backup + point-in-time restore (repro.store.recovery)
    archive: bool = True
    #: seconds between background integrity-scrub cycles (None disables);
    #: a cycle re-reads every committed object's page chain through the
    #: checksum layer, catching bit rot on pages no request touches
    scrub_interval: float | None = None
    #: scrub disk-read budget, in pages per second (0 = unbounded)
    scrub_pages_per_sec: int = 0
    #: when scrub finds corruption on a replica, run anti-entropy repair
    #: against the upstream automatically (degraded read-only while it runs)
    scrub_repair: bool = True
    #: file factory slid under the pager (fault injection; None = open())
    io_factory: object = None
    #: NEGATIVE CONTROL ONLY — disables the degraded-mode flip and the
    #: durable rollback on commit I/O failure, reproducing the unprotected
    #: behavior the exhaustion harness proves is broken
    unsafe_no_degraded: bool = False


class RequestError(Exception):
    """A structured protocol-level failure (code + message + details)."""

    def __init__(self, code: str, message: str, **details):
        super().__init__(message)
        self.code = code
        self.details = details


class Session:
    """One client connection: id, socket, and its open transaction."""

    def __init__(self, session_id: int, sock: socket.socket, addr):
        self.id = session_id
        self.sock = sock
        self.addr = addr
        self.txn = None
        #: serializes request execution within the session (requests keep
        #: their submission order even if pool scheduling would race them)
        self.lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._txn_lock = threading.Lock()
        self.closed = False
        #: monotonic timestamp of the last received frame (reaper input)
        self.last_active = time.monotonic()
        #: monotonic timestamp since when a send has been blocked in
        #: sendall (None when not sending) — the reaper closes sessions
        #: stuck here past ``send_timeout`` so a slow client that stopped
        #: reading cannot pin a worker thread indefinitely
        self.sending_since: float | None = None
        #: replication subscriber connections are long-lived and mostly
        #: quiet — exempt from idle timeout and the reaper
        self.subscriber = False

    def take_txn(self):
        """Atomically detach and return the open transaction (or None).

        Both the connection thread's cleanup and the shutdown drain race to
        release a session; whoever wins the swap aborts (and counts) the
        transaction exactly once.
        """
        with self._txn_lock:
            txn, self.txn = self.txn, None
            return txn

    def send(self, message: dict) -> None:
        with self._send_lock:
            if not self.closed:
                self.sending_since = time.monotonic()
                try:
                    send_frame(self.sock, message)
                finally:
                    self.sending_since = None

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError as exc:
            # routine when the peer hung up first, but never silent: a
            # non-disconnect errno here can be the first sign of trouble
            _note_io_error("session.close", exc)
        self.sock.close()


class ReproServer:
    """The multi-session daemon over one persistent image."""

    def __init__(self, image: str | None, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.image_path = image
        is_replica = self.config.replica_of is not None
        if (is_replica or self.config.replicate) and image is None:
            raise ValueError("replication needs a file-backed image")
        self.heap = ObjectHeap(
            image,
            cache_limit=self.config.heap_cache_limit,
            io_factory=self.config.io_factory,
        )
        # a replica's heap state is the primary's, object for object — it
        # must not write locally, so the stdlib links purely in memory
        self.system = TycoonSystem(heap=self.heap, persist_stdlib=not is_replica)
        self.txns = TransactionManager(
            self.heap,
            default_timeout=self.config.lock_timeout,
            io_rollback=not self.config.unsafe_no_degraded,
        )
        self.code_cache = CodeCache()
        self.fact_store = FactStore()
        self.slowlog = SlowLog(self.config.slowlog_capacity)
        self.history = MetricsHistory(self.config.history_capacity)
        #: NDJSON recorder installed by the ``trace`` op (daemon-managed;
        #: a recorder attached by the embedding process is never touched)
        self._trace_recorder: NdjsonRecorder | None = None
        self._trace_path: str | None = None
        self._trace_lock = threading.Lock()
        TRACER.sample_rate = self.config.trace_sample
        self._history_thread: threading.Thread | None = None
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            name="repro-server",
        )
        self.pgo_worker: PgoWorker | None = (
            PgoWorker(
                self,
                interval=self.config.pgo_interval,
                top=self.config.pgo_top,
                min_instructions=self.config.pgo_min_instructions,
            )
            # PGO rewrites functions in the image: primary-only by nature
            if self.config.pgo_interval is not None and not is_replica
            else None
        )
        #: replication roles (at most one is non-None; both None when the
        #: image is a plain standalone server).  _role_lock guards the
        #: promote/follow transitions.
        self.replication: PrimaryReplication | None = None
        self.follower: ReplicaFollower | None = None
        self._role_lock = threading.Lock()
        self._reaper_thread: threading.Thread | None = None
        #: qualified function name -> current code-cache key
        self._keys: dict[str, str] = {}
        self._keys_lock = threading.Lock()
        #: merged profile of every profiled request since the last PGO round
        self._profile = VMProfiler()
        self._profile_lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session = 1
        self._listener: socket.socket | None = None
        self._bound_port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._stop_once = threading.Lock()  # won exactly once, never released
        self._started_at = time.monotonic()
        #: degraded read-only mode: set by commit-path I/O failures (or the
        #: manual ``read_only`` config), cleared by the recovery probe
        self._degraded = threading.Event()
        self._degraded_reason: str | None = None
        self._degraded_since: float | None = None  # unix seconds
        self._degraded_manual = False
        self._degraded_lock = threading.Lock()
        self._probe_thread: threading.Thread | None = None
        self._probe_failures = 0
        self._recoveries = 0
        #: memory watchdog state: shrunk cache limit is restored when
        #: pressure clears (hysteresis at 80% of the budget)
        self._base_cache_limit = self.config.heap_cache_limit
        self._mem_pressure = False
        self._mem_shed_rounds = 0
        self._watchdog_thread: threading.Thread | None = None
        self._history_paused = False
        #: continuous commit-log archiving (None: disabled or no image)
        self.archiver: LogArchiver | None = None
        #: background integrity scrub / anti-entropy repair state
        self._scrub_thread: threading.Thread | None = None
        self._scrub_lock = threading.Lock()
        self._scrub_state: dict = {
            "cycles": 0,
            "corrupt_total": 0,
            "repairs": 0,
            "repair_failures": 0,
            "last": None,
            "last_repair": None,
        }
        if self.config.replicate and not is_replica:
            self.replication = PrimaryReplication(
                self.heap,
                self.txns,
                self._log_path(),
                node=self.config.node_id or "primary",
                term=self.config.term,
                fence=self.config.fence,
            )
            self.replication.attach()  # the boot commit is record #1
        self._boot()
        if is_replica:
            host, port = self.config.replica_of
            self.follower = ReplicaFollower(
                self.heap,
                self.txns,
                (host, port),
                self._log_path(),
                node=self.config.node_id or "replica",
                fence=self.config.fence,
            )
        self._attach_archiver()
        #: the sharding topology this node operates under: explicit config
        #: wins, else whatever ``__topology__`` the image carries
        self.topology: ShardTopology | None = None
        if self.config.shards:
            self.topology = ShardTopology.build(
                self.config.shards, vnodes=self.config.shard_vnodes
            )
        else:
            self._load_topology()
        self.coordinator = None
        if self.config.coordinator:
            from repro.server.sharding.coordinator import Coordinator

            self.coordinator = Coordinator(self)
        if self.config.read_only:
            # manual override: after the boot commit (a fresh image still
            # needs its baseline), the daemon serves reads only and the
            # recovery probe never clears it
            self.enter_degraded("manual read-only override", manual=True)

    def _log_path(self) -> str:
        return f"{self.image_path}.commitlog"

    def _attach_archiver(self) -> None:
        """Hook continuous archiving into the commit log's retention point.

        ``CommitLog.reset()`` is the only place history is discarded (a
        snapshot resync, a deposed primary following a new leader) — the
        hook seals every not-yet-archived frame into a checksummed archive
        segment first, so a point-in-time restore can always reach the
        versions the log no longer holds.  Re-run after every role change:
        promote/follow build fresh log objects.
        """
        if not self.config.archive or self.image_path is None:
            return
        log = None
        if self.replication is not None:
            log = self.replication.log
        elif self.follower is not None:
            log = self.follower.log
        if log is None:
            return
        if self.archiver is None:
            self.archiver = LogArchiver(
                self.image_path, file_factory=self.config.io_factory
            )
        log.retention = self.archiver.seal

    @property
    def role(self) -> str:
        if self.replication is not None:
            return "primary"
        if self.follower is not None:
            return "replica"
        return "standalone"

    def repl_version(self) -> int:
        """The replication version this node embodies (staleness floor)."""
        if self.replication is not None:
            return self.replication.version
        if self.follower is not None:
            return self.follower.version
        return self.txns.version

    # ----------------------------------------------------------------- boot

    def _boot(self) -> None:
        """Load persisted modules, warm the code cache, commit boot state.

        Building the :class:`TycoonSystem` stores the stdlib's PTML into
        the image (dirty objects), so a fresh image gets one boot commit
        establishing the baseline.
        """
        loaded = []
        # attach facts first: verified records let module loading skip the
        # per-code re-verification for unchanged PTML hashes
        warm_facts = self.fact_store.attach(self.heap)
        for root in self.heap.root_names():
            if not root.startswith("module:"):
                continue
            name = root[len("module:"):]
            if name in STDLIB_MODULE_NAMES:
                continue
            try:
                self.system.load(name, facts=self.fact_store)
                loaded.append(name)
            except (TLError, HeapError) as exc:
                print(f"repro-server: skipping module {name!r}: {exc}", file=sys.stderr)
        warm = self.code_cache.attach(self.heap)
        # the persisted metrics history survives restarts: reload the ring
        # so `stats --history` sees across-restart continuity
        warm_history = self.history.attach(self.heap)
        self.heap.commit()
        TRACER.event(
            "server.boot", modules=loaded, warm_code_entries=warm,
            warm_fact_entries=warm_facts, warm_history=warm_history,
            roots=len(self.heap.root_names()),
        )

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Bind, listen and serve in background threads; returns at once."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(64)
        self._bound_port = self._listener.getsockname()[1]
        self.pool.start()
        if self.pgo_worker is not None:
            self.pgo_worker.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        if self.follower is not None:
            self.follower.start()
        if self.config.idle_timeout is not None or self.config.send_timeout is not None:
            self._reaper_thread = threading.Thread(
                target=self._reaper_loop, name="repro-server-reaper", daemon=True
            )
            self._reaper_thread.start()
        if self.config.degraded_probe_interval is not None:
            self._probe_thread = threading.Thread(
                target=self._degraded_probe_loop, name="repro-server-probe", daemon=True
            )
            self._probe_thread.start()
        if self.config.mem_budget_bytes is not None:
            self._watchdog_thread = threading.Thread(
                target=self._mem_watchdog_loop, name="repro-server-memwatch", daemon=True
            )
            self._watchdog_thread.start()
        if self.config.history_interval is not None:
            self._history_thread = threading.Thread(
                target=self._history_loop, name="repro-server-history", daemon=True
            )
            self._history_thread.start()
        if self.config.scrub_interval is not None:
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop, name="repro-server-scrub", daemon=True
            )
            self._scrub_thread.start()
        if self.coordinator is not None:
            # topology push + in-doubt recovery + the periodic resolver
            self.coordinator.start()

    def _history_loop(self) -> None:
        """Periodically snapshot the metrics registry into ``obs:history``.

        Replicas record in memory only — they must never write their image
        locally (it would fork away from the primary's) — so only primary
        and standalone daemons persist the ring.
        """
        interval = self.config.history_interval
        while not self._stopping.wait(interval):
            self.record_history_snapshot()
            if self._degraded.is_set() or self._history_paused:
                continue  # no image writes while degraded or shedding
            if self.follower is None:
                try:
                    with self.txns.write(timeout=1.0):
                        self.history.flush(self.heap)
                except LockTimeout:
                    pass  # contended image: the next tick retries
                except OSError as exc:
                    self._commit_io_failure("history.flush", exc)

    def record_history_snapshot(self, **meta) -> dict:
        """Append one metrics snapshot to the in-memory history ring."""
        return self.history.record(
            METRICS,
            role=self.role,
            version=self.txns.version,
            repl_version=self.repl_version(),
            uptime_ms=int((time.monotonic() - self._started_at) * 1000),
            sessions=len(self._sessions),
            **meta,
        )

    @property
    def port(self) -> int:
        # cached at bind time: still answerable after a stop/crash (a
        # restarting node reuses its old port, clients retry against it)
        if self._bound_port is None:
            raise RuntimeError("server is not started")
        return self._bound_port

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully stopped."""
        return self._stopped.wait(timeout)

    def initiate_shutdown(self) -> None:
        """Trigger :meth:`stop` without blocking (signal-handler safe).

        New requests are refused with the structured ``shutting_down``
        error immediately; the actual drain runs on a background thread so
        a SIGTERM handler (or a request handler) never joins itself.
        """
        self._stopping.set()
        threading.Thread(target=self.stop, name="repro-server-stop", daemon=True).start()

    def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, close sessions and heap.

        Order matters: refuse new work first, let already-admitted requests
        finish (bounded wait per session), abort transactions left open,
        then flush and close the image — so SIGTERM never tears a commit.
        """
        self._stopping.set()
        if not self._stop_once.acquire(blocking=False):
            self._stopped.wait(30)  # someone else is tearing down
            return
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept() (close() alone
            # leaves it — and the kernel listen socket — alive, keeping the
            # port bound after "stop")
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError as exc:
                _note_io_error("listener.shutdown", exc)
            try:
                self._listener.close()
            except OSError as exc:
                _note_io_error("listener.close", exc)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        self.pool.stop(drain=True)
        if self.pgo_worker is not None:
            self.pgo_worker.stop()
        if self.follower is not None:
            self.follower.stop()
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        # drain: an in-flight handler holds session.lock; wait (bounded) for
        # it to answer before the socket goes away
        for session in sessions:
            if session.lock.acquire(timeout=5):
                session.lock.release()
        for session in sessions:
            self._release_session(session)
        if self.coordinator is not None:
            # after the drain: an in-flight cross-shard request may still
            # need the shard routers to finish its phase two
            self.coordinator.stop()
        if self.follower is None and not self._degraded.is_set():
            # a replica never writes locally — flushing the caches would
            # fork its heap state away from the primary's; a degraded
            # daemon skips the flush too (the disk already refused writes,
            # and the caches are reconstructible)
            if self.config.history_interval is not None:
                self.record_history_snapshot(reason="shutdown")
            try:
                with self.txns.write():
                    self.code_cache.flush(self.heap)
                    self.fact_store.flush(self.heap)
                    self.history.flush(self.heap)
            except OSError as exc:
                # shutdown must complete even on a full disk: the rollback
                # in the txn layer already restored the durable state
                _note_io_error("shutdown.flush", exc)
        if self.replication is not None:
            self.replication.stop()
        self.heap.close()
        TRACER.event("server.stop")
        self._detach_trace_recorder()
        self._stopped.set()

    def crash(self) -> None:
        """Die like a SIGKILL: no drain, no flush, no heap close.

        Test/chaos use only.  Every socket is torn down and the worker
        threads stopped, but nothing is written: the image is left exactly
        as the last durable commit published it, which is what a real
        process kill leaves behind.
        """
        self._stopping.set()
        if not self._stop_once.acquire(blocking=False):
            return
        if self._listener is not None:
            # shutdown before close: the accept thread blocked in accept()
            # holds the file description open, and close() alone would
            # leave the port bound (EADDRINUSE on the restart that follows)
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError as exc:
                _note_io_error("listener.shutdown", exc)
            try:
                self._listener.close()
            except OSError as exc:
                _note_io_error("listener.close", exc)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        self.pool.stop(drain=False)
        if self.pgo_worker is not None:
            self.pgo_worker.stop()
        if self.follower is not None:
            self.follower.stop()
        if self.coordinator is not None:
            self.coordinator.stop()
        if self.replication is not None:
            self.replication.stop()
        TRACER.event("server.crash")
        self._stopped.set()

    # ---------------------------------------------------------- connections

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            if self.config.idle_timeout is not None:
                # a dead client must not hold a session (and possibly a
                # write transaction) forever: recv wakes up and gives up
                sock.settimeout(self.config.idle_timeout)
            with self._sessions_lock:
                session = Session(self._next_session, sock, addr)
                self._next_session += 1
                self._sessions[session.id] = session
            _SESSIONS_OPENED.inc()
            _ACTIVE_SESSIONS.set(len(self._sessions))
            TRACER.event("server.session.open", session=session.id)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(session,),
                name=f"repro-session-{session.id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, session: Session) -> None:
        # runs until the peer closes or stop()/the reaper closes the
        # session socket (which wakes recv with an error) — during a drain
        # _admit answers every new request with ``shutting_down``, so the
        # loop itself does not need to watch the stop flag, and a request
        # already in the kernel buffer still gets its typed refusal
        try:
            while True:
                try:
                    request = recv_frame(session.sock, self.config.max_frame)
                except socket.timeout:
                    if session.subscriber:
                        continue  # subscribers are quiet by design
                    _REAPED_SESSIONS.inc()
                    TRACER.event("server.session.idle_timeout", session=session.id)
                    break
                except protocol.ProtocolError:
                    break
                except OSError:
                    break
                if request is None:
                    break
                session.last_active = time.monotonic()
                self._admit(session, request)
        finally:
            self._release_session(session)

    def _reaper_loop(self) -> None:
        """Close sessions idle past the timeout even when recv won't wake.

        The socket timeout covers a reader blocked in ``recv``; the reaper
        covers the rest (e.g. a reader thread that died, or a half-open
        connection detected only by time).  A session mid-request (its lock
        held) is never reaped — only truly idle ones.
        """
        interval = self.config.reaper_interval
        limit = self.config.idle_timeout
        send_limit = self.config.send_timeout
        while not self._stopping.wait(interval):
            now = time.monotonic()
            with self._sessions_lock:
                sessions = list(self._sessions.values())
            for session in sessions:
                # slow-sender sweep first: a client that stopped reading
                # blocks a worker (or subscriber pump) inside sendall —
                # closing the socket from here unblocks it with an error.
                # Applies to subscribers too: a wedged replica link must
                # not pin its pump thread forever.
                sending = session.sending_since
                if (
                    send_limit is not None
                    and sending is not None
                    and now - sending > send_limit
                ):
                    _SLOW_CLIENT_CLOSES.inc()
                    TRACER.event(
                        "server.session.send_timeout", session=session.id,
                        blocked_s=round(now - sending, 3),
                    )
                    self._release_session(session)
                    continue
                if (
                    limit is None
                    or session.subscriber
                    or now - session.last_active <= limit
                ):
                    continue
                if not session.lock.acquire(blocking=False):
                    continue  # a request is in flight: it is not idle
                try:
                    _REAPED_SESSIONS.inc()
                    TRACER.event("server.session.reaped", session=session.id)
                    self._release_session(session)
                finally:
                    session.lock.release()

    def _admit(self, session: Session, request: dict) -> None:
        """Admission control: pooled execution or immediate backpressure.

        Two execution lanes prevent a pool deadlock: ``begin`` (which may
        block indefinitely on the transaction lock) and every request of a
        session *holding* a transaction run directly on the session's own
        connection thread — a blocked transaction only ever blocks its own
        session, and the lock holder never needs a pool worker to reach its
        ``commit``.  Stateless requests go through the bounded pool and get
        the structured ``backpressure`` rejection when it is full.
        """
        _REQUESTS.inc()
        request_id = request.get("id")
        if self._stopping.is_set():
            self._send_error(
                session, request_id,
                RequestError(protocol.E_SHUTTING_DOWN, "server is shutting down"),
            )
            return
        deadline = request.get("deadline")
        if deadline is not None and "_deadline_at" not in request:
            # pin the absolute deadline at *arrival*: queue time counts
            # against the client's budget, and a request that would expire
            # while queued is dropped here instead of wasting a worker
            try:
                request["_deadline_at"] = time.monotonic() + float(deadline)
            except (TypeError, ValueError):
                pass  # malformed deadline: the handler rejects it
            else:
                if float(deadline) <= 0:
                    _SHED_DEADLINE.inc()
                    self._send_error(
                        session, request_id,
                        RequestError(
                            protocol.E_DEADLINE,
                            "request deadline already expired on arrival",
                            deadline=deadline,
                        ),
                    )
                    return
        if (
            request.get("op") in ("begin", "repl.subscribe")
            or session.txn is not None
        ):
            # begin may block on the txn lock; repl.subscribe turns the
            # connection into a long-lived stream — neither may eat a
            # pool worker
            self._handle(session, request)
            return
        if request.get("op") in ("ping", "stats", "slowlog"):
            # introspection fast lane: cheap, lock-free reads answered on
            # the connection thread, so liveness and diagnosis keep working
            # while the pool is saturated by an overload
            self._handle(session, request)
            return
        enqueued = time.monotonic()
        wait_limit = self.config.queue_wait_limit

        def job() -> None:
            if wait_limit is not None:
                waited = time.monotonic() - enqueued
                if waited > wait_limit:
                    # adaptive shedding: the request was admitted but aged
                    # out in the queue — answering it now only adds more
                    # latency to a server already behind; shed with a
                    # backoff hint instead
                    _SHED_OVERLOADED.inc()
                    self._send_error(
                        session, request_id,
                        RequestError(
                            protocol.E_OVERLOADED,
                            f"request waited {waited:.2f}s in the admission "
                            f"queue (limit {wait_limit}s)",
                            queued_s=round(waited, 3),
                            retry_after=self._overload_retry_after(),
                        ),
                    )
                    return
            self._handle(session, request)

        try:
            self.pool.submit(job)
        except Backpressure as exc:
            self._send_error(
                session, request_id,
                RequestError(
                    protocol.E_BACKPRESSURE, str(exc), queue_size=exc.queue_size
                ),
            )

    def _overload_retry_after(self) -> float:
        """Backoff hint scaled to the current backlog (seconds)."""
        return round(min(5.0, 0.1 + 0.05 * self.pool.depth), 3)

    def _release_session(self, session: Session) -> None:
        txn = session.take_txn()
        if txn is not None:
            try:
                # during shutdown both the drain and the connection thread
                # race to release; take_txn hands the transaction to exactly
                # one of them, so the drain-abort count is deterministic
                if self._stopping.is_set():
                    _DRAIN_ABORTS.inc()
                txn.abort()
            except HeapError:
                pass  # the heap may already be closed mid-teardown
        session.close()
        if session.subscriber and self.replication is not None:
            self.replication.drop_subscriber(session.id)
        with self._sessions_lock:
            if self._sessions.pop(session.id, None) is not None:
                _ACTIVE_SESSIONS.set(len(self._sessions))
                TRACER.event("server.session.close", session=session.id)

    # ------------------------------------------------------------- handling

    @staticmethod
    def _incoming_trace(request: dict) -> tuple[str | None, str | None]:
        """The client-stamped (trace_id, span_id), or (None, None)."""
        stamped = request.get("trace")
        if not isinstance(stamped, dict):
            return None, None
        trace_id = stamped.get("trace_id")
        if not isinstance(trace_id, str) or len(trace_id) != 16:
            return None, None
        span_id = stamped.get("span_id")
        if not isinstance(span_id, str) or len(span_id) != 16:
            span_id = None
        return trace_id, span_id

    def _dispatch(self, op):
        """Resolve an op name to its handler.

        A coordinator daemon consults the coordinator's op table first —
        it overrides the data plane (get/set/mset/run/scatter/topology)
        and augments stats; every other op falls through to the base
        table, so a coordinator is still a full daemon (ping, call,
        transactions, replication ops) over its own image.
        """
        coordinator = self.coordinator
        if coordinator is not None and isinstance(op, str):
            override = coordinator.OPS.get(op)
            if override is not None:
                return lambda _server, session, request: override(
                    coordinator, session, request
                )
        return self._OPS.get(op)

    def _handle(self, session: Session, request: dict) -> None:
        request_id = request.get("id")
        op = request.get("op")
        start = time.perf_counter()
        # trace context: honor the client's stamp (its sampling decision
        # sticks end to end); unstamped requests become new roots at the
        # daemon's own sampling rate when a recorder is attached
        trace_id, client_span = self._incoming_trace(request)
        if trace_id is None and TRACER.enabled and TRACER.should_sample():
            trace_id = new_trace_id()
        outcome = "ok"
        handled = False
        with TRACER.activate(trace_id, client_span):
            span = (
                TRACER.span("server.request", session=session.id, op=op)
                if trace_id is not None
                else NULL_SPAN
            )
            reply = None
            try:
                deadline = request.get("deadline")
                if deadline is not None and "_deadline_at" not in request:
                    # normally pinned at arrival by _admit; this fallback
                    # covers direct _handle calls (tests, embedding)
                    request["_deadline_at"] = time.monotonic() + float(deadline)
                with session.lock:
                    handler = self._dispatch(op)
                    if handler is None:
                        raise RequestError(
                            protocol.E_BAD_REQUEST, f"unknown op {op!r}"
                        )
                    handled = True
                    self._check_deadline(request)
                    # run the body under the server span's context so the
                    # spans it opens (store.commit, ...) nest beneath it —
                    # and the replication sink stamps its records with it
                    with TRACER.activate(span.trace_id or trace_id, span.span_id):
                        result = handler(self, session, request)
                span.set(status="ok")
                reply = {"id": request_id, "ok": True, "result": result}
            except RequestError as exc:
                outcome = exc.code
                span.set(status=exc.code)
                if trace_id is not None:
                    TRACER.event(
                        "server.request.error", op=op, code=exc.code,
                        session=session.id,
                    )
                reply = self._error_reply(request_id, exc, trace_id=trace_id)
            except Exception as exc:  # anything else is an internal error
                traceback.print_exc(file=sys.stderr)
                outcome = "internal"
                span.set(status="internal")
                if trace_id is not None:
                    TRACER.event(
                        "server.request.error", op=op, code="internal",
                        session=session.id,
                    )
                reply = self._error_reply(
                    request_id,
                    RequestError(
                        protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ),
                    trace_id=trace_id,
                )
            finally:
                # bookkeeping runs BEFORE the reply frame leaves: a client
                # that reacts to the response by asking for stats/slowlog
                # must see this request already accounted for
                steps = request.get("_steps")
                lock_wait_us = request.get("_lock_wait_us")
                if steps is not None:
                    span.set(steps=steps)
                if lock_wait_us is not None:
                    span.set(lock_wait_us=lock_wait_us)
                span.finish()
                latency_us = int((time.perf_counter() - start) * 1e6)
                _LATENCY.observe(latency_us)
                if isinstance(op, str) and handled:
                    METRICS.histogram(
                        f"server.op.{op}.latency_us",
                        f"latency of the {op} op (microseconds)",
                    ).observe(latency_us)
                self.slowlog.record(
                    op if isinstance(op, str) else "?",
                    latency_us,
                    outcome=outcome,
                    trace_id=trace_id,
                    session=session.id,
                    steps=steps,
                    lock_wait_us=lock_wait_us,
                )
        if reply is not None:
            try:
                session.send(reply)
            except OSError as exc:
                # client vanished before the answer; the work is done —
                # but count and classify it (a non-disconnect errno here
                # is not routine)
                _note_io_error("reply.send", exc)

    def _error_reply(
        self, request_id, error: RequestError, trace_id: str | None = None
    ) -> dict:
        _REQUEST_ERRORS.inc()
        payload = {"code": error.code, "message": str(error)}
        if trace_id is not None:
            # the join key into the NDJSON export and the slowlog: a client
            # holding a failed response can find the server-side story
            payload["trace_id"] = trace_id
        payload.update(error.details)
        return {"id": request_id, "ok": False, "error": payload}

    def _send_error(
        self,
        session: Session,
        request_id,
        error: RequestError,
        trace_id: str | None = None,
    ) -> None:
        try:
            session.send(self._error_reply(request_id, error, trace_id=trace_id))
        except OSError as exc:
            _note_io_error("error.send", exc)  # peer is gone; still counted

    # ----------------------------------------------------- deadline budgets

    @staticmethod
    def _remaining(request: dict) -> float | None:
        """Seconds left of the request's deadline (None: no deadline)."""
        deadline_at = request.get("_deadline_at")
        if deadline_at is None:
            return None
        return deadline_at - time.monotonic()

    def _check_deadline(self, request: dict) -> None:
        remaining = self._remaining(request)
        if remaining is not None and remaining <= 0:
            raise RequestError(
                protocol.E_DEADLINE,
                "request deadline exceeded before execution",
                deadline=request.get("deadline"),
            )

    def _lock_budget(self, request: dict) -> float:
        """Lock timeout for this request: config cap, shrunk to the
        remaining deadline."""
        budget = self.config.lock_timeout
        remaining = self._remaining(request)
        if remaining is not None:
            budget = max(0.001, min(budget, remaining))
        return budget

    # ----------------------------------------------------- transaction glue

    def _run_read(self, session: Session, request: dict, body):
        """Run ``body()`` under the session's txn or an implicit read txn."""
        if session.txn is not None:
            return body()
        waited = time.perf_counter()
        try:
            with self.txns.read(timeout=self._lock_budget(request)):
                request["_lock_wait_us"] = int((time.perf_counter() - waited) * 1e6)
                return body()
        except LockTimeout as exc:
            if self._remaining(request) is not None and self._remaining(request) <= 0:
                raise RequestError(
                    protocol.E_DEADLINE, "deadline exceeded waiting for the lock"
                ) from exc
            raise RequestError(protocol.E_BUSY, str(exc)) from exc

    def _run_write(self, session: Session, request: dict, body):
        """Run ``body()`` under the session's write txn or auto-commit."""
        self._check_writable()
        self._check_memory(session)
        if session.txn is not None:
            if session.txn.mode != "write":
                raise RequestError(
                    protocol.E_TXN_STATE,
                    "mutating request inside a read transaction",
                )
            return body()
        waited = time.perf_counter()
        try:
            with self.txns.write(timeout=self._lock_budget(request)):
                request["_lock_wait_us"] = int((time.perf_counter() - waited) * 1e6)
                result = body()
        except LockTimeout as exc:
            if self._remaining(request) is not None and self._remaining(request) <= 0:
                raise RequestError(
                    protocol.E_DEADLINE, "deadline exceeded waiting for the lock"
                ) from exc
            raise RequestError(protocol.E_BUSY, str(exc)) from exc
        except OSError as exc:
            # the auto-commit died in its I/O (disk full, EIO, fsync
            # failure): the txn layer already rolled the heap back to the
            # durable state; classify, flip degraded, answer read_only
            raise self._commit_io_failure("auto-commit", exc) from exc
        if isinstance(result, dict):
            # the auto-commit has published: report the version it produced
            result.setdefault("repl_version", self.repl_version())
        self._after_write_commit(result)
        return result

    def _check_writable(self) -> None:
        if self._degraded.is_set():
            raise RequestError(
                protocol.E_READ_ONLY,
                "daemon is in degraded read-only mode: "
                + (self._degraded_reason or "unknown reason"),
                reason=self._degraded_reason,
                since=self._degraded_since,
                retry_after=self.config.degraded_probe_interval,
                manual=self._degraded_manual,
            )
        follower = self.follower
        if follower is not None:
            host, port = follower.upstream
            raise RequestError(
                protocol.E_NOT_PRIMARY,
                "this node is a read replica; write to the primary",
                primary={"host": host, "port": port},
            )

    def _check_memory(self, session: Session) -> None:
        """Busy-style memory admission for mutating requests.

        Reads always pass — they only touch the (bounded) clean cache.
        Writes are rejected while the cache's accounted bytes exceed the
        global budget, or when the open transaction's dirty set has
        outgrown the per-transaction object budget (dirty objects cannot
        be evicted, so they are the unboundable half of heap memory).
        """
        budget = self.config.mem_budget_bytes
        if budget is not None and self.heap.cached_bytes > budget:
            _SHED_MEMORY.inc()
            raise RequestError(
                protocol.E_BUSY,
                f"heap memory budget exceeded "
                f"({self.heap.cached_bytes} > {budget} bytes); retry shortly",
                reason="memory",
                retry_after=max(0.05, self.config.mem_watchdog_interval),
            )
        cap = self.config.mem_txn_budget_objects
        if (
            cap is not None
            and session.txn is not None
            and self.heap.dirty_count >= cap
        ):
            _SHED_MEMORY.inc()
            raise RequestError(
                protocol.E_BUSY,
                f"transaction holds {self.heap.dirty_count} uncommitted "
                f"object(s), over the per-transaction budget of {cap}; "
                "commit or abort first",
                reason="memory",
                retry_after=max(0.05, self.config.mem_watchdog_interval),
            )

    # ------------------------------------------------- resource exhaustion

    def _commit_io_failure(self, where: str, exc: OSError) -> RequestError:
        """Classify a commit-path I/O failure and flip degraded mode.

        Returns the structured error to answer the request with.  The
        transaction layer has already rolled the heap back to the durable
        image, so no half-written state is reachable; all this method adds
        is the *mode* flip that stops further writes from hammering a disk
        that just failed, plus the wire-level story.
        """
        kind = classify_os_error(exc)
        _note_io_error(where, exc)
        if self.config.unsafe_no_degraded:
            # negative control: the unprotected daemon answers internal
            # and keeps accepting writes, which the harness proves unsafe
            return RequestError(
                protocol.E_INTERNAL, f"commit I/O failed ({kind}): {exc}"
            )
        self.enter_degraded(f"{kind} during {where}: {exc}")
        return RequestError(
            protocol.E_READ_ONLY,
            f"commit failed ({kind}): {exc}; daemon is now read-only",
            reason=self._degraded_reason,
            since=self._degraded_since,
            retry_after=self.config.degraded_probe_interval,
        )

    def enter_degraded(self, reason: str, manual: bool = False) -> None:
        """Flip into degraded read-only mode (idempotent).

        Reads, ``ping``/``stats``, replication subscriptions and open read
        transactions keep working; every mutating request is answered with
        the structured ``read_only`` error until the recovery probe (or an
        operator restart without ``--read-only``) clears the mode.
        """
        with self._degraded_lock:
            if self._degraded.is_set():
                if manual:
                    self._degraded_manual = True
                return
            self._degraded_reason = reason
            self._degraded_since = time.time()
            self._degraded_manual = manual
            self._degraded.set()
        _DEGRADED.set(1)
        _DEGRADED_ENTRIES.inc()
        # shed background writers immediately: they would only re-fail
        if self.pgo_worker is not None:
            self.pgo_worker.paused = True
        TRACER.event("server.degraded.enter", reason=reason, manual=manual)
        print(f"repro-server: entering degraded read-only mode: {reason}",
              file=sys.stderr)
        replication = self.replication
        if replication is not None:
            # a deposed-by-disk primary tells its replicas: their status
            # turns red and a cluster client can fail writes over
            replication.notify_degraded(reason)

    def exit_degraded(self) -> None:
        """Leave degraded mode (probe-verified writability)."""
        with self._degraded_lock:
            if not self._degraded.is_set():
                return
            self._degraded.clear()
            self._degraded_reason = None
            self._degraded_since = None
            self._degraded_manual = False
        _DEGRADED.set(0)
        self._recoveries += 1
        if self.pgo_worker is not None and not self._mem_pressure:
            self.pgo_worker.paused = False
        TRACER.event("server.degraded.exit")
        print("repro-server: degraded mode cleared; writes re-enabled",
              file=sys.stderr)

    def degraded_info(self) -> dict:
        return {
            "active": self._degraded.is_set(),
            "reason": self._degraded_reason,
            "since": self._degraded_since,
            "manual": self._degraded_manual,
            "probe_interval": self.config.degraded_probe_interval,
            "probe_failures": self._probe_failures,
            "recoveries": self._recoveries,
        }

    def _degraded_probe_loop(self) -> None:
        """Background writability probe: auto-recover from degraded mode.

        Each tick (while degraded, unless the mode is the manual
        override): verify the image with a read-only fsck first — writes
        must never resume over a corrupt image — then attempt an empty
        commit under the write lock, which exercises the full publish path
        (table write, header sync, fsync).  Success clears the mode.
        """
        interval = self.config.degraded_probe_interval
        while not self._stopping.wait(interval):
            if not self._degraded.is_set() or self._degraded_manual:
                continue
            if self.follower is not None:
                # a replica never commits locally (the probe's empty commit
                # would fork its image); scrub+repair own its recovery
                continue
            self._probe_recovery()

    def _probe_recovery(self) -> bool:
        if self.image_path is not None:
            try:
                report = fsck_image(self.image_path)
            except Exception as exc:
                self._probe_failures += 1
                TRACER.event("server.degraded.probe", ok=False,
                             stage="fsck", error=str(exc))
                return False
            if not report.ok:
                self._probe_failures += 1
                TRACER.event("server.degraded.probe", ok=False, stage="fsck",
                             errors=report.counts.get("error", 0)
                             if hasattr(report, "counts") else None)
                return False
        try:
            with self.txns.write(timeout=1.0):
                pass  # empty commit: full write+fsync path, no data change
        except LockTimeout:
            return False  # a reader holds the image; try again next tick
        except OSError as exc:
            self._probe_failures += 1
            TRACER.event("server.degraded.probe", ok=False, stage="commit",
                         error=str(exc))
            return False
        except Exception as exc:  # never let a probe kill the thread
            self._probe_failures += 1
            TRACER.event("server.degraded.probe", ok=False, stage="commit",
                         error=f"{type(exc).__name__}: {exc}")
            return False
        self.exit_degraded()
        return True

    # ------------------------------------------------- scrub + anti-entropy

    def _scrub_loop(self) -> None:
        interval = self.config.scrub_interval
        while not self._stopping.wait(interval):
            try:
                self.run_scrub_cycle()
            except Exception as exc:  # a failing cycle must not kill the thread
                TRACER.event(
                    "server.scrub.error", error=f"{type(exc).__name__}: {exc}"
                )

    def scrub_info(self) -> dict:
        with self._scrub_lock:
            return dict(self._scrub_state)

    def run_scrub_cycle(self) -> dict:
        """One integrity pass over every committed object's page chain.

        Corruption flips the daemon into degraded read-only mode; on a
        replica an anti-entropy repair against the upstream runs next, and
        a clean re-scrub exits degraded mode again.  Returns the (final)
        scrub report.
        """
        report = scrub_heap(
            self.heap,
            self.txns,
            pages_per_sec=self.config.scrub_pages_per_sec,
            stop=self._stopping,
        )
        with self._scrub_lock:
            self._scrub_state["cycles"] += 1
            self._scrub_state["corrupt_total"] += len(report.corrupt_oids)
            self._scrub_state["last"] = report.as_dict()
        if report.clean:
            return report.as_dict()
        oids = report.corrupt_oids
        self.enter_degraded(
            f"scrub found {len(oids)} unreadable object(s) (oids {oids[:8]})"
        )
        if self.follower is not None and self.config.scrub_repair:
            self._repair_and_verify()
        return self.scrub_info()["last"]

    def _repair_and_verify(self) -> bool:
        """Anti-entropy repair from the upstream, then prove it by re-scrub.

        Degraded mode is only exited on a clean re-scrub — a repair that
        claims convergence but leaves unreadable pages keeps the replica
        read-only-and-red rather than quietly serving bad data.
        """
        follower = self.follower
        if follower is None:
            return False
        try:
            result = repair_from_upstream(
                self.heap,
                self.txns,
                follower.upstream,
                lock_timeout=self.config.lock_timeout,
            )
        except Exception as exc:
            with self._scrub_lock:
                self._scrub_state["repair_failures"] += 1
            TRACER.event(
                "server.repair.error", error=f"{type(exc).__name__}: {exc}"
            )
            return False
        with self._scrub_lock:
            self._scrub_state["last_repair"] = result
        if not result.get("converged"):
            with self._scrub_lock:
                self._scrub_state["repair_failures"] += 1
            return False
        verify = scrub_heap(
            self.heap,
            self.txns,
            pages_per_sec=self.config.scrub_pages_per_sec,
            stop=self._stopping,
        )
        with self._scrub_lock:
            self._scrub_state["last"] = verify.as_dict()
        if not verify.clean:
            with self._scrub_lock:
                self._scrub_state["repair_failures"] += 1
            return False
        with self._scrub_lock:
            self._scrub_state["repairs"] += 1
        self.exit_degraded()
        return True

    def _mem_watchdog_loop(self) -> None:
        """Shed load when the heap outgrows its byte budget.

        Over budget: pause the PGO worker and history flushes (both are
        deferrable image writers) and halve the clean-object cache bound,
        evicting immediately.  Under 80% of budget: restore everything.
        The busy-style admission check (:meth:`_check_memory`) handles the
        per-request half; this thread handles the standing pressure.
        """
        interval = self.config.mem_watchdog_interval
        budget = self.config.mem_budget_bytes
        while not self._stopping.wait(interval):
            stats = self.heap.mem_stats()
            _MEM_CACHED_BYTES.set(stats["cached_bytes"])
            if budget is None:
                continue
            if stats["cached_bytes"] > budget and not self._mem_pressure:
                self._mem_pressure = True
                self._mem_shed_rounds += 1
                _MEM_PRESSURE.set(1)
                if self.pgo_worker is not None:
                    self.pgo_worker.paused = True
                self._history_paused = True
                shrunk = max(16, (stats["cached_objects"] or 32) // 2)
                self.heap.set_cache_limit(shrunk)
                TRACER.event(
                    "server.mem.shed", cached_bytes=stats["cached_bytes"],
                    budget=budget, cache_limit=shrunk,
                )
            elif self._mem_pressure and stats["cached_bytes"] < 0.8 * budget:
                self._mem_pressure = False
                _MEM_PRESSURE.set(0)
                self.heap.set_cache_limit(self._base_cache_limit)
                self._history_paused = False
                if self.pgo_worker is not None and not self._degraded.is_set():
                    self.pgo_worker.paused = False
                TRACER.event(
                    "server.mem.restore", cached_bytes=stats["cached_bytes"],
                    cache_limit=self._base_cache_limit,
                )
            elif self._mem_pressure:
                # still over the hysteresis band: keep squeezing the cache
                self.heap.set_cache_limit(
                    max(16, (self.heap.mem_stats()["cached_objects"] or 32) // 2)
                )

    def _after_write_commit(self, result) -> None:
        """Sync replication: hold the response until the ack quorum is in.

        The write is already durable locally; with ``sync_replicas=N`` a
        success response additionally guarantees N replicas applied it —
        the no-acknowledged-write-lost half of failover.
        """
        replication = self.replication
        required = self.config.sync_replicas
        if replication is None or required <= 0:
            return
        version = replication.version
        acked = replication.wait_for_acks(
            version, required, self.config.replication_timeout
        )
        if acked < required:
            raise RequestError(
                protocol.E_REPL_TIMEOUT,
                f"committed locally (v{version}) but only {acked}/{required} "
                f"replica(s) acknowledged within "
                f"{self.config.replication_timeout}s",
                committed=True,
                version=version,
                acked=acked,
            )
        if isinstance(result, dict):
            result.setdefault("acked_replicas", acked)

    # ------------------------------------------------------------ execution

    def _resolve(self, module: str, function: str):
        """Resolve a stored function through the compiled-code cache.

        Returns ``(closure, hit)``; a miss links through the system and
        installs the closure under its PTML content hash.
        """
        qualified = f"{module}.{function}"
        with self._keys_lock:
            key = self._keys.get(qualified)
        if key is not None:
            closure = self.code_cache.lookup(key)
            if closure is not None:
                return closure, True
        try:
            closure = self.system.closure(module, function)
        except TLError as exc:
            raise RequestError(protocol.E_NOT_FOUND, str(exc)) from exc
        key = self.code_cache.key_of(closure.code, self.heap)
        if key is None:
            key = f"name:{qualified}"  # PTML-less code: name-keyed fallback
        self.code_cache.install(key, closure)
        with self._keys_lock:
            self._keys[qualified] = key
        return closure, False

    def invalidate_function(self, module: str, function: str) -> None:
        """Drop the cache entries for a rewritten function (PGO/recompile).

        Both caches key by PTML hash, so one redefinition drops the stale
        compiled code *and* the stale analysis fact together.
        """
        qualified = f"{module}.{function}"
        with self._keys_lock:
            key = self._keys.pop(qualified, None)
        if key is not None:
            self.code_cache.invalidate(key)
            self.fact_store.invalidate(key)

    def take_profile(self) -> VMProfiler:
        """Hand the aggregated profile to the caller, starting a fresh one."""
        with self._profile_lock:
            profile = self._profile
            self._profile = VMProfiler()
        return profile

    def _merge_profile(self, profiler: VMProfiler) -> None:
        with self._profile_lock:
            self._profile.merge(profiler)

    def _execute(self, closure, args, step_limit: int | None, request: dict | None = None):
        limit = self.config.step_limit
        if step_limit is not None:
            limit = max(1, min(int(step_limit), limit))
        if request is not None:
            remaining = self._remaining(request)
            if remaining is not None:
                # convert the remaining wall-clock budget to instructions,
                # so a deadlined request cannot overstay inside the VM
                limit = max(1, min(limit, int(remaining * self.config.steps_per_second)))
        profiler = VMProfiler() if self.config.profile else None
        vm = VM(
            store=self.heap,
            foreign=self.system.foreign,
            step_limit=limit,
            profiler=profiler,
        )
        try:
            result = vm.call(closure, list(args))
        except StepLimitExceeded as exc:
            if profiler is not None:
                self._merge_profile(profiler)  # truncated runs are evidence too
            if request is not None:
                request["_steps"] = exc.instructions
            raise RequestError(
                protocol.E_STEP_LIMIT,
                str(exc),
                limit=exc.limit,
                instructions=exc.instructions,
                output=list(exc.partial.output) if exc.partial else [],
            ) from exc
        except UncaughtTmlException as exc:
            raise RequestError(
                protocol.E_EXEC, f"uncaught exception: {show_value(exc.value)}"
            ) from exc
        except MachineError as exc:
            raise RequestError(protocol.E_EXEC, str(exc)) from exc
        if profiler is not None:
            self._merge_profile(profiler)
        if request is not None:
            request["_steps"] = result.instructions
        return result

    # -------------------------------------------------------------- sharding

    def _load_topology(self) -> ShardTopology | None:
        """Adopt the topology persisted under ``__topology__`` (JSON text).

        The root replicates through ordinary commit-log shipping, so a
        shard replica learns the ring without ever being told directly.
        """
        oid = self.heap.root(TOPOLOGY_ROOT)
        if oid is None:
            return None
        try:
            wire = self.heap.load(oid)
            if isinstance(wire, str):
                self.topology = ShardTopology.from_dict(json.loads(wire))
        except (HeapError, RingError, json.JSONDecodeError) as exc:
            print(f"repro-server: ignoring bad __topology__: {exc}", file=sys.stderr)
        if self.config.shard_id is None:
            sid_oid = self.heap.root(SHARD_ROOT)
            if sid_oid is not None:
                try:
                    sid = self.heap.load(sid_oid)
                    if isinstance(sid, int):
                        self.config.shard_id = sid
                except HeapError:
                    pass
        return self.topology

    def _current_topology(self) -> ShardTopology | None:
        """The active topology, re-reading the image when none is adopted
        yet (a replica that received ``__topology__`` after its boot)."""
        if self.topology is None:
            self._load_topology()
        return self.topology

    def _check_owned(self, names) -> None:
        """Ownership gate for sharded daemons: every *user* root must hash
        to this shard.  System roots are image-local and always pass; a
        daemon with no topology or no shard id serves everything."""
        shard_id = self.config.shard_id
        if shard_id is None:
            return
        topology = self._current_topology()
        if topology is None:
            return
        for name in names:
            name = str(name)
            if is_system_root(name):
                continue
            owner = topology.shard_for(name)
            if owner != shard_id:
                raise RequestError(
                    protocol.E_WRONG_SHARD,
                    f"root {name!r} belongs to shard {owner}, "
                    f"this daemon is shard {shard_id}",
                    shard=owner,
                    endpoints=[
                        {"host": host, "port": port}
                        for host, port in topology.endpoints(owner)
                    ],
                    epoch=topology.epoch,
                )

    # ------------------------------------------------------------- operators

    def _op_ping(self, session, request):
        """Liveness + identity: protocol, drain status, image facts, uptime."""
        reply = {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "session": session.id,
            "status": "draining" if self._stopping.is_set() else "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "image": self.heap.image_info(),
            "role": self.role,
            "repl_version": self.repl_version(),
            "degraded": self._degraded.is_set(),
        }
        if self._degraded.is_set():
            reply["degraded_reason"] = self._degraded_reason
        if self.replication is not None:
            reply["term"] = self.replication.term
        elif self.follower is not None:
            reply["term"] = self.follower.term
        if self.coordinator is not None:
            reply["coordinator"] = True
        topology = self._current_topology()
        if topology is not None and self.config.shard_id is not None:
            # shard identity: id, ring position and owned keyspace share
            reply["shard"] = topology.describe_shard(self.config.shard_id)
        code = self.code_cache.stats()
        facts = self.fact_store.stats()
        reply["caches"] = {
            "code": self._hit_rate(code["hits"], code["misses"]),
            "facts": self._hit_rate(facts["hits"], facts["misses"]),
        }
        return reply

    @staticmethod
    def _hit_rate(hits: int, misses: int) -> dict:
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else None,
        }

    def _op_call(self, session, request):
        module = request.get("module")
        function = request.get("function")
        if not module or not function:
            raise RequestError(protocol.E_BAD_REQUEST, "call needs module and function")
        args = [from_jsonable(a) for a in request.get("args", [])]
        step_limit = request.get("step_limit")
        mode = request.get("mode", "read")

        def body():
            closure, hit = self._resolve(module, function)
            result = self._execute(closure, args, step_limit, request)
            return {
                "value": to_jsonable(result.value),
                "instructions": result.instructions,
                "output": list(result.output),
                "cache": "hit" if hit else "miss",
            }

        if mode == "write":
            return self._run_write(session, request, body)
        return self._run_read(session, request, body)

    def _op_run(self, session, request):
        source = request.get("source")
        if not isinstance(source, str):
            raise RequestError(protocol.E_BAD_REQUEST, "run needs TL source text")

        def body():
            try:
                modules = [
                    self.system.compile_ast(ast) for ast in parse_modules(source)
                ]
            except TLError as exc:
                raise RequestError(protocol.E_BAD_REQUEST, str(exc)) from exc
            names = []
            for module in modules:
                self.system.persist(module.name)
                names.append(module.name)
                for function in module.functions:
                    self.invalidate_function(module.name, function)
            return {"modules": names}

        return self._run_write(session, request, body)

    def _op_get(self, session, request):
        roots = request.get("roots")
        if not isinstance(roots, list) or not roots:
            raise RequestError(protocol.E_BAD_REQUEST, "get needs a list of roots")
        min_version = request.get("min_version")

        def body():
            self._check_owned(roots)
            if min_version is not None:
                # bounded staleness: refuse to serve a snapshot older than
                # the client's floor (typically its last write's version)
                current = self.repl_version()
                if current < int(min_version):
                    raise RequestError(
                        protocol.E_STALE_READ,
                        f"replica is at version {current}, "
                        f"read requires {min_version}",
                        version=current,
                        min_version=int(min_version),
                    )
            values = {}
            for name in roots:
                try:
                    values[name] = to_jsonable(self.heap.load_root(name))
                except HeapError as exc:
                    raise RequestError(protocol.E_NOT_FOUND, str(exc)) from exc
            return {
                "values": values,
                "version": self.txns.version,
                "repl_version": self.repl_version(),
            }

        return self._run_read(session, request, body)

    def _op_set(self, session, request):
        root = request.get("root")
        if not isinstance(root, str):
            raise RequestError(protocol.E_BAD_REQUEST, "set needs a root name")
        value = from_jsonable(request.get("value"))

        def body():
            self._check_owned([root])
            oid = self.heap.root(root)
            # update(oid, None) means "mark dirty", so binding a root to the
            # null value always goes through a fresh store + rebind
            if oid is None or value is None:
                oid = self.heap.store(value)
                self.heap.set_root(root, oid)
            else:
                self.heap.update(oid, value)
            return {"root": root, "oid": int(oid)}

        return self._run_write(session, request, body)

    def _op_roots(self, session, request):
        def body():
            return {"roots": self.heap.root_names(), "version": self.txns.version}

        return self._run_read(session, request, body)

    def _bind_root(self, root: str, value) -> int:
        """Bind one root to a decoded value (shared by set/mset/decide)."""
        oid = self.heap.root(root)
        # update(oid, None) means "mark dirty", so binding a root to the
        # null value always goes through a fresh store + rebind
        if oid is None or value is None:
            oid = self.heap.store(value)
            self.heap.set_root(root, oid)
        else:
            self.heap.update(oid, value)
        return int(oid)

    def _op_mset(self, session, request):
        """Bind several roots in one atomic commit.

        On a plain daemon every root must be local (owned or system); on a
        coordinator the writes may span shards, in which case the
        coordinator override runs them as a 2PC instead of this handler.
        """
        writes = request.get("writes")
        if not isinstance(writes, dict) or not writes:
            raise RequestError(protocol.E_BAD_REQUEST, "mset needs a writes object")

        def body():
            self._check_owned(writes.keys())
            oids = {
                str(root): self._bind_root(str(root), from_jsonable(wire))
                for root, wire in writes.items()
            }
            return {"roots": oids, "count": len(oids)}

        return self._run_write(session, request, body)

    def _op_query(self, session, request):
        """Prefix-scan this daemon's owned user roots, optionally folding
        them through a stored function — the shard-local half of
        scatter-gather.  The fold function receives one vector of the
        matching values (in root-name order) and its result is the
        shard's partial, merged coordinator-side."""
        prefix = request.get("prefix", "")
        if not isinstance(prefix, str):
            raise RequestError(protocol.E_BAD_REQUEST, "query prefix must be a string")
        module = request.get("module")
        function = request.get("function")
        min_version = request.get("min_version")

        def body():
            if min_version is not None:
                current = self.repl_version()
                if current < int(min_version):
                    raise RequestError(
                        protocol.E_STALE_READ,
                        f"replica is at version {current}, "
                        f"read requires {min_version}",
                        version=current,
                        min_version=int(min_version),
                    )
            topology = self._current_topology()
            shard_id = self.config.shard_id
            names = []
            for name in self.heap.root_names():
                if not name.startswith(prefix) or is_system_root(name):
                    continue
                if (
                    topology is not None
                    and shard_id is not None
                    and topology.shard_for(name) != shard_id
                ):
                    continue  # not owned (stale leftovers mid-rebalance)
                names.append(name)
            values = {name: self.heap.load_root(name) for name in names}
            reply = {
                "count": len(names),
                "version": self.txns.version,
                "repl_version": self.repl_version(),
            }
            if module and function:
                closure, hit = self._resolve(module, function)
                result = self._execute(
                    closure,
                    [TmlVector([values[name] for name in names])],
                    request.get("step_limit"),
                    request,
                )
                reply["value"] = to_jsonable(result.value)
                reply["cache"] = "hit" if hit else "miss"
            else:
                reply["values"] = {
                    name: to_jsonable(value) for name, value in values.items()
                }
            return reply

        return self._run_read(session, request, body)

    def _op_topology(self, session, request):
        """The adopted ring (a coordinator override reports its own)."""
        def body():
            topology = self._current_topology()
            if topology is None:
                raise RequestError(
                    protocol.E_NOT_FOUND, "this daemon has no shard topology"
                )
            reply = {"topology": topology.as_dict()}
            if self.config.shard_id is not None:
                reply["shard"] = self.config.shard_id
            return reply

        return self._run_read(session, request, body)

    # ----------------------------------------------------- 2PC participant

    def _op_shard_adopt(self, session, request):
        """Persist a topology pushed by a coordinator (and this daemon's
        shard id within it).  The commit replicates the ring to the whole
        shard group."""
        try:
            topology = ShardTopology.from_dict(request.get("topology"))
        except RingError as exc:
            raise RequestError(protocol.E_BAD_REQUEST, str(exc)) from exc
        shard = request.get("shard")
        if shard is not None and not isinstance(shard, int):
            raise RequestError(protocol.E_BAD_REQUEST, "shard must be an int id")

        def body():
            text = json.dumps(
                topology.as_dict(), sort_keys=True, separators=(",", ":")
            )
            self._bind_root(TOPOLOGY_ROOT, text)
            if shard is not None:
                self._bind_root(SHARD_ROOT, shard)
            return {"epoch": topology.epoch, "shards": len(topology.shards)}

        result = self._run_write(session, request, body)
        self.topology = topology
        if shard is not None:
            self.config.shard_id = shard
        return result

    def _op_shard_prepare(self, session, request):
        """Phase one: durably stage a transaction's writes for this shard.

        The staging commit flows through the fenced commit log and the
        replica quorum like any write — once acknowledged, this shard is
        in doubt for the transaction until a decision (or presumed-abort
        recovery) resolves it.  Idempotent per transaction id.
        """
        txn = request.get("txn")
        writes = request.get("writes")
        if not isinstance(txn, str) or not txn:
            raise RequestError(protocol.E_BAD_REQUEST, "prepare needs a txn id")
        if not isinstance(writes, dict) or not writes:
            raise RequestError(protocol.E_BAD_REQUEST, "prepare needs writes")
        expected = request.get("term")
        if expected is not None and self.replication is not None:
            if int(expected) != self.replication.term:
                # fencing: the coordinator prepared against a deposed view
                # of this shard group
                raise RequestError(
                    protocol.E_STALE_TERM,
                    f"shard primary is at term {self.replication.term}, "
                    f"prepare expected term {expected}",
                    term=self.replication.term,
                )
        coordinator_node = str(request.get("coordinator", ""))
        participants = request.get("participants", [])
        if not isinstance(participants, list):
            raise RequestError(protocol.E_BAD_REQUEST, "participants must be a list")

        def body():
            self._check_owned(writes.keys())
            root = staging_root(txn)
            if self.heap.root(root) is not None:
                return {"txn": txn, "prepared": True, "already": True}
            for wire in writes.values():
                from_jsonable(wire)  # reject undecodable values pre-stage
            record = make_staging(txn, coordinator_node, participants, writes)
            self.heap.set_root(root, self.heap.store(record))
            reply = {"txn": txn, "prepared": True}
            if self.replication is not None:
                reply["term"] = self.replication.term
            return reply

        return self._run_write(session, request, body)

    def _op_shard_decide(self, session, request):
        """Phase two: apply (commit) or discard (abort) staged writes and
        retire the staging root, all in one atomic commit.  Replaying a
        decision for an already-retired transaction is a no-op — the
        coordinator's recovery may deliver duplicates."""
        txn = request.get("txn")
        decision = request.get("decision")
        if not isinstance(txn, str) or not txn:
            raise RequestError(protocol.E_BAD_REQUEST, "decide needs a txn id")
        if decision not in ("commit", "abort"):
            raise RequestError(
                protocol.E_BAD_REQUEST, f"decision must be commit|abort, got {decision!r}"
            )

        def body():
            root = staging_root(txn)
            oid = self.heap.root(root)
            if oid is None:
                return {"txn": txn, "decision": decision, "already": True}
            try:
                staged = parse_staging(self.heap.load(oid))
            except TwopcError as exc:
                raise RequestError(
                    protocol.E_INTERNAL, f"corrupt staging for {txn}: {exc}"
                ) from exc
            if decision == "commit":
                for name, wire in staged["writes"].items():
                    self._bind_root(name, from_jsonable(wire))
            self.heap.remove_root(root)
            return {"txn": txn, "decision": decision, "applied": decision == "commit"}

        return self._run_write(session, request, body)

    def _op_shard_indoubt(self, session, request):
        """List prepared-but-undecided transactions on this shard — the
        coordinator's recovery input."""
        def body():
            indoubt = []
            for name in self.heap.root_names():
                if not name.startswith(STAGING_PREFIX):
                    continue
                try:
                    staged = parse_staging(self.heap.load_root(name))
                except (TwopcError, HeapError):
                    continue
                indoubt.append(
                    {
                        "txn": staged["txn"],
                        "coordinator": staged["coordinator"],
                        "participants": staged["participants"],
                        "roots": sorted(staged["writes"]),
                    }
                )
            return {"indoubt": indoubt, "count": len(indoubt)}

        return self._run_read(session, request, body)

    def _op_begin(self, session, request):
        if session.txn is not None:
            raise RequestError(protocol.E_TXN_STATE, "session already has a transaction")
        mode = request.get("mode", "write")
        if mode not in ("read", "write"):
            raise RequestError(protocol.E_BAD_REQUEST, f"unknown txn mode {mode!r}")
        if mode == "write":
            self._check_writable()
        try:
            session.txn = self.txns.begin(mode, timeout=request.get("timeout"))
        except LockTimeout as exc:
            raise RequestError(protocol.E_BUSY, str(exc)) from exc
        return {"mode": mode, "version": session.txn.version}

    def _op_commit(self, session, request):
        txn = session.take_txn()
        if txn is None:
            raise RequestError(protocol.E_TXN_STATE, "no open transaction")
        try:
            txn.commit()
        except HeapError as exc:
            raise RequestError(protocol.E_EXEC, f"commit failed: {exc}") from exc
        except OSError as exc:
            raise self._commit_io_failure("commit", exc) from exc
        result = {"version": self.txns.version, "repl_version": self.repl_version()}
        if txn.mode == "write":
            self._after_write_commit(result)
        return result

    def _op_abort(self, session, request):
        txn = session.take_txn()
        if txn is None:
            raise RequestError(protocol.E_TXN_STATE, "no open transaction")
        txn.abort()
        return {"version": self.txns.version}

    @staticmethod
    def _latency_summary(histogram) -> dict:
        """count/mean plus exact-rank p50/p99/p999 of one latency histogram."""
        summary = {
            "count": histogram.count,
            "mean": round(histogram.mean, 1),
            "min": histogram.min,
            "max": histogram.max,
        }
        summary.update(histogram.percentiles(0.5, 0.99, 0.999))
        return summary

    def _op_stats(self, session, request):
        with self._sessions_lock:
            active = len(self._sessions)
        per_op = {}
        prefix, suffix = "server.op.", ".latency_us"
        for name in METRICS.names():
            if name.startswith(prefix) and name.endswith(suffix):
                per_op[name[len(prefix):-len(suffix)]] = self._latency_summary(
                    METRICS.get(name)
                )
        report = {
            "sessions": active,
            "version": self.txns.version,
            "role": self.role,
            "repl_version": self.repl_version(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": {
                "total": _REQUESTS.value,
                "errors": _REQUEST_ERRORS.value,
            },
            "latency_us": self._latency_summary(_LATENCY),
            "ops": per_op,
            "codecache": self.code_cache.stats(),
            "facts": self.fact_store.stats(),
            "roots": len(self.heap.root_names()),
            "slowlog": self.slowlog.stats(),
            "trace": self._trace_status(),
            "history": self.history.stats(),
            "degraded": self.degraded_info(),
            "memory": {
                **self.heap.mem_stats(),
                "budget_bytes": self.config.mem_budget_bytes,
                "txn_budget_objects": self.config.mem_txn_budget_objects,
                "pressure": self._mem_pressure,
                "shed_rounds": self._mem_shed_rounds,
            },
            "shed": {
                "deadline": _SHED_DEADLINE.value,
                "overloaded": _SHED_OVERLOADED.value,
                "memory": _SHED_MEMORY.value,
                "slow_client_closes": _SLOW_CLIENT_CLOSES.value,
                "io_errors": _IO_ERRORS.value,
            },
        }
        if self.config.scrub_interval is not None or self.scrub_info()["cycles"]:
            report["scrub"] = self.scrub_info()
        if self.archiver is not None:
            try:
                sealed = self.archiver.sealed_version
            except OSError:
                sealed = None
            report["archive"] = {
                "directory": self.archiver.directory,
                "sealed_version": sealed,
            }
        topology = self._current_topology()
        if topology is not None and self.config.shard_id is not None:
            report["shard"] = topology.describe_shard(self.config.shard_id)
            report["shard"]["staging"] = sum(
                1
                for name in self.heap.root_names()
                if name.startswith(STAGING_PREFIX)
            )
        if self.pgo_worker is not None:
            report["pgo"] = self.pgo_worker.stats()
        if self.replication is not None:
            report["replication"] = self.replication.status()
            apply_lag = METRICS.get("server.repl.apply_latency_us")
            if apply_lag is not None and apply_lag.count:
                report["replication"]["apply_latency_us"] = self._latency_summary(
                    apply_lag
                )
        elif self.follower is not None:
            report["replication"] = self.follower.status()
            apply_lag = METRICS.get("server.repl.apply_latency_us")
            if apply_lag is not None and apply_lag.count:
                report["replication"]["apply_latency_us"] = self._latency_summary(
                    apply_lag
                )
        if request.get("metrics"):
            report["metrics"] = METRICS.snapshot()
        if request.get("history"):
            count = request["history"]
            report["history_entries"] = self.history.entries(
                int(count) if count is not True else None
            )
        return report

    def _op_slowlog(self, session, request):
        """The ring of slowest requests (trace ids are NDJSON join keys)."""
        if request.get("clear"):
            self.slowlog.clear()
        count = request.get("n")
        return {
            "entries": self.slowlog.entries(int(count) if count is not None else None),
            **self.slowlog.stats(),
        }

    # ------------------------------------------------------------- trace op

    def _trace_status(self) -> dict:
        return {
            "recording": TRACER.enabled,
            "managed": self._trace_recorder is not None,
            "path": self._trace_path,
            "sample_rate": TRACER.sample_rate,
        }

    def _detach_trace_recorder(self) -> None:
        with self._trace_lock:
            recorder = self._trace_recorder
            self._trace_recorder = None
            self._trace_path = None
            if recorder is None:
                return
            if TRACER.recorder is recorder:
                TRACER.recorder = None
            recorder.close()

    def _op_trace(self, session, request):
        """Runtime control of the daemon's NDJSON export.

        ``action``: ``status`` (default) | ``start`` (attach a recorder
        writing to a server-side ``path``) | ``stop`` (detach and close the
        daemon-managed recorder) | ``sample`` (set the root sampling
        ``rate`` in [0, 1]).
        """
        action = request.get("action", "status")
        if action == "start":
            path = request.get("path")
            if not isinstance(path, str) or not path:
                raise RequestError(
                    protocol.E_BAD_REQUEST, "trace start needs a server-side path"
                )
            with self._trace_lock:
                if TRACER.enabled:
                    raise RequestError(
                        protocol.E_BAD_REQUEST,
                        "a trace recorder is already attached"
                        + (f" (writing {self._trace_path})" if self._trace_path else ""),
                    )
                try:
                    recorder = NdjsonRecorder(path)
                except OSError as exc:
                    raise RequestError(
                        protocol.E_BAD_REQUEST, f"cannot open {path!r}: {exc}"
                    ) from exc
                self._trace_recorder = recorder
                self._trace_path = path
                TRACER.recorder = recorder
        elif action == "stop":
            if self._trace_recorder is None and TRACER.enabled:
                raise RequestError(
                    protocol.E_BAD_REQUEST,
                    "the attached recorder is not managed by the trace op",
                )
            self._detach_trace_recorder()
        elif action == "sample":
            try:
                rate = float(request["rate"])
            except (KeyError, TypeError, ValueError) as exc:
                raise RequestError(
                    protocol.E_BAD_REQUEST, "trace sample needs a numeric rate"
                ) from exc
            TRACER.sample_rate = min(1.0, max(0.0, rate))
        elif action != "status":
            raise RequestError(
                protocol.E_BAD_REQUEST, f"unknown trace action {action!r}"
            )
        return self._trace_status()

    def _op_pgo(self, session, request):
        """Run one PGO round now (admin/diagnostic; tests and smoke use it)."""
        worker = self.pgo_worker
        if worker is None:
            worker = PgoWorker(
                self,
                interval=None,
                top=self.config.pgo_top,
                min_instructions=self.config.pgo_min_instructions,
            )
        report = worker.run_round(top=request.get("top"), min_instructions=0)
        if report is None:
            return {"optimized": []}
        return {
            "optimized": [
                {
                    "function": candidate.qualified,
                    "invocations": candidate.invocations,
                    "instructions": candidate.instructions,
                    "cost_before": report.results[candidate.qualified].cost_before,
                    "cost_after": report.results[candidate.qualified].cost_after,
                }
                for candidate in report.selected
            ]
        }

    def _op_sleep(self, session, request):
        if not self.config.enable_debug_ops:
            raise RequestError(protocol.E_BAD_REQUEST, "debug ops are disabled")
        seconds = float(request.get("seconds", 0.1))
        time.sleep(min(seconds, 30.0))
        return {"slept": seconds}

    def _op_shutdown(self, session, request):
        # respond first, then stop from a separate thread so the worker
        # executing this request is not asked to join itself
        threading.Thread(target=self.stop, name="repro-server-stop", daemon=True).start()
        return {"stopping": True}

    # ------------------------------------------------------ replication ops

    def _op_repl_status(self, session, request):
        """Role, coordinates, lag/subscribers — optionally the state digest."""
        if self.replication is not None:
            status = self.replication.status()
        elif self.follower is not None:
            status = self.follower.status()
        else:
            status = {
                "role": "standalone",
                "term": replication_state(self.heap)["term"],
                "version": self.repl_version(),
            }
        if request.get("digest"):
            try:
                with self.txns.read(timeout=self.config.lock_timeout):
                    status["digest"] = self.heap.logical_digest()
            except LockTimeout as exc:
                raise RequestError(protocol.E_BUSY, str(exc)) from exc
        return status

    def _op_repl_digest(self, session, request):
        """Digest tree over OID buckets — the anti-entropy compare step.

        Buckets whose digest differs from the peer's are the only ranges a
        repairing replica re-fetches; ``version`` lets the caller reject a
        comparison taken at a different replication version (skew would
        flag every fresh write as divergence).
        """

        def body():
            digests = bucket_digests(self.heap)
            return {
                "version": self.repl_version(),
                "term": replication_state(self.heap)["term"],
                "role": self.role,
                "bucket_bits": OID_BUCKET_BITS,
                "buckets": {str(b): d for b, d in digests.items()},
                "root": digest_root(digests),
                "oids": len(self.heap.committed_oids()),
            }

        return self._run_read(session, request, body)

    def _op_repl_fetch(self, session, request):
        """Committed payloads of the requested OID buckets (repair fetch)."""
        buckets = request.get("buckets")
        if not isinstance(buckets, list) or not all(
            isinstance(b, int) and b >= 0 for b in buckets
        ):
            raise RequestError(
                protocol.E_BAD_REQUEST, "fetch needs a list of bucket ids"
            )
        want = set(buckets)

        def body():
            objects = []
            total = 0
            for oid in self.heap.committed_oids():
                if bucket_of(oid) not in want:
                    continue
                payload = self.heap.committed_payload(oid)
                objects.append((oid, payload.hex()))
                total += len(payload)
            return {
                "version": self.repl_version(),
                "count": len(objects),
                "bytes": total,
                "objects": objects,
            }

        return self._run_read(session, request, body)

    def _op_repl_subscribe(self, session, request):
        """Turn this connection into a change-record stream (replica side
        connects and calls this; records are pushed, acks flow back)."""
        replication = self.replication
        if replication is None:
            raise RequestError(
                protocol.E_NOT_PRIMARY,
                f"this node is a {self.role}, it does not serve the "
                "replication stream",
            )
        node = str(request.get("node", f"session-{session.id}"))
        try:
            from_version = int(request.get("from_version", 0))
            last_term = int(request.get("last_term", 0))
        except (TypeError, ValueError) as exc:
            raise RequestError(protocol.E_BAD_REQUEST, str(exc)) from exc
        try:
            result = replication.subscribe(
                session.id, node, from_version, last_term, session.send
            )
        except StaleTermError as exc:
            raise RequestError(
                protocol.E_STALE_TERM, str(exc), term=exc.term
            ) from exc
        session.subscriber = True
        session.sock.settimeout(None)  # subscribers are quiet between commits
        return result

    def _op_repl_ack(self, session, request):
        if self.replication is None or not session.subscriber:
            raise RequestError(protocol.E_BAD_REQUEST, "not a subscriber session")
        try:
            version = int(request["version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(protocol.E_BAD_REQUEST, "ack needs a version") from exc
        self.replication.ack(session.id, version)
        return {"acked": version}

    def _op_promote(self, session, request):
        """Make this node the primary, fencing the old one out by term."""
        requested = request.get("term")
        term = self.become_primary(int(requested) if requested is not None else None)
        return {
            "role": "primary",
            "term": term,
            "version": self.replication.version if self.replication else 0,
        }

    def _op_follow(self, session, request):
        """(Re-)point this node at a primary — demotion or upstream change."""
        host = request.get("host")
        port = request.get("port")
        if not isinstance(host, str) or not isinstance(port, int):
            raise RequestError(protocol.E_BAD_REQUEST, "follow needs host and port")
        self.become_replica((host, port))
        return {"role": "replica", "upstream": {"host": host, "port": port}}

    def become_primary(self, term: int | None = None) -> int:
        """Promote: stop following, bump the term, commit the promotion.

        The promotion commit stamps the new term into the image (and the
        commit log) so it is durable and every subscriber learns it — a
        deposed primary's records are rejected from that point on.
        """
        with self._role_lock:
            if self.replication is not None:
                return self.replication.term  # already primary
            if self.follower is not None:
                # strictly above every term this node ever accepted
                new_term = self.follower.promote(term)
                self.follower = None
            else:
                base = replication_state(self.heap)["term"]
                new_term = max(base + 1, term if term is not None else 0, 1)
            self.replication = PrimaryReplication(
                self.heap,
                self.txns,
                self._log_path(),
                node=self.config.node_id or "promoted",
                term=new_term,
                fence=self.config.fence,
            )
            self.replication.attach()
            # the promotion commit: forces a record under the new term even
            # with no data change, so the term takes effect durably now
            try:
                with self.txns.write(timeout=self.config.lock_timeout):
                    pass
            except OSError as exc:
                raise self._commit_io_failure("promotion", exc) from exc
            self._attach_archiver()
            TRACER.event("server.repl.promote", term=new_term)
            return new_term

    def become_replica(self, upstream: tuple[str, int]) -> None:
        with self._role_lock:
            if self.replication is not None:
                self.replication.stop()
                self.replication = None
            if self.follower is not None:
                self.follower.stop()
            self.follower = ReplicaFollower(
                self.heap,
                self.txns,
                upstream,
                self._log_path(),
                node=self.config.node_id or "replica",
                fence=self.config.fence,
            )
            self.follower.start()
            self._attach_archiver()
            TRACER.event(
                "server.repl.follow", host=upstream[0], port=int(upstream[1])
            )

    _OPS = {
        "ping": _op_ping,
        "call": _op_call,
        "run": _op_run,
        "get": _op_get,
        "set": _op_set,
        "mset": _op_mset,
        "query": _op_query,
        "topology": _op_topology,
        "roots": _op_roots,
        "begin": _op_begin,
        "commit": _op_commit,
        "abort": _op_abort,
        "stats": _op_stats,
        "slowlog": _op_slowlog,
        "trace": _op_trace,
        "pgo": _op_pgo,
        "sleep": _op_sleep,
        "shutdown": _op_shutdown,
        "repl.status": _op_repl_status,
        "repl.digest": _op_repl_digest,
        "repl.fetch": _op_repl_fetch,
        "repl.subscribe": _op_repl_subscribe,
        "repl.ack": _op_repl_ack,
        "promote": _op_promote,
        "follow": _op_follow,
        "shard.adopt": _op_shard_adopt,
        "shard.prepare": _op_shard_prepare,
        "shard.decide": _op_shard_decide,
        "shard.indoubt": _op_shard_indoubt,
    }
