"""The repro daemon: concurrent sessions over one persistent image.

One :class:`ReproServer` owns one :class:`~repro.store.heap.ObjectHeap`
and one :class:`~repro.lang.TycoonSystem` built over it.  Clients connect
over TCP; each connection is one *session*.  Per connection a cheap reader
thread parses frames and submits stateless requests to the bounded worker
pool (:mod:`repro.server.pool`); a full queue answers with the structured
``backpressure`` error instead of queueing unboundedly.  ``begin`` and
every request of a session holding an open transaction run on the
session's own connection thread instead (see :meth:`ReproServer._admit`),
so a session blocked on the transaction lock can never starve the pool.

Transactions (single-writer / snapshot-reader, see
:mod:`repro.store.concurrency`):

* without an explicit transaction each request runs in its own implicit
  one — ``read`` for pure execution, ``write`` (auto-commit) for
  mutating operations;
* ``begin``/``commit``/``abort`` give a session an explicit transaction
  spanning several requests; a write transaction holds the image
  exclusively until the session commits, aborts or disconnects.

Execution requests resolve stored functions through the shared
compiled-code cache (:mod:`repro.server.codecache`) and run on a fresh VM
per request with a per-request step limit (the budget errors surface as
structured ``step_limit`` responses).  Each run is profiled; the
aggregated profile feeds the background PGO worker
(:mod:`repro.server.pgo`), which rewrites hot functions in the live image
— sessions transparently pick up the faster code on their next call.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
import traceback
from dataclasses import dataclass

from repro.lang import TycoonSystem
from repro.lang.errors import TLError
from repro.lang.parser import parse_modules
from repro.lang.stdlib import STDLIB_MODULE_NAMES
from repro.machine.runtime import MachineError, UncaughtTmlException, show_value
from repro.machine.vm import VM, StepLimitExceeded
from repro.obs.metrics import METRICS
from repro.obs.profile import VMProfiler
from repro.obs.trace import TRACER
from repro.server import protocol
from repro.server.codecache import CodeCache
from repro.server.pgo import PgoWorker
from repro.server.pool import Backpressure, WorkerPool
from repro.server.protocol import from_jsonable, recv_frame, send_frame, to_jsonable
from repro.store.concurrency import LockTimeout, TransactionManager
from repro.store.heap import HeapError, ObjectHeap

__all__ = ["ServerConfig", "Session", "ReproServer", "RequestError"]

_REQUESTS = METRICS.counter("server.requests", "requests received")
_REQUEST_ERRORS = METRICS.counter("server.request_errors", "requests answered with an error")
_LATENCY = METRICS.histogram(
    "server.request_latency_us", "request handling latency (microseconds)"
)
_ACTIVE_SESSIONS = METRICS.gauge("server.active_sessions", "connected sessions")
_SESSIONS_OPENED = METRICS.counter("server.sessions_opened", "sessions accepted")
_DRAIN_ABORTS = METRICS.counter(
    "server.drain_aborted_txns", "open transactions aborted by graceful shutdown"
)


@dataclass
class ServerConfig:
    """Tuning knobs of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from server.port
    workers: int = 4
    queue_size: int = 64
    #: default/maximum instruction budget per execution request
    step_limit: int = 5_000_000
    #: transaction lock acquisition timeout (seconds)
    lock_timeout: float = 10.0
    #: bound on the heap's clean-object cache (None = unbounded)
    heap_cache_limit: int | None = 4096
    #: seconds between background PGO rounds (None disables the worker)
    pgo_interval: float | None = 30.0
    pgo_top: int = 2
    pgo_min_instructions: int = 1_000
    #: profile every execution request (the PGO evidence source)
    profile: bool = True
    #: allow debug ops (``sleep``) — test/diagnostic use only
    enable_debug_ops: bool = False
    max_frame: int = protocol.MAX_FRAME


class RequestError(Exception):
    """A structured protocol-level failure (code + message + details)."""

    def __init__(self, code: str, message: str, **details):
        super().__init__(message)
        self.code = code
        self.details = details


class Session:
    """One client connection: id, socket, and its open transaction."""

    def __init__(self, session_id: int, sock: socket.socket, addr):
        self.id = session_id
        self.sock = sock
        self.addr = addr
        self.txn = None
        #: serializes request execution within the session (requests keep
        #: their submission order even if pool scheduling would race them)
        self.lock = threading.Lock()
        self._send_lock = threading.Lock()
        self.closed = False

    def send(self, message: dict) -> None:
        with self._send_lock:
            if not self.closed:
                send_frame(self.sock, message)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class ReproServer:
    """The multi-session daemon over one persistent image."""

    def __init__(self, image: str | None, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.heap = ObjectHeap(image, cache_limit=self.config.heap_cache_limit)
        self.system = TycoonSystem(heap=self.heap)
        self.txns = TransactionManager(self.heap, default_timeout=self.config.lock_timeout)
        self.code_cache = CodeCache()
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            name="repro-server",
        )
        self.pgo_worker: PgoWorker | None = (
            PgoWorker(
                self,
                interval=self.config.pgo_interval,
                top=self.config.pgo_top,
                min_instructions=self.config.pgo_min_instructions,
            )
            if self.config.pgo_interval is not None
            else None
        )
        #: qualified function name -> current code-cache key
        self._keys: dict[str, str] = {}
        self._keys_lock = threading.Lock()
        #: merged profile of every profiled request since the last PGO round
        self._profile = VMProfiler()
        self._profile_lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session = 1
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._stop_once = threading.Lock()  # won exactly once, never released
        self._started_at = time.monotonic()
        self._boot()

    # ----------------------------------------------------------------- boot

    def _boot(self) -> None:
        """Load persisted modules, warm the code cache, commit boot state.

        Building the :class:`TycoonSystem` stores the stdlib's PTML into
        the image (dirty objects), so a fresh image gets one boot commit
        establishing the baseline.
        """
        loaded = []
        for root in self.heap.root_names():
            if not root.startswith("module:"):
                continue
            name = root[len("module:"):]
            if name in STDLIB_MODULE_NAMES:
                continue
            try:
                self.system.load(name)
                loaded.append(name)
            except (TLError, HeapError) as exc:
                print(f"repro-server: skipping module {name!r}: {exc}", file=sys.stderr)
        warm = self.code_cache.attach(self.heap)
        self.heap.commit()
        TRACER.event(
            "server.boot", modules=loaded, warm_code_entries=warm,
            roots=len(self.heap.root_names()),
        )

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Bind, listen and serve in background threads; returns at once."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(64)
        self.pool.start()
        if self.pgo_worker is not None:
            self.pgo_worker.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully stopped."""
        return self._stopped.wait(timeout)

    def initiate_shutdown(self) -> None:
        """Trigger :meth:`stop` without blocking (signal-handler safe).

        New requests are refused with the structured ``shutting_down``
        error immediately; the actual drain runs on a background thread so
        a SIGTERM handler (or a request handler) never joins itself.
        """
        self._stopping.set()
        threading.Thread(target=self.stop, name="repro-server-stop", daemon=True).start()

    def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, close sessions and heap.

        Order matters: refuse new work first, let already-admitted requests
        finish (bounded wait per session), abort transactions left open,
        then flush and close the image — so SIGTERM never tears a commit.
        """
        self._stopping.set()
        if not self._stop_once.acquire(blocking=False):
            self._stopped.wait(30)  # someone else is tearing down
            return
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept() (close() alone
            # leaves it — and the kernel listen socket — alive, keeping the
            # port bound after "stop")
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        self.pool.stop(drain=True)
        if self.pgo_worker is not None:
            self.pgo_worker.stop()
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        # drain: an in-flight handler holds session.lock; wait (bounded) for
        # it to answer before the socket goes away
        for session in sessions:
            if session.lock.acquire(timeout=5):
                session.lock.release()
        for session in sessions:
            if session.txn is not None:
                _DRAIN_ABORTS.inc()
            self._release_session(session)
        with self.txns.write():
            self.code_cache.flush(self.heap)
        self.heap.close()
        TRACER.event("server.stop")
        self._stopped.set()

    # ---------------------------------------------------------- connections

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            with self._sessions_lock:
                session = Session(self._next_session, sock, addr)
                self._next_session += 1
                self._sessions[session.id] = session
            _SESSIONS_OPENED.inc()
            _ACTIVE_SESSIONS.set(len(self._sessions))
            TRACER.event("server.session.open", session=session.id)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(session,),
                name=f"repro-session-{session.id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, session: Session) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    request = recv_frame(session.sock, self.config.max_frame)
                except protocol.ProtocolError:
                    break
                except OSError:
                    break
                if request is None:
                    break
                self._admit(session, request)
        finally:
            self._release_session(session)

    def _admit(self, session: Session, request: dict) -> None:
        """Admission control: pooled execution or immediate backpressure.

        Two execution lanes prevent a pool deadlock: ``begin`` (which may
        block indefinitely on the transaction lock) and every request of a
        session *holding* a transaction run directly on the session's own
        connection thread — a blocked transaction only ever blocks its own
        session, and the lock holder never needs a pool worker to reach its
        ``commit``.  Stateless requests go through the bounded pool and get
        the structured ``backpressure`` rejection when it is full.
        """
        _REQUESTS.inc()
        request_id = request.get("id")
        if self._stopping.is_set():
            self._send_error(
                session, request_id,
                RequestError(protocol.E_SHUTTING_DOWN, "server is shutting down"),
            )
            return
        if request.get("op") == "begin" or session.txn is not None:
            self._handle(session, request)
            return
        try:
            self.pool.submit(lambda: self._handle(session, request))
        except Backpressure as exc:
            self._send_error(
                session, request_id,
                RequestError(
                    protocol.E_BACKPRESSURE, str(exc), queue_size=exc.queue_size
                ),
            )

    def _release_session(self, session: Session) -> None:
        if session.txn is not None:
            try:
                session.txn.abort()
            finally:
                session.txn = None
        session.close()
        with self._sessions_lock:
            if self._sessions.pop(session.id, None) is not None:
                _ACTIVE_SESSIONS.set(len(self._sessions))
                TRACER.event("server.session.close", session=session.id)

    # ------------------------------------------------------------- handling

    def _handle(self, session: Session, request: dict) -> None:
        request_id = request.get("id")
        op = request.get("op")
        start = time.perf_counter()
        span = TRACER.span("server.request", session=session.id, op=op)
        try:
            with session.lock:
                handler = self._OPS.get(op)
                if handler is None:
                    raise RequestError(protocol.E_BAD_REQUEST, f"unknown op {op!r}")
                result = handler(self, session, request)
            session.send({"id": request_id, "ok": True, "result": result})
            span.set(status="ok")
        except RequestError as exc:
            span.set(status=exc.code)
            self._send_error(session, request_id, exc)
        except Exception as exc:  # anything else is an internal error
            traceback.print_exc(file=sys.stderr)
            span.set(status="internal")
            self._send_error(
                session, request_id,
                RequestError(protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
        finally:
            span.finish()
            _LATENCY.observe(int((time.perf_counter() - start) * 1e6))

    def _send_error(self, session: Session, request_id, error: RequestError) -> None:
        _REQUEST_ERRORS.inc()
        payload = {"code": error.code, "message": str(error)}
        payload.update(error.details)
        try:
            session.send({"id": request_id, "ok": False, "error": payload})
        except OSError:
            pass  # peer is gone; nothing to report to

    # ----------------------------------------------------- transaction glue

    def _run_read(self, session: Session, body):
        """Run ``body()`` under the session's txn or an implicit read txn."""
        if session.txn is not None:
            return body()
        try:
            with self.txns.read():
                return body()
        except LockTimeout as exc:
            raise RequestError(protocol.E_BUSY, str(exc)) from exc

    def _run_write(self, session: Session, body):
        """Run ``body()`` under the session's write txn or auto-commit."""
        if session.txn is not None:
            if session.txn.mode != "write":
                raise RequestError(
                    protocol.E_TXN_STATE,
                    "mutating request inside a read transaction",
                )
            return body()
        try:
            with self.txns.write():
                return body()
        except LockTimeout as exc:
            raise RequestError(protocol.E_BUSY, str(exc)) from exc

    # ------------------------------------------------------------ execution

    def _resolve(self, module: str, function: str):
        """Resolve a stored function through the compiled-code cache.

        Returns ``(closure, hit)``; a miss links through the system and
        installs the closure under its PTML content hash.
        """
        qualified = f"{module}.{function}"
        with self._keys_lock:
            key = self._keys.get(qualified)
        if key is not None:
            closure = self.code_cache.lookup(key)
            if closure is not None:
                return closure, True
        try:
            closure = self.system.closure(module, function)
        except TLError as exc:
            raise RequestError(protocol.E_NOT_FOUND, str(exc)) from exc
        key = self.code_cache.key_of(closure.code, self.heap)
        if key is None:
            key = f"name:{qualified}"  # PTML-less code: name-keyed fallback
        self.code_cache.install(key, closure)
        with self._keys_lock:
            self._keys[qualified] = key
        return closure, False

    def invalidate_function(self, module: str, function: str) -> None:
        """Drop the cache entry for a rewritten function (PGO/recompile)."""
        qualified = f"{module}.{function}"
        with self._keys_lock:
            key = self._keys.pop(qualified, None)
        if key is not None:
            self.code_cache.invalidate(key)

    def take_profile(self) -> VMProfiler:
        """Hand the aggregated profile to the caller, starting a fresh one."""
        with self._profile_lock:
            profile = self._profile
            self._profile = VMProfiler()
        return profile

    def _merge_profile(self, profiler: VMProfiler) -> None:
        with self._profile_lock:
            self._profile.merge(profiler)

    def _execute(self, closure, args, step_limit: int | None):
        limit = self.config.step_limit
        if step_limit is not None:
            limit = max(1, min(int(step_limit), limit))
        profiler = VMProfiler() if self.config.profile else None
        vm = VM(
            store=self.heap,
            foreign=self.system.foreign,
            step_limit=limit,
            profiler=profiler,
        )
        try:
            result = vm.call(closure, list(args))
        except StepLimitExceeded as exc:
            if profiler is not None:
                self._merge_profile(profiler)  # truncated runs are evidence too
            raise RequestError(
                protocol.E_STEP_LIMIT,
                str(exc),
                limit=exc.limit,
                instructions=exc.instructions,
                output=list(exc.partial.output) if exc.partial else [],
            ) from exc
        except UncaughtTmlException as exc:
            raise RequestError(
                protocol.E_EXEC, f"uncaught exception: {show_value(exc.value)}"
            ) from exc
        except MachineError as exc:
            raise RequestError(protocol.E_EXEC, str(exc)) from exc
        if profiler is not None:
            self._merge_profile(profiler)
        return result

    # ------------------------------------------------------------- operators

    def _op_ping(self, session, request):
        """Liveness + identity: protocol, drain status, image facts, uptime."""
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "session": session.id,
            "status": "draining" if self._stopping.is_set() else "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "image": self.heap.image_info(),
        }

    def _op_call(self, session, request):
        module = request.get("module")
        function = request.get("function")
        if not module or not function:
            raise RequestError(protocol.E_BAD_REQUEST, "call needs module and function")
        args = [from_jsonable(a) for a in request.get("args", [])]
        step_limit = request.get("step_limit")
        mode = request.get("mode", "read")

        def body():
            closure, hit = self._resolve(module, function)
            result = self._execute(closure, args, step_limit)
            return {
                "value": to_jsonable(result.value),
                "instructions": result.instructions,
                "output": list(result.output),
                "cache": "hit" if hit else "miss",
            }

        if mode == "write":
            return self._run_write(session, body)
        return self._run_read(session, body)

    def _op_run(self, session, request):
        source = request.get("source")
        if not isinstance(source, str):
            raise RequestError(protocol.E_BAD_REQUEST, "run needs TL source text")

        def body():
            try:
                modules = [
                    self.system.compile_ast(ast) for ast in parse_modules(source)
                ]
            except TLError as exc:
                raise RequestError(protocol.E_BAD_REQUEST, str(exc)) from exc
            names = []
            for module in modules:
                self.system.persist(module.name)
                names.append(module.name)
                for function in module.functions:
                    self.invalidate_function(module.name, function)
            return {"modules": names}

        return self._run_write(session, body)

    def _op_get(self, session, request):
        roots = request.get("roots")
        if not isinstance(roots, list) or not roots:
            raise RequestError(protocol.E_BAD_REQUEST, "get needs a list of roots")

        def body():
            values = {}
            for name in roots:
                try:
                    values[name] = to_jsonable(self.heap.load_root(name))
                except HeapError as exc:
                    raise RequestError(protocol.E_NOT_FOUND, str(exc)) from exc
            return {"values": values, "version": self.txns.version}

        return self._run_read(session, body)

    def _op_set(self, session, request):
        root = request.get("root")
        if not isinstance(root, str):
            raise RequestError(protocol.E_BAD_REQUEST, "set needs a root name")
        value = from_jsonable(request.get("value"))

        def body():
            oid = self.heap.root(root)
            # update(oid, None) means "mark dirty", so binding a root to the
            # null value always goes through a fresh store + rebind
            if oid is None or value is None:
                oid = self.heap.store(value)
                self.heap.set_root(root, oid)
            else:
                self.heap.update(oid, value)
            return {"root": root, "oid": int(oid)}

        return self._run_write(session, body)

    def _op_roots(self, session, request):
        def body():
            return {"roots": self.heap.root_names(), "version": self.txns.version}

        return self._run_read(session, body)

    def _op_begin(self, session, request):
        if session.txn is not None:
            raise RequestError(protocol.E_TXN_STATE, "session already has a transaction")
        mode = request.get("mode", "write")
        if mode not in ("read", "write"):
            raise RequestError(protocol.E_BAD_REQUEST, f"unknown txn mode {mode!r}")
        try:
            session.txn = self.txns.begin(mode, timeout=request.get("timeout"))
        except LockTimeout as exc:
            raise RequestError(protocol.E_BUSY, str(exc)) from exc
        return {"mode": mode, "version": session.txn.version}

    def _op_commit(self, session, request):
        if session.txn is None:
            raise RequestError(protocol.E_TXN_STATE, "no open transaction")
        txn, session.txn = session.txn, None
        try:
            txn.commit()
        except HeapError as exc:
            raise RequestError(protocol.E_EXEC, f"commit failed: {exc}") from exc
        return {"version": self.txns.version}

    def _op_abort(self, session, request):
        if session.txn is None:
            raise RequestError(protocol.E_TXN_STATE, "no open transaction")
        txn, session.txn = session.txn, None
        txn.abort()
        return {"version": self.txns.version}

    def _op_stats(self, session, request):
        with self._sessions_lock:
            active = len(self._sessions)
        report = {
            "sessions": active,
            "version": self.txns.version,
            "codecache": self.code_cache.stats(),
            "roots": len(self.heap.root_names()),
        }
        if self.pgo_worker is not None:
            report["pgo"] = self.pgo_worker.stats()
        if request.get("metrics"):
            report["metrics"] = METRICS.snapshot()
        return report

    def _op_pgo(self, session, request):
        """Run one PGO round now (admin/diagnostic; tests and smoke use it)."""
        worker = self.pgo_worker
        if worker is None:
            worker = PgoWorker(
                self,
                interval=None,
                top=self.config.pgo_top,
                min_instructions=self.config.pgo_min_instructions,
            )
        report = worker.run_round(top=request.get("top"), min_instructions=0)
        if report is None:
            return {"optimized": []}
        return {
            "optimized": [
                {
                    "function": candidate.qualified,
                    "invocations": candidate.invocations,
                    "instructions": candidate.instructions,
                    "cost_before": report.results[candidate.qualified].cost_before,
                    "cost_after": report.results[candidate.qualified].cost_after,
                }
                for candidate in report.selected
            ]
        }

    def _op_sleep(self, session, request):
        if not self.config.enable_debug_ops:
            raise RequestError(protocol.E_BAD_REQUEST, "debug ops are disabled")
        seconds = float(request.get("seconds", 0.1))
        time.sleep(min(seconds, 30.0))
        return {"slept": seconds}

    def _op_shutdown(self, session, request):
        # respond first, then stop from a separate thread so the worker
        # executing this request is not asked to join itself
        threading.Thread(target=self.stop, name="repro-server-stop", daemon=True).start()
        return {"stopping": True}

    _OPS = {
        "ping": _op_ping,
        "call": _op_call,
        "run": _op_run,
        "get": _op_get,
        "set": _op_set,
        "roots": _op_roots,
        "begin": _op_begin,
        "commit": _op_commit,
        "abort": _op_abort,
        "stats": _op_stats,
        "pgo": _op_pgo,
        "sleep": _op_sleep,
        "shutdown": _op_shutdown,
    }
