"""Blocking client for the repro daemon — with optional self-healing.

One :class:`Client` is one session: a TCP connection speaking the
length-prefixed JSON protocol of :mod:`repro.server.protocol`, requests
issued strictly one at a time (the daemon still interleaves *sessions*
concurrently).  Failures come back typed, so callers branch on the
exception class (or ``exc.code``) rather than parsing messages:

* :class:`BusyError`, :class:`BackpressureError`,
  :class:`ShuttingDownError` — the daemon *rejected* the request before
  executing it.  Rejections are side-effect free, so they are safe to
  retry for any operation;
* :class:`ServerError` — every other structured failure (the request may
  have executed);
* :class:`ConnectionLost` — the TCP session died mid-request.  Only
  *idempotent* requests (``ping``, ``get``, ``roots``, ``stats``,
  read-mode ``call``) are safe to replay, because a mutating request may
  have committed before the response was lost.

Pass a :class:`RetryPolicy` to opt into automatic recovery: rejected
requests are retried with exponential backoff + jitter, and idempotent
requests transparently *reconnect* and retry when the connection drops —
which is exactly what surviving a daemon SIGTERM + restart takes.  Retries
never happen inside an explicit transaction (the server aborts a
disconnected session's transaction, so replaying mid-transaction requests
would silently drop the transaction's earlier effects).  The default
(``retry=None``) keeps the historical fail-fast behavior.

Every request issued through the public operations carries a trace stamp
(``trace_sample`` governs how often a new trace is rooted; requests made
inside an active :data:`repro.obs.trace.TRACER` context always join it),
so the daemon's server span — and, through the replication stream, the
replica's apply span — share the client's trace id.  The stamp is pinned
before the retry loop: retries and :class:`ClusterClient` failover reuse
one trace id per logical operation.

>>> with connect(port, retry=RetryPolicy()) as db:   # doctest: +SKIP
...     db.set("counter", 0)
...     with db.transaction():
...         value = db.get("counter")["counter"]
...         db.set("counter", value + 1)
...     db.call("bench", "fib", [20])
"""

from __future__ import annotations

import random
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER, new_span_id, new_trace_id
from repro.server import protocol
from repro.server.protocol import from_jsonable, recv_frame, send_frame, to_jsonable
from repro.server.sharding.ring import RingError, ShardTopology, is_system_root

__all__ = [
    "Client",
    "ClusterClient",
    "ClientError",
    "ConnectionLost",
    "ServerError",
    "BusyError",
    "BackpressureError",
    "ShuttingDownError",
    "NotPrimaryError",
    "StaleReadError",
    "DeadlineExceeded",
    "ReplicationTimeoutError",
    "WrongShardError",
    "TwopcAbortedError",
    "ReadOnlyError",
    "OverloadedError",
    "NoPrimaryError",
    "RetryPolicy",
    "connect",
]

_RETRIES = METRICS.counter(
    "server.client.retries", "requests retried after a rejection or disconnect"
)
_RECONNECTS = METRICS.counter(
    "server.client.reconnects", "TCP sessions re-established by the retry layer"
)
_GAVE_UP = METRICS.counter(
    "server.client.gave_up", "requests that exhausted their retry budget"
)

#: requests with no server-side effects: safe to replay even when the
#: connection died mid-request and the first attempt's fate is unknown
IDEMPOTENT_OPS = frozenset({"ping", "get", "roots", "stats", "slowlog", "repl.status"})


class ClientError(Exception):
    """Client-side failure: connection lost, protocol violation."""


class ConnectionLost(ClientError):
    """The TCP session died; whether the request executed is unknown."""


class ServerError(Exception):
    """The daemon answered with a structured error."""

    #: True when the daemon rejected the request *before* executing it
    #: (admission control), making a retry side-effect free
    retryable = False

    def __init__(self, code: str, message: str, details: dict | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class BusyError(ServerError):
    """Rejected: the transaction lock could not be acquired in time."""

    retryable = True


class BackpressureError(ServerError):
    """Rejected: the worker pool's bounded queue is full."""

    retryable = True


class ShuttingDownError(ServerError):
    """Rejected: the daemon is draining for shutdown."""

    retryable = True


class NotPrimaryError(ServerError):
    """A mutating request reached a replica; details may name the primary."""


class StaleReadError(ServerError):
    """A bounded-staleness read's ``min_version`` is ahead of this replica."""


class DeadlineExceeded(ServerError):
    """The request's time budget ran out (client- or server-side)."""


class ReplicationTimeoutError(ServerError):
    """The write committed locally but the replica quorum did not ack in
    time — ``details["committed"]`` is True; the data is durable on the
    primary and will reach replicas when they catch up."""


class WrongShardError(ServerError):
    """The root hashes to another shard group; ``details`` carry the
    owning ``shard`` id and its ``endpoints`` — a ring-aware client
    follows the hint (see :meth:`ClusterClient.use_topology`)."""


class TwopcAbortedError(ServerError):
    """A cross-shard write's two-phase commit could not reach its commit
    point; the transaction is rolled back on every participant, so the
    operation may be retried as a whole."""


class ReadOnlyError(ServerError):
    """The daemon is in degraded read-only mode after a disk-level failure
    (or a manual ``--read-only`` override).  Not retryable against the
    same endpoint — the mode persists until the recovery probe clears it;
    ``details`` carry ``reason``, ``since`` and a ``retry_after`` hint.
    A :class:`ClusterClient` fails writes over instead of retrying."""


class OverloadedError(ServerError):
    """Rejected: the request aged out in the admission queue before a
    worker picked it up.  Distinct from :class:`BackpressureError` (queue
    full on arrival); both mean "the server is behind".  Retryable —
    ``details["retry_after"]`` is the server's backoff hint, which the
    retry layer honors as a minimum pause."""

    retryable = True


class NoPrimaryError(ClientError):
    """No endpoint of the cluster currently reports the primary role."""


_ERROR_TYPES: dict[str, type[ServerError]] = {
    protocol.E_BUSY: BusyError,
    protocol.E_BACKPRESSURE: BackpressureError,
    protocol.E_SHUTTING_DOWN: ShuttingDownError,
    protocol.E_NOT_PRIMARY: NotPrimaryError,
    protocol.E_STALE_READ: StaleReadError,
    protocol.E_DEADLINE: DeadlineExceeded,
    protocol.E_REPL_TIMEOUT: ReplicationTimeoutError,
    protocol.E_WRONG_SHARD: WrongShardError,
    protocol.E_TWOPC: TwopcAbortedError,
    protocol.E_READ_ONLY: ReadOnlyError,
    protocol.E_OVERLOADED: OverloadedError,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter (AWS-style).

    Attempt *n* (1-based retries) sleeps
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a random
    factor in ``[1 - jitter, 1]`` — jitter keeps a thundering herd of
    clients from re-arriving in lockstep after a restart.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    #: also retry the initial TCP connect (daemon not yet listening)
    retry_connect: bool = True
    #: jitter source — inject a seeded ``random.Random`` for reproducible
    #: backoff sequences in tests; None uses the module-level RNG
    rng: random.Random | None = None

    def delay(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1))
        return raw * (1.0 - self.jitter * (self.rng or random).random())


class Client:
    """One session against a running repro daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
        trace_sample: float = 1.0,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry
        #: default per-request time budget in seconds; each request carries
        #: its *remaining* budget so the daemon can bound lock waits and
        #: step counts to it (``deadline_exceeded`` when it runs out)
        self.deadline = deadline
        #: probability a request *outside* any active trace roots a new
        #: one (stamps ``trace`` on the wire); requests inside an active
        #: context always join it — the upstream decision sticks
        self.trace_sample = trace_sample
        # a seeded RetryPolicy RNG makes the *whole* client deterministic:
        # sampling decisions must draw from the same source as backoff
        # jitter, or chaos-sim runs diverge despite the seed
        self._trace_rng = (
            retry.rng
            if retry is not None and retry.rng is not None
            else random.Random()
        )
        self.sock: socket.socket | None = None
        self._next_id = 1
        self._closed = False
        self._in_txn = False
        self._connect(initial=True)

    # ----------------------------------------------------------- transport

    def _connect(self, initial: bool = False) -> None:
        attempts = 0
        while True:
            try:
                self.sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                if not initial:
                    _RECONNECTS.inc()
                return
            except OSError as exc:
                self.sock = None
                attempts += 1
                policy = self.retry
                if (
                    policy is None
                    or not policy.retry_connect
                    or attempts >= policy.max_attempts
                ):
                    raise ConnectionLost(
                        f"cannot connect to {self._host}:{self._port}: {exc}"
                    ) from exc
                time.sleep(policy.delay(attempts))

    def _drop_socket(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def request(self, op: str, **operands) -> dict:
        """Send one request and block for its response's ``result``.

        Single-shot: raises the typed error on failure.  The retrying
        public operations go through :meth:`_invoke`.
        """
        if self._closed:
            raise ClientError("client is closed")
        if self.sock is None:
            self._connect()
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        message.update(operands)
        try:
            send_frame(self.sock, message)
            response = recv_frame(self.sock)
        except (OSError, protocol.ProtocolError) as exc:
            self._drop_socket()
            raise ConnectionLost(f"connection failed during {op!r}: {exc}") from exc
        if response is None:
            self._drop_socket()
            raise ConnectionLost(f"server closed the connection during {op!r}")
        if response.get("id") != request_id:
            raise ClientError(
                f"response id {response.get('id')!r} does not match {request_id}"
            )
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        details = {
            k: v for k, v in error.items() if k not in ("code", "message")
        }
        code = error.get("code", protocol.E_INTERNAL)
        raise _ERROR_TYPES.get(code, ServerError)(
            code, error.get("message", "unknown server error"), details
        )

    def _trace_roll(self) -> bool:
        rate = self.trace_sample
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._trace_rng.random() < rate

    def _trace_stamp(self, op: str):
        """Trace stamp for one logical operation — ``(wire dict, span)``.

        A request inside an active trace context always joins it (the
        upstream sampling decision sticks); outside any context the
        client rolls its own ``trace_sample`` to root a new trace.  A
        real ``client.request`` span is opened only when a recorder is
        attached locally; without one the stamp is bare ids — which is
        all a daemon-side recorder needs to trace the server half.
        """
        ctx = TRACER.current()
        if ctx is None and not self._trace_roll():
            return None, None
        if TRACER.enabled:
            span = TRACER.span(
                "client.request", op=op, host=self._host, port=self._port
            )
            return {"trace_id": span.trace_id, "span_id": span.span_id}, span
        if ctx is not None:
            trace_id, span_id, _parent = ctx.child_ids()
        else:
            trace_id, span_id = new_trace_id(), new_span_id()
        return {"trace_id": trace_id, "span_id": span_id}, None

    def _invoke(self, op: str, idempotent: bool | None = None, **operands) -> dict:
        """Issue a request under the retry policy (see module docstring).

        When a deadline is configured (per-call ``deadline=`` operand or
        the client-wide default) it is pinned when the request *starts*:
        every attempt ships the remaining seconds, and both local waits
        and retries stop once the budget is spent.  The trace stamp is
        likewise pinned up front, so every retry — and, via
        :class:`ClusterClient`, every failover attempt — carries the
        same trace id.
        """
        if idempotent is None:
            idempotent = op in IDEMPOTENT_OPS
        stamp, span = self._trace_stamp(op)
        if stamp is not None:
            operands["trace"] = stamp
        deadline = operands.pop("deadline", self.deadline)
        deadline_at = None if deadline is None else time.monotonic() + float(deadline)
        policy = self.retry
        retries = 0
        try:
            while True:
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            protocol.E_DEADLINE,
                            f"deadline of {deadline}s expired before {op!r} completed",
                        )
                    operands["deadline"] = round(remaining, 6)
                try:
                    result = self.request(op, **operands)
                    if span is not None:
                        span.set(status="ok")
                    return result
                except (ServerError, ConnectionLost) as exc:
                    if span is not None:
                        span.set(
                            status=exc.code
                            if isinstance(exc, ServerError)
                            else "connection_lost"
                        )
                    if policy is None or self._in_txn:
                        raise
                    if isinstance(exc, ServerError):
                        can_retry = exc.retryable  # rejected, never executed
                    else:
                        # the request may have executed before the link died:
                        # only replay requests with no server-side effects
                        can_retry = idempotent
                    retries += 1
                    if not can_retry or retries >= policy.max_attempts:
                        _GAVE_UP.inc()
                        raise
                    pause = policy.delay(retries)
                    if isinstance(exc, ServerError):
                        # an overloaded/degraded server sends retry_after:
                        # re-arriving sooner only feeds the overload, so
                        # the hint is a floor under the jittered backoff
                        hint = exc.details.get("retry_after")
                        if hint is not None:
                            try:
                                pause = max(pause, float(hint))
                            except (TypeError, ValueError):
                                pass
                    if deadline_at is not None:
                        budget = deadline_at - time.monotonic()
                        if budget <= 0:
                            raise DeadlineExceeded(
                                protocol.E_DEADLINE,
                                f"deadline of {deadline}s expired while retrying {op!r}",
                            ) from exc
                        pause = min(pause, budget)
                    _RETRIES.inc()
                    time.sleep(pause)
        finally:
            if span is not None:
                if retries:
                    span.set(retries=retries)
                span.finish()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._drop_socket()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ---------------------------------------------------------- operations

    def ping(self) -> dict:
        return self._invoke("ping")

    def call(
        self,
        module: str,
        function: str,
        args: list | None = None,
        step_limit: int | None = None,
        mode: str = "read",
        full: bool = False,
        deadline: float | None = None,
    ) -> Any:
        """Call a stored function; returns its value (or the full result)."""
        operands: dict[str, Any] = {
            "module": module,
            "function": function,
            "args": [to_jsonable(a) for a in (args or [])],
            "mode": mode,
        }
        if step_limit is not None:
            operands["step_limit"] = step_limit
        if deadline is not None:
            operands["deadline"] = deadline
        # a read-mode call has no server-side effects, so it is replayable
        result = self._invoke("call", idempotent=(mode == "read"), **operands)
        if full:
            result = dict(result)
            result["value"] = from_jsonable(result["value"])
            return result
        return from_jsonable(result["value"])

    def run(self, source: str) -> list[str]:
        """Compile and persist TL source; returns the stored module names."""
        return self._invoke("run", source=source)["modules"]

    def get(
        self,
        *roots: str,
        min_version: int | None = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Read root objects in one snapshot; name → value.

        ``min_version`` bounds staleness on a replica: the read fails with
        :class:`StaleReadError` unless the replica has applied at least
        that replication version.
        """
        operands: dict[str, Any] = {"roots": list(roots)}
        if min_version is not None:
            operands["min_version"] = min_version
        if deadline is not None:
            operands["deadline"] = deadline
        result = self._invoke("get", **operands)
        return {name: from_jsonable(v) for name, v in result["values"].items()}

    def set(self, root: str, value: Any, deadline: float | None = None) -> dict:
        """Bind a root to a value (auto-commits outside a transaction).

        Returns the full result dict — ``oid`` plus, on a replicated
        primary, the ``repl_version`` the commit produced.
        """
        operands: dict[str, Any] = {"root": root, "value": to_jsonable(value)}
        if deadline is not None:
            operands["deadline"] = deadline
        return self._invoke("set", **operands)

    def roots(self) -> list[str]:
        return self._invoke("roots")["roots"]

    def mset(self, writes: dict[str, Any], deadline: float | None = None) -> dict:
        """Bind several roots in one atomic commit.

        Against a plain daemon all roots must live there; against a
        coordinator the roots may span shards — the coordinator runs the
        write as a two-phase commit and a success response means every
        shard applied it (:class:`TwopcAbortedError` means none did).
        """
        operands: dict[str, Any] = {
            "writes": {str(root): to_jsonable(v) for root, v in writes.items()}
        }
        if deadline is not None:
            operands["deadline"] = deadline
        return self._invoke("mset", **operands)

    def query(
        self,
        prefix: str = "",
        module: str | None = None,
        function: str | None = None,
        min_version: int | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Prefix-scan the daemon's owned roots; optionally fold the
        matching values through a stored function (shard-local half of
        scatter-gather).  Read-only, hence replayable."""
        operands: dict[str, Any] = {"prefix": prefix}
        if module is not None and function is not None:
            operands["module"] = module
            operands["function"] = function
        if min_version is not None:
            operands["min_version"] = min_version
        if deadline is not None:
            operands["deadline"] = deadline
        result = self._invoke("query", idempotent=True, **operands)
        if "values" in result:
            result = dict(result)
            result["values"] = {
                name: from_jsonable(v) for name, v in result["values"].items()
            }
        elif "value" in result:
            result = dict(result)
            result["value"] = from_jsonable(result["value"])
        return result

    def scatter(
        self,
        prefix: str = "",
        module: str | None = None,
        function: str | None = None,
        merge: str = "concat",
        deadline: float | None = None,
    ) -> dict:
        """Coordinator-side scatter-gather: fan a query out to every shard
        and merge (``concat`` | ``sum`` | ``values``)."""
        operands: dict[str, Any] = {"prefix": prefix, "merge": merge}
        if module is not None and function is not None:
            operands["module"] = module
            operands["function"] = function
        if deadline is not None:
            operands["deadline"] = deadline
        result = self._invoke("scatter", idempotent=True, **operands)
        result = dict(result)
        if "values" in result:
            result["values"] = {
                name: from_jsonable(v) for name, v in result["values"].items()
            }
        if "value" in result:
            result["value"] = from_jsonable(result["value"])
        if "partials" in result:
            result["partials"] = [
                {**p, "value": from_jsonable(p.get("value"))}
                for p in result["partials"]
            ]
        return result

    def topology(self) -> dict:
        """The shard topology this daemon operates under (wire form)."""
        return self._invoke("topology", idempotent=True)

    def begin(self, mode: str = "write", timeout: float | None = None) -> dict:
        operands: dict[str, Any] = {"mode": mode}
        if timeout is not None:
            operands["timeout"] = timeout
        result = self._invoke("begin", **operands)
        self._in_txn = True
        return result

    def commit(self) -> dict:
        try:
            return self.request("commit")
        finally:
            self._in_txn = False

    def abort(self) -> dict:
        try:
            return self.request("abort")
        finally:
            self._in_txn = False

    @contextmanager
    def transaction(self, mode: str = "write", timeout: float | None = None):
        """``with db.transaction(): ...`` — commit on success, abort on error."""
        self.begin(mode, timeout)
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def stats(self, metrics: bool = False, history: int | bool | None = None) -> dict:
        """Live introspection snapshot (see the daemon's ``stats`` op).

        ``history`` asks for the in-image metrics-history ring as well:
        True for all kept entries, an int for the most recent N.
        """
        operands: dict[str, Any] = {"metrics": metrics}
        if history is not None:
            operands["history"] = history
        return self._invoke("stats", **operands)

    def slowlog(self, n: int | None = None, clear: bool = False) -> dict:
        """The daemon's ring of slowest requests, slowest first."""
        operands: dict[str, Any] = {}
        if n is not None:
            operands["n"] = n
        if clear:
            operands["clear"] = True
        return self._invoke("slowlog", **operands)

    def trace_ctl(
        self,
        action: str = "status",
        path: str | None = None,
        rate: float | None = None,
    ) -> dict:
        """Control the daemon's NDJSON trace export at runtime.

        ``trace_ctl("start", path=...)`` attaches a recorder writing to a
        *server-side* path, ``trace_ctl("stop")`` detaches it,
        ``trace_ctl("sample", rate=0.1)`` adjusts root sampling, and the
        default ``status`` just reports.
        """
        operands: dict[str, Any] = {"action": action}
        if path is not None:
            operands["path"] = path
        if rate is not None:
            operands["rate"] = rate
        return self._invoke("trace", idempotent=(action == "status"), **operands)

    def pgo(self, top: int | None = None) -> dict:
        """Ask the server to run one PGO round right now."""
        operands = {} if top is None else {"top": top}
        return self._invoke("pgo", **operands)

    def repl_status(self, digest: bool = False) -> dict:
        """Replication role, term, version (and optionally a state digest)."""
        return self._invoke("repl.status", digest=digest)

    def promote(self, term: int | None = None) -> dict:
        """Promote this node to primary (fencing term bumps past any seen)."""
        operands = {} if term is None else {"term": term}
        return self.request("promote", **operands)

    def follow(self, host: str, port: int) -> dict:
        """Re-point this node at a (new) upstream primary."""
        return self.request("follow", host=host, port=port)

    def shutdown(self) -> dict:
        return self.request("shutdown")


class ClusterClient:
    """Failover-aware facade over a replicated cluster's endpoints.

    Routing rules:

    * **writes** go to whichever endpoint currently reports the ``primary``
      role.  :class:`ConnectionLost`, :class:`NotPrimaryError` and
      :class:`ShuttingDownError` trigger rediscovery under the retry
      policy — a ``not_primary`` rejection that names the new primary is
      followed directly, anything else re-pings every endpoint and picks
      the primary with the highest term.  Replayed writes may execute
      twice when the first attempt's ack was lost; root binds are
      value-idempotent, so the state converges to the same image.
    * **reads** round-robin across replicas with *bounded staleness*: each
      read carries a ``min_version`` floor (default: the ``repl_version``
      of this client's last write — read-your-writes), and a replica that
      has not caught up answers ``stale_read``, upon which the next
      candidate (ultimately the primary) is tried.

    The facade holds one lazily (re)connected :class:`Client` per
    endpoint; it is not thread-safe — use one per worker thread.
    """

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
        trace_sample: float = 1.0,
        topology: dict | ShardTopology | None = None,
    ):
        if not endpoints:
            raise ValueError("ClusterClient needs at least one endpoint")
        self.endpoints: list[tuple[str, int]] = [
            (str(h), int(p)) for h, p in endpoints
        ]
        self._timeout = timeout
        self.retry = retry or RetryPolicy()
        self.deadline = deadline
        #: the facade makes the sampling decision once per *logical*
        #: operation and activates the resulting context around routing,
        #: so retries and failover reuse one trace id; the per-endpoint
        #: clients are built with ``trace_sample=0.0`` and never self-root
        self.trace_sample = trace_sample
        # reuse the seeded RetryPolicy RNG (when one is injected) so that
        # rediscovery backoff and trace sampling replay identically under
        # the chaos harness's seed
        self._trace_rng = (
            self.retry.rng if self.retry.rng is not None else random.Random()
        )
        self._clients: dict[tuple[str, int], Client] = {}
        self._primary: tuple[str, int] | None = None
        self._replicas: list[tuple[str, int]] = []
        self._rr = 0
        #: highest repl_version any write through this client produced —
        #: the default min_version floor for reads (read-your-writes)
        self.last_write_version = 0
        self._lock = threading.Lock()
        #: ring-aware mode: when a topology is adopted, sharded roots are
        #: routed directly to their owning shard group through one child
        #: ClusterClient per shard (each child keeps its own
        #: read-your-writes floor); the seed ``endpoints`` then serve as
        #: the coordinator for cross-shard writes and system roots
        self.topology: ShardTopology | None = None
        self._shard_routers: dict[int, "ClusterClient"] = {}
        if topology is not None:
            self.use_topology(topology)

    # ------------------------------------------------------------- topology

    def _client(self, endpoint: tuple[str, int]) -> Client:
        client = self._clients.get(endpoint)
        if client is None or client.sock is None and client._closed:
            client = Client(
                host=endpoint[0],
                port=endpoint[1],
                timeout=self._timeout,
                retry=None,  # the facade owns retries and rerouting
                deadline=self.deadline,
                trace_sample=0.0,  # the facade owns the sampling decision
            )
            self._clients[endpoint] = client
        return client

    def _drop(self, endpoint: tuple[str, int]) -> None:
        client = self._clients.pop(endpoint, None)
        if client is not None:
            client.close()

    # ------------------------------------------------------------- sharding

    def use_topology(self, topology: dict | ShardTopology) -> "ClusterClient":
        """Adopt a shard topology and route ring-aware from now on."""
        if not isinstance(topology, ShardTopology):
            topology = ShardTopology.from_dict(topology)
        with self._lock:
            stale = dict(self._shard_routers)
            self._shard_routers = {}
            self.topology = topology
        for router in stale.values():
            router.close()
        return self

    def discover_topology(self) -> dict | None:
        """Ask the cluster for its topology and adopt it when present."""
        try:
            result = self._on_replica(
                lambda c: c._invoke("topology", idempotent=True)
            )
        except (ClientError, ServerError):
            return None
        wire = result.get("topology")
        if isinstance(wire, dict):
            try:
                self.use_topology(wire)
            except RingError:
                return None
        return wire

    def _shard_of(self, root: str) -> int | None:
        """Owning shard id, or None when the root routes to the seed
        endpoints (no topology adopted, or a system root)."""
        topology = self.topology
        if topology is None or is_system_root(root):
            return None
        return topology.shard_for(root)

    def _shard_router(self, sid: int) -> "ClusterClient":
        with self._lock:
            router = self._shard_routers.get(sid)
        if router is None:
            router = ClusterClient(
                self.topology.endpoints(sid),
                timeout=self._timeout,
                retry=self.retry,  # shares the (possibly seeded) RNG
                deadline=self.deadline,
                trace_sample=0.0,  # the parent owns the sampling decision
            )
            with self._lock:
                self._shard_routers[sid] = router
        return router

    def _follow_wrong_shard(self, exc: WrongShardError, fn):
        """Follow a ``wrong_shard`` hint: rebuild the named shard's router
        from the hinted endpoints, refresh the ring from there, and retry
        the operation once against the right group."""
        sid = exc.details.get("shard")
        hinted = exc.details.get("endpoints")
        if not isinstance(sid, int) or not hinted:
            raise exc
        endpoints = [(str(e["host"]), int(e["port"])) for e in hinted]
        router = ClusterClient(
            endpoints,
            timeout=self._timeout,
            retry=self.retry,
            deadline=self.deadline,
            trace_sample=0.0,
        )
        with self._lock:
            old = self._shard_routers.get(sid)
            self._shard_routers[sid] = router
        if old is not None:
            old.close()
        # the hinted shard knows the (possibly newer) ring we mis-route by
        wire = None
        try:
            wire = router._on_replica(
                lambda c: c._invoke("topology", idempotent=True)
            ).get("topology")
        except (ClientError, ServerError):
            pass
        if isinstance(wire, dict):
            try:
                fresh = ShardTopology.from_dict(wire)
                if self.topology is None or fresh.epoch > self.topology.epoch:
                    with self._lock:
                        self.topology = fresh
            except RingError:
                pass
        return fn(router)

    # ------------------------------------------------------- generic op glue

    def op_primary(self, op: str, idempotent: bool = False, **operands) -> dict:
        """Issue an arbitrary op against the current primary (failover-
        aware); write-producing results feed the read-your-writes floor."""
        result = self._on_primary(
            lambda c: c._invoke(op, idempotent=idempotent, **operands)
        )
        if isinstance(result, dict):
            self._note_write(result)
        return result

    def op_replica(self, op: str, **operands) -> dict:
        """Issue an idempotent op via the replica read path (primary as
        the last resort)."""
        return self._on_replica(lambda c: c._invoke(op, idempotent=True, **operands))

    def discover(self) -> dict:
        """Ping every endpoint; elect the highest-term primary, list replicas.

        A primary that reports itself degraded (read-only after a disk
        failure) is only elected when no healthy primary exists — writes
        should land on a promoted replacement, while a cluster that is
        *entirely* degraded still routes so reads keep working.
        """
        best: tuple[int, tuple[str, int]] | None = None
        best_degraded: tuple[int, tuple[str, int]] | None = None
        replicas: list[tuple[str, int]] = []
        seen: dict[str, dict] = {}
        for endpoint in list(self.endpoints):
            try:
                info = self._client(endpoint).ping()
            except (ClientError, ServerError) as exc:
                self._drop(endpoint)
                seen[f"{endpoint[0]}:{endpoint[1]}"] = {"error": str(exc)}
                continue
            seen[f"{endpoint[0]}:{endpoint[1]}"] = info
            role = info.get("role", "standalone")
            term = int(info.get("term", 0))
            if role == "replica":
                replicas.append(endpoint)
            elif info.get("degraded"):
                if best_degraded is None or term > best_degraded[0]:
                    best_degraded = (term, endpoint)
            elif best is None or term > best[0]:
                best = (term, endpoint)
        if best is None:
            best = best_degraded
        with self._lock:
            self._primary = best[1] if best else None
            self._replicas = replicas
        return seen

    # -------------------------------------------------------------- tracing

    @contextmanager
    def _trace_root(self):
        """One trace context per logical operation, spanning failover.

        Activated *around* the routing loop: every endpoint attempt's
        stamp derives from the same trace id, so a write that retried
        through a failover is still one trace in the NDJSON export.
        Inside an already-active context this is a pass-through.
        """
        if TRACER.current() is not None:
            yield
            return
        rate = self.trace_sample
        sampled = rate >= 1.0 or (rate > 0.0 and self._trace_rng.random() < rate)
        if not sampled:
            yield
            return
        with TRACER.activate(new_trace_id(), new_span_id()):
            yield

    # --------------------------------------------------------------- writes

    def _on_primary(self, fn):
        with self._trace_root():
            return self._route_primary(fn)

    def _route_primary(self, fn):
        last_exc: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            endpoint = self._primary
            if endpoint is None:
                self.discover()
                endpoint = self._primary
            if endpoint is None:
                last_exc = NoPrimaryError(
                    f"no primary among {len(self.endpoints)} endpoints"
                )
            else:
                try:
                    return fn(self._client(endpoint))
                except NotPrimaryError as exc:
                    last_exc = exc
                    self._primary = None
                    hint = exc.details.get("primary")
                    if hint:  # the replica told us who leads now
                        target = (str(hint["host"]), int(hint["port"]))
                        if target not in self.endpoints:
                            self.endpoints.append(target)
                        self._primary = target
                        continue  # no backoff: we were redirected
                except ReadOnlyError as exc:
                    # degraded read-only primary: never retry the write
                    # against the same endpoint — the mode outlives any
                    # backoff.  Keep the TCP client (reads still work
                    # there) but forget the primary role and rediscover:
                    # a promoted replica takes the write.
                    last_exc = exc
                    self._primary = None
                except (ConnectionLost, ShuttingDownError) as exc:
                    last_exc = exc
                    self._drop(endpoint)
                    self._primary = None
            if attempt < self.retry.max_attempts:
                _RETRIES.inc()
                time.sleep(self.retry.delay(attempt))
        _GAVE_UP.inc()
        raise last_exc

    def set(self, root: str, value: Any) -> dict:
        sid = self._shard_of(root)
        if sid is not None:
            # per-shard floor lives on the child router; shard repl
            # versions are not comparable across groups, so the parent's
            # global floor is deliberately left alone here
            router = self._shard_router(sid)
            try:
                return router.set(root, value)
            except WrongShardError as exc:
                return self._follow_wrong_shard(exc, lambda r: r.set(root, value))
        result = self._on_primary(lambda c: c.set(root, value))
        self._note_write(result)
        return result

    def mset(self, writes: dict[str, Any], deadline: float | None = None) -> dict:
        """Atomic multi-root bind.  Single-shard batches go straight to the
        owning group; cross-shard batches (or any batch before a topology
        is adopted) go to the seed endpoints — against a sharded
        deployment those are the coordinator, which runs 2PC."""
        shards = {self._shard_of(root) for root in writes}
        if len(shards) == 1 and None not in shards:
            (sid,) = shards
            router = self._shard_router(sid)
            try:
                return router.mset(writes, deadline=deadline)
            except WrongShardError as exc:
                return self._follow_wrong_shard(
                    exc, lambda r: r.mset(writes, deadline=deadline)
                )
        result = self._on_primary(lambda c: c.mset(writes, deadline=deadline))
        if isinstance(result, dict):
            self._note_write(result)
            self._note_shard_versions(result.get("shards"))
        return result

    def _note_shard_versions(self, shards) -> None:
        """Feed per-shard repl versions from a coordinator 2PC result into
        the child routers' read-your-writes floors."""
        if not isinstance(shards, dict) or self.topology is None:
            return
        for sid, version in shards.items():
            try:
                sid = int(sid)
            except (TypeError, ValueError):
                continue
            if isinstance(version, int) and sid in self.topology.shard_ids():
                router = self._shard_router(sid)
                router.last_write_version = max(router.last_write_version, version)

    def run(self, source: str) -> list[str]:
        return self._on_primary(lambda c: c.run(source))

    def call(
        self,
        module: str,
        function: str,
        args: list | None = None,
        step_limit: int | None = None,
        mode: str = "read",
        full: bool = False,
    ) -> Any:
        if mode == "write":
            result = self._on_primary(
                lambda c: c.call(module, function, args, step_limit, mode, full=True)
            )
            self._note_write(result)
            return result if full else result["value"]
        return self._on_replica(
            lambda c: c.call(module, function, args, step_limit, mode, full)
        )

    def _note_write(self, result: dict) -> None:
        version = result.get("repl_version")
        if isinstance(version, int):
            self.last_write_version = max(self.last_write_version, version)

    # ---------------------------------------------------------------- reads

    def _read_candidates(self) -> list[tuple[str, int]]:
        with self._lock:
            replicas = list(self._replicas)
            primary = self._primary
            if replicas:
                self._rr = (self._rr + 1) % len(replicas)
                replicas = replicas[self._rr :] + replicas[: self._rr]
        if primary is not None:
            replicas.append(primary)  # the primary is never stale
        return replicas

    def _on_replica(self, fn):
        with self._trace_root():
            return self._route_replica(fn)

    def _route_replica(self, fn):
        candidates = self._read_candidates()
        if not candidates:
            self.discover()
            candidates = self._read_candidates()
        last_exc: Exception | None = None
        for endpoint in candidates:
            try:
                return fn(self._client(endpoint))
            except StaleReadError as exc:
                last_exc = exc  # next candidate may have caught up
            except (ConnectionLost, ServerError) as exc:
                last_exc = exc
                self._drop(endpoint)
        # every candidate failed: rediscover once and go through the
        # primary write path, which retries with backoff
        self.discover()
        try:
            return self._on_primary(fn)
        except (ClientError, ServerError):
            raise last_exc if last_exc is not None else NoPrimaryError("no endpoint")

    def get(self, *roots: str, min_version: int | None = None) -> dict[str, Any]:
        if self.topology is not None:
            groups: dict[int | None, list[str]] = {}
            for root in roots:
                groups.setdefault(self._shard_of(root), []).append(root)
            if groups and (len(groups) > 1 or None not in groups):
                out: dict[str, Any] = {}
                for sid, names in groups.items():
                    if sid is None:
                        out.update(self._get_local(names, min_version))
                        continue
                    router = self._shard_router(sid)
                    try:
                        out.update(router.get(*names, min_version=min_version))
                    except WrongShardError as exc:
                        out.update(
                            self._follow_wrong_shard(
                                exc,
                                lambda r, names=names: r.get(
                                    *names, min_version=min_version
                                ),
                            )
                        )
                return out
        return self._get_local(list(roots), min_version)

    def _get_local(
        self, roots: list[str], min_version: int | None
    ) -> dict[str, Any]:
        floor = self.last_write_version if min_version is None else min_version
        return self._on_replica(
            lambda c: c.get(*roots, min_version=floor if floor > 0 else None)
        )

    def scatter(
        self,
        prefix: str = "",
        module: str | None = None,
        function: str | None = None,
        merge: str = "concat",
        deadline: float | None = None,
    ) -> dict:
        """Scatter-gather through the seed endpoints (the coordinator)."""
        return self._on_replica(
            lambda c: c.scatter(
                prefix, module=module, function=function, merge=merge,
                deadline=deadline,
            )
        )

    def topology_info(self) -> dict:
        """The deployment's topology, from whichever endpoint answers."""
        return self._on_replica(lambda c: c.topology())

    # ------------------------------------------------------------ utilities

    def status(self) -> dict:
        """``repl.status`` of every reachable endpoint, keyed by address."""
        out: dict[str, dict] = {}
        for endpoint in list(self.endpoints):
            key = f"{endpoint[0]}:{endpoint[1]}"
            try:
                out[key] = self._client(endpoint).repl_status()
            except (ClientError, ServerError) as exc:
                self._drop(endpoint)
                out[key] = {"error": str(exc)}
        return out

    def promote(self, endpoint: tuple[str, int], term: int | None = None) -> dict:
        """Promote one endpoint to primary and re-route writes to it."""
        endpoint = (str(endpoint[0]), int(endpoint[1]))
        result = self._client(endpoint).promote(term)
        with self._lock:
            self._primary = endpoint
            if endpoint in self._replicas:
                self._replicas.remove(endpoint)
        return result

    def close(self) -> None:
        for endpoint in list(self._clients):
            self._drop(endpoint)
        with self._lock:
            routers = list(self._shard_routers.values())
            self._shard_routers = {}
        for router in routers:
            router.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def connect(
    port: int,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    retry: RetryPolicy | None = None,
    deadline: float | None = None,
) -> Client:
    """Open one session against a daemon listening on ``host:port``."""
    return Client(host=host, port=port, timeout=timeout, retry=retry, deadline=deadline)
