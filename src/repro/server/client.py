"""Blocking client for the repro daemon — with optional self-healing.

One :class:`Client` is one session: a TCP connection speaking the
length-prefixed JSON protocol of :mod:`repro.server.protocol`, requests
issued strictly one at a time (the daemon still interleaves *sessions*
concurrently).  Failures come back typed, so callers branch on the
exception class (or ``exc.code``) rather than parsing messages:

* :class:`BusyError`, :class:`BackpressureError`,
  :class:`ShuttingDownError` — the daemon *rejected* the request before
  executing it.  Rejections are side-effect free, so they are safe to
  retry for any operation;
* :class:`ServerError` — every other structured failure (the request may
  have executed);
* :class:`ConnectionLost` — the TCP session died mid-request.  Only
  *idempotent* requests (``ping``, ``get``, ``roots``, ``stats``,
  read-mode ``call``) are safe to replay, because a mutating request may
  have committed before the response was lost.

Pass a :class:`RetryPolicy` to opt into automatic recovery: rejected
requests are retried with exponential backoff + jitter, and idempotent
requests transparently *reconnect* and retry when the connection drops —
which is exactly what surviving a daemon SIGTERM + restart takes.  Retries
never happen inside an explicit transaction (the server aborts a
disconnected session's transaction, so replaying mid-transaction requests
would silently drop the transaction's earlier effects).  The default
(``retry=None``) keeps the historical fail-fast behavior.

>>> with connect(port, retry=RetryPolicy()) as db:   # doctest: +SKIP
...     db.set("counter", 0)
...     with db.transaction():
...         value = db.get("counter")["counter"]
...         db.set("counter", value + 1)
...     db.call("bench", "fib", [20])
"""

from __future__ import annotations

import random
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import METRICS
from repro.server import protocol
from repro.server.protocol import from_jsonable, recv_frame, send_frame, to_jsonable

__all__ = [
    "Client",
    "ClientError",
    "ConnectionLost",
    "ServerError",
    "BusyError",
    "BackpressureError",
    "ShuttingDownError",
    "RetryPolicy",
    "connect",
]

_RETRIES = METRICS.counter(
    "server.client.retries", "requests retried after a rejection or disconnect"
)
_RECONNECTS = METRICS.counter(
    "server.client.reconnects", "TCP sessions re-established by the retry layer"
)
_GAVE_UP = METRICS.counter(
    "server.client.gave_up", "requests that exhausted their retry budget"
)

#: requests with no server-side effects: safe to replay even when the
#: connection died mid-request and the first attempt's fate is unknown
IDEMPOTENT_OPS = frozenset({"ping", "get", "roots", "stats"})


class ClientError(Exception):
    """Client-side failure: connection lost, protocol violation."""


class ConnectionLost(ClientError):
    """The TCP session died; whether the request executed is unknown."""


class ServerError(Exception):
    """The daemon answered with a structured error."""

    #: True when the daemon rejected the request *before* executing it
    #: (admission control), making a retry side-effect free
    retryable = False

    def __init__(self, code: str, message: str, details: dict | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class BusyError(ServerError):
    """Rejected: the transaction lock could not be acquired in time."""

    retryable = True


class BackpressureError(ServerError):
    """Rejected: the worker pool's bounded queue is full."""

    retryable = True


class ShuttingDownError(ServerError):
    """Rejected: the daemon is draining for shutdown."""

    retryable = True


_ERROR_TYPES: dict[str, type[ServerError]] = {
    protocol.E_BUSY: BusyError,
    protocol.E_BACKPRESSURE: BackpressureError,
    protocol.E_SHUTTING_DOWN: ShuttingDownError,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter (AWS-style).

    Attempt *n* (1-based retries) sleeps
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a random
    factor in ``[1 - jitter, 1]`` — jitter keeps a thundering herd of
    clients from re-arriving in lockstep after a restart.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    #: also retry the initial TCP connect (daemon not yet listening)
    retry_connect: bool = True

    def delay(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1))
        return raw * (1.0 - self.jitter * random.random())


class Client:
    """One session against a running repro daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry
        self.sock: socket.socket | None = None
        self._next_id = 1
        self._closed = False
        self._in_txn = False
        self._connect(initial=True)

    # ----------------------------------------------------------- transport

    def _connect(self, initial: bool = False) -> None:
        attempts = 0
        while True:
            try:
                self.sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                if not initial:
                    _RECONNECTS.inc()
                return
            except OSError as exc:
                self.sock = None
                attempts += 1
                policy = self.retry
                if (
                    policy is None
                    or not policy.retry_connect
                    or attempts >= policy.max_attempts
                ):
                    raise ConnectionLost(
                        f"cannot connect to {self._host}:{self._port}: {exc}"
                    ) from exc
                time.sleep(policy.delay(attempts))

    def _drop_socket(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def request(self, op: str, **operands) -> dict:
        """Send one request and block for its response's ``result``.

        Single-shot: raises the typed error on failure.  The retrying
        public operations go through :meth:`_invoke`.
        """
        if self._closed:
            raise ClientError("client is closed")
        if self.sock is None:
            self._connect()
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        message.update(operands)
        try:
            send_frame(self.sock, message)
            response = recv_frame(self.sock)
        except (OSError, protocol.ProtocolError) as exc:
            self._drop_socket()
            raise ConnectionLost(f"connection failed during {op!r}: {exc}") from exc
        if response is None:
            self._drop_socket()
            raise ConnectionLost(f"server closed the connection during {op!r}")
        if response.get("id") != request_id:
            raise ClientError(
                f"response id {response.get('id')!r} does not match {request_id}"
            )
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        details = {
            k: v for k, v in error.items() if k not in ("code", "message")
        }
        code = error.get("code", protocol.E_INTERNAL)
        raise _ERROR_TYPES.get(code, ServerError)(
            code, error.get("message", "unknown server error"), details
        )

    def _invoke(self, op: str, idempotent: bool | None = None, **operands) -> dict:
        """Issue a request under the retry policy (see module docstring)."""
        if idempotent is None:
            idempotent = op in IDEMPOTENT_OPS
        policy = self.retry
        retries = 0
        while True:
            try:
                return self.request(op, **operands)
            except (ServerError, ConnectionLost) as exc:
                if policy is None or self._in_txn:
                    raise
                if isinstance(exc, ServerError):
                    can_retry = exc.retryable  # rejected, never executed
                else:
                    # the request may have executed before the link died:
                    # only replay requests with no server-side effects
                    can_retry = idempotent
                retries += 1
                if not can_retry or retries >= policy.max_attempts:
                    _GAVE_UP.inc()
                    raise
                _RETRIES.inc()
                time.sleep(policy.delay(retries))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._drop_socket()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ---------------------------------------------------------- operations

    def ping(self) -> dict:
        return self._invoke("ping")

    def call(
        self,
        module: str,
        function: str,
        args: list | None = None,
        step_limit: int | None = None,
        mode: str = "read",
        full: bool = False,
    ) -> Any:
        """Call a stored function; returns its value (or the full result)."""
        operands: dict[str, Any] = {
            "module": module,
            "function": function,
            "args": [to_jsonable(a) for a in (args or [])],
            "mode": mode,
        }
        if step_limit is not None:
            operands["step_limit"] = step_limit
        # a read-mode call has no server-side effects, so it is replayable
        result = self._invoke("call", idempotent=(mode == "read"), **operands)
        if full:
            result = dict(result)
            result["value"] = from_jsonable(result["value"])
            return result
        return from_jsonable(result["value"])

    def run(self, source: str) -> list[str]:
        """Compile and persist TL source; returns the stored module names."""
        return self._invoke("run", source=source)["modules"]

    def get(self, *roots: str) -> dict[str, Any]:
        """Read root objects in one snapshot; name → value."""
        result = self._invoke("get", roots=list(roots))
        return {name: from_jsonable(v) for name, v in result["values"].items()}

    def set(self, root: str, value: Any) -> int:
        """Bind a root to a value (auto-commits outside a transaction)."""
        return self._invoke("set", root=root, value=to_jsonable(value))["oid"]

    def roots(self) -> list[str]:
        return self._invoke("roots")["roots"]

    def begin(self, mode: str = "write", timeout: float | None = None) -> dict:
        operands: dict[str, Any] = {"mode": mode}
        if timeout is not None:
            operands["timeout"] = timeout
        result = self._invoke("begin", **operands)
        self._in_txn = True
        return result

    def commit(self) -> dict:
        try:
            return self.request("commit")
        finally:
            self._in_txn = False

    def abort(self) -> dict:
        try:
            return self.request("abort")
        finally:
            self._in_txn = False

    @contextmanager
    def transaction(self, mode: str = "write", timeout: float | None = None):
        """``with db.transaction(): ...`` — commit on success, abort on error."""
        self.begin(mode, timeout)
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def stats(self, metrics: bool = False) -> dict:
        return self._invoke("stats", metrics=metrics)

    def pgo(self, top: int | None = None) -> dict:
        """Ask the server to run one PGO round right now."""
        operands = {} if top is None else {"top": top}
        return self._invoke("pgo", **operands)

    def shutdown(self) -> dict:
        return self.request("shutdown")


def connect(
    port: int,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    retry: RetryPolicy | None = None,
) -> Client:
    """Open one session against a daemon listening on ``host:port``."""
    return Client(host=host, port=port, timeout=timeout, retry=retry)
