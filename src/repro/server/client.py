"""Blocking client for the repro daemon.

One :class:`Client` is one session: a TCP connection speaking the
length-prefixed JSON protocol of :mod:`repro.server.protocol`, requests
issued strictly one at a time (the daemon still interleaves *sessions*
concurrently).  Failures come back as :class:`ServerError` carrying the
structured error code, so callers branch on ``exc.code`` rather than
parsing messages:

>>> with connect(port) as db:                       # doctest: +SKIP
...     db.set("counter", 0)
...     with db.transaction():
...         value = db.get("counter")["counter"]
...         db.set("counter", value + 1)
...     db.call("bench", "fib", [20])
"""

from __future__ import annotations

import socket
from contextlib import contextmanager
from typing import Any

from repro.server import protocol
from repro.server.protocol import from_jsonable, recv_frame, send_frame, to_jsonable

__all__ = ["Client", "ClientError", "ServerError", "connect"]


class ClientError(Exception):
    """Client-side failure: connection lost, protocol violation."""


class ServerError(Exception):
    """The daemon answered with a structured error."""

    def __init__(self, code: str, message: str, details: dict | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class Client:
    """One session against a running repro daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 1
        self._closed = False

    # ----------------------------------------------------------- transport

    def request(self, op: str, **operands) -> dict:
        """Send one request and block for its response's ``result``."""
        if self._closed:
            raise ClientError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        message.update(operands)
        try:
            send_frame(self.sock, message)
            response = recv_frame(self.sock)
        except (OSError, protocol.ProtocolError) as exc:
            raise ClientError(f"connection failed during {op!r}: {exc}") from exc
        if response is None:
            raise ClientError(f"server closed the connection during {op!r}")
        if response.get("id") != request_id:
            raise ClientError(
                f"response id {response.get('id')!r} does not match {request_id}"
            )
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        details = {
            k: v for k, v in error.items() if k not in ("code", "message")
        }
        raise ServerError(
            error.get("code", protocol.E_INTERNAL),
            error.get("message", "unknown server error"),
            details,
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ---------------------------------------------------------- operations

    def ping(self) -> dict:
        return self.request("ping")

    def call(
        self,
        module: str,
        function: str,
        args: list | None = None,
        step_limit: int | None = None,
        mode: str = "read",
        full: bool = False,
    ) -> Any:
        """Call a stored function; returns its value (or the full result)."""
        operands: dict[str, Any] = {
            "module": module,
            "function": function,
            "args": [to_jsonable(a) for a in (args or [])],
            "mode": mode,
        }
        if step_limit is not None:
            operands["step_limit"] = step_limit
        result = self.request("call", **operands)
        if full:
            result = dict(result)
            result["value"] = from_jsonable(result["value"])
            return result
        return from_jsonable(result["value"])

    def run(self, source: str) -> list[str]:
        """Compile and persist TL source; returns the stored module names."""
        return self.request("run", source=source)["modules"]

    def get(self, *roots: str) -> dict[str, Any]:
        """Read root objects in one snapshot; name → value."""
        result = self.request("get", roots=list(roots))
        return {name: from_jsonable(v) for name, v in result["values"].items()}

    def set(self, root: str, value: Any) -> int:
        """Bind a root to a value (auto-commits outside a transaction)."""
        return self.request("set", root=root, value=to_jsonable(value))["oid"]

    def roots(self) -> list[str]:
        return self.request("roots")["roots"]

    def begin(self, mode: str = "write", timeout: float | None = None) -> dict:
        operands: dict[str, Any] = {"mode": mode}
        if timeout is not None:
            operands["timeout"] = timeout
        return self.request("begin", **operands)

    def commit(self) -> dict:
        return self.request("commit")

    def abort(self) -> dict:
        return self.request("abort")

    @contextmanager
    def transaction(self, mode: str = "write", timeout: float | None = None):
        """``with db.transaction(): ...`` — commit on success, abort on error."""
        self.begin(mode, timeout)
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def stats(self, metrics: bool = False) -> dict:
        return self.request("stats", metrics=metrics)

    def pgo(self, top: int | None = None) -> dict:
        """Ask the server to run one PGO round right now."""
        operands = {} if top is None else {"top": top}
        return self.request("pgo", **operands)

    def shutdown(self) -> dict:
        return self.request("shutdown")


def connect(port: int, host: str = "127.0.0.1", timeout: float = 60.0) -> Client:
    """Open one session against a daemon listening on ``host:port``."""
    return Client(host=host, port=port, timeout=timeout)
