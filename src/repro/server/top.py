"""``repro top`` — a live terminal dashboard over the ``stats`` op.

The daemon side is :meth:`repro.server.daemon.ReproServer._op_stats`; this
module is the presentation half: :func:`render` turns one ``stats`` reply
(plus, optionally, the previous one for rates) into a fixed-width text
frame, and :func:`run_top` polls a daemon and repaints the terminal.

``render`` is a pure function of its inputs so the layout is testable
without a server or a TTY.
"""

from __future__ import annotations

import sys
import time

__all__ = ["render", "run_top"]

#: ANSI: cursor home + clear-to-end — repaint without scrollback spam
_CLEAR = "\x1b[H\x1b[J"


def _fmt_us(value) -> str:
    """Microseconds, humanized (``-`` when unknown)."""
    if value is None:
        return "-"
    value = float(value)
    if value < 1_000:
        return f"{value:.0f}us"
    if value < 1_000_000:
        return f"{value / 1_000:.1f}ms"
    return f"{value / 1_000_000:.2f}s"


def _fmt_count(value) -> str:
    if value is None:
        return "-"
    value = int(value)
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}k"
    return str(value)


def _fmt_rate(hit_rate) -> str:
    return "-" if hit_rate is None else f"{hit_rate * 100:.1f}%"


def _latency_cells(summary: dict) -> str:
    return (
        f"p50={_fmt_us(summary.get('p50')):<8} "
        f"p99={_fmt_us(summary.get('p99')):<8} "
        f"p999={_fmt_us(summary.get('p999')):<8} "
        f"max={_fmt_us(summary.get('max'))}"
    )


def render(stats: dict, prev: dict | None = None, elapsed: float | None = None) -> str:
    """One dashboard frame from a ``stats`` reply.

    ``prev``/``elapsed`` (the previous reply and the seconds between the
    two polls) turn the monotone request counters into req/s and err/s.
    """
    lines: list[str] = []
    requests = stats.get("requests", {})
    total = requests.get("total", 0)
    errors = requests.get("errors", 0)
    rate = ""
    if prev is not None and elapsed:
        prev_requests = prev.get("requests", {})
        dt_total = total - prev_requests.get("total", 0)
        dt_errors = errors - prev_requests.get("errors", 0)
        rate = f"  {dt_total / elapsed:7.1f} req/s  {dt_errors / elapsed:.1f} err/s"
    uptime = stats.get("uptime_s", 0.0)
    lines.append(
        f"repro {stats.get('role', '?'):<10} "
        f"up {uptime:8.1f}s  v{stats.get('version', 0)} "
        f"(repl v{stats.get('repl_version', 0)})  "
        f"sessions={stats.get('sessions', 0)}"
    )
    lines.append(
        f"requests {_fmt_count(total):>8} total  "
        f"{_fmt_count(errors):>6} errors{rate}"
    )
    latency = stats.get("latency_us")
    if latency:
        lines.append(f"latency  {_latency_cells(latency)}")
    caches = []
    code = stats.get("codecache", {})
    facts = stats.get("facts", {})
    for label, cache in (("code", code), ("facts", facts)):
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        seen = hits + misses
        caches.append(
            f"{label}={_fmt_rate(hits / seen if seen else None)}"
            f" ({_fmt_count(hits)}/{_fmt_count(seen)})"
        )
    lines.append(f"caches   {'  '.join(caches)}")

    degraded = stats.get("degraded")
    if degraded:
        if degraded.get("active"):
            reason = "manual read-only" if degraded.get("manual") else (
                degraded.get("reason") or "?"
            )
            lines.append(
                f"health   DEGRADED read-only: {reason}  "
                f"probe_failures={degraded.get('probe_failures', 0)}  "
                f"recoveries={degraded.get('recoveries', 0)}"
            )
        else:
            lines.append(
                f"health   ok  recoveries={degraded.get('recoveries', 0)}"
            )
    memory = stats.get("memory")
    if memory:
        budget = memory.get("budget_bytes")
        budget_cell = (
            f"/{_fmt_count(budget)}B budget" if budget else " (no budget)"
        )
        pressure = "PRESSURE" if memory.get("pressure") else "ok"
        lines.append(
            f"memory   {pressure}  cached {_fmt_count(memory.get('cached_bytes'))}B"
            f"{budget_cell}  "
            f"{_fmt_count(memory.get('cached_objects'))} objects "
            f"(limit {memory.get('cache_limit') or '-'})  "
            f"dirty={memory.get('dirty_objects', 0)}  "
            f"shed_rounds={memory.get('shed_rounds', 0)}"
        )
    shed = stats.get("shed")
    if shed:
        lines.append(
            f"shed     deadline={_fmt_count(shed.get('deadline'))}  "
            f"overloaded={_fmt_count(shed.get('overloaded'))}  "
            f"memory={_fmt_count(shed.get('memory'))}  "
            f"io_errors={_fmt_count(shed.get('io_errors'))}  "
            f"slow_closes={_fmt_count(shed.get('slow_client_closes'))}"
        )

    replication = stats.get("replication")
    if replication:
        role = replication.get("role", "?")
        if role == "primary":
            for sub in replication.get("subscribers", ()):
                lines.append(
                    f"replica  {sub.get('node', '?'):<20} "
                    f"acked v{sub.get('acked', 0)}  "
                    f"behind {_fmt_count(sub.get('bytes_behind', 0))}B"
                )
            if not replication.get("subscribers"):
                lines.append("replica  (none subscribed)")
        else:
            lines.append(
                f"lag      versions={replication.get('lag', '?')}  "
                f"primary v{replication.get('primary_version', '?')}  "
                f"applied v{replication.get('version', '?')}"
            )
        apply_lat = replication.get("apply_latency_us")
        if apply_lat:
            lines.append(f"apply    {_latency_cells(apply_lat)}")

    coordinator = stats.get("coordinator")
    if coordinator:
        lines.append(
            f"coord    node={coordinator.get('node', '?'):<16} "
            f"recovered={'yes' if coordinator.get('recovered') else 'NO'}  "
            f"inflight={coordinator.get('inflight', 0)}  "
            f"in-doubt={coordinator.get('indoubt_decisions', 0)}  "
            f"epoch={coordinator.get('epoch', '?')}"
        )
    shards = stats.get("shards")
    if shards:
        lines.append("")
        lines.append(
            f"{'shard':<6} {'role':<9} {'v':>8} {'term':>5} "
            f"{'repl':>5} {'lag':>6} {'p99':>9} {'in-doubt':>8}  endpoints"
        )
        for sid in sorted(shards, key=lambda s: int(s)):
            row = shards[sid]
            if "error" in row:
                lines.append(
                    f"{sid:<6} {'DOWN':<9} {row['error'][:52]}"
                )
                continue
            indoubt = row.get("indoubt")
            lines.append(
                f"{sid:<6} {str(row.get('role', '?')):<9} "
                f"{_fmt_count(row.get('repl_version')):>8} "
                f"{str(row.get('term', '-')):>5} "
                f"{str(row.get('replicas', 0)):>5} "
                f"{_fmt_count(row.get('lag')):>6} "
                f"{_fmt_us(row.get('p99_us')):>9} "
                f"{('-' if indoubt is None else str(indoubt)):>8}  "
                + ",".join(row.get("endpoints", ()))
            )
    shard = stats.get("shard")
    if shard:
        lines.append(
            f"shard    id={shard.get('shard', '?')}/{shard.get('shards', '?')} "
            f"epoch={shard.get('epoch', '?')}  "
            f"share={shard.get('share', 0) * 100:.1f}%  "
            f"arcs={shard.get('ranges', '?')}  "
            f"staging={shard.get('staging', 0)}"
        )

    trace = stats.get("trace", {})
    lines.append(
        f"trace    recording={'on' if trace.get('recording') else 'off'}  "
        f"sample={trace.get('sample_rate', 1.0):g}  "
        f"history={stats.get('history', {}).get('kept', 0)} snapshots"
    )

    ops = stats.get("ops", {})
    if ops:
        lines.append("")
        lines.append(f"{'op':<12} {'count':>8}  latency")
        for name in sorted(ops, key=lambda n: -ops[n].get("count", 0)):
            summary = ops[name]
            lines.append(
                f"{name:<12} {_fmt_count(summary.get('count')):>8}  "
                f"{_latency_cells(summary)}"
            )

    slowlog = stats.get("slowlog_entries")
    if slowlog:
        lines.append("")
        lines.append(f"{'slowest':<12} {'latency':>9}  {'outcome':<12} trace")
        for entry in slowlog[:8]:
            lines.append(
                f"{entry.get('op', '?'):<12} "
                f"{_fmt_us(entry.get('latency_us')):>9}  "
                f"{entry.get('outcome', '?'):<12} "
                f"{entry.get('trace_id') or '-'}"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    count: int | None = None,
    out=None,
) -> int:
    """Poll ``stats`` every ``interval`` seconds and repaint the terminal.

    ``count`` bounds the number of frames (None = until interrupted);
    returns a process exit status.
    """
    from repro.server.client import ClientError, ServerError, connect

    out = out or sys.stdout
    clear = _CLEAR if out.isatty() else ""
    prev: dict | None = None
    prev_at: float | None = None
    frames = 0
    try:
        with connect(port, host=host) as db:
            while count is None or frames < count:
                try:
                    stats = db.stats()
                    stats["slowlog_entries"] = db.slowlog(n=8)["entries"]
                except (ClientError, ServerError) as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 1
                now = time.monotonic()
                elapsed = None if prev_at is None else now - prev_at
                out.write(clear + render(stats, prev, elapsed) + "\n")
                out.flush()
                prev, prev_at = stats, now
                frames += 1
                if count is not None and frames >= count:
                    break
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
