"""repro.server — a multi-session database server over the persistent image.

The paper's premise is an *open database environment*: persistent TML/PTML
code in a shared store, executed by many clients and reoptimized
reflectively behind their backs (§2.1, §4).  This package makes that an
actual service:

* :mod:`repro.server.daemon` — :class:`ReproServer`: one persistent image,
  many concurrent sessions over a length-prefixed JSON protocol on TCP,
  per-session transactions (single-writer / snapshot-reader), a bounded
  worker pool with backpressure, and an image-resident compiled-code cache
  keyed by PTML content hash;
* :mod:`repro.server.pgo` — the background profile-guided optimization
  worker: aggregates per-request VM profiles and periodically re-optimizes
  the measured-hot stored functions in the live image;
* :mod:`repro.server.client` — a small blocking client library;
* :mod:`repro.server.protocol` — framing and value conversion.

``python -m repro serve IMAGE`` boots the daemon; ``python -m repro
client`` talks to it.  Protocol and lifecycle are specified in
``docs/server.md``.
"""

from repro.server.client import (
    BackpressureError,
    BusyError,
    Client,
    ClientError,
    ConnectionLost,
    RetryPolicy,
    ServerError,
    ShuttingDownError,
    connect,
)
from repro.server.codecache import CodeCache
from repro.server.daemon import ReproServer, ServerConfig
from repro.server.pgo import PgoWorker
from repro.server.pool import Backpressure, WorkerPool
from repro.server.protocol import (
    ProtocolError,
    from_jsonable,
    recv_frame,
    send_frame,
    to_jsonable,
)

__all__ = [
    "Client",
    "ClientError",
    "ConnectionLost",
    "ServerError",
    "BusyError",
    "BackpressureError",
    "ShuttingDownError",
    "RetryPolicy",
    "connect",
    "CodeCache",
    "ReproServer",
    "ServerConfig",
    "PgoWorker",
    "Backpressure",
    "WorkerPool",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "to_jsonable",
    "from_jsonable",
]
