"""Network chaos harness: proving the replication layer under failure.

Three pieces:

* :class:`ChaosProxy` — a TCP relay the replication link is routed
  through, with injectable faults: ``blackhole`` (partition: packets
  silently stop), ``delay`` (slow link), ``truncate`` (connection cut
  mid-frame after N bytes), ``drop-connect`` (existing connections killed
  and new ones refused), ``reset`` (one-shot connection kill, immediate
  reconnect allowed);
* :class:`ClusterHarness` — one primary + N replicas on loopback, every
  replication link behind its own proxy, with a scripted write workload
  that records exactly which writes were *acknowledged* (an ``ok``
  response — a ``replication_timeout`` rejection or a dead socket is not
  an ack), node kill/restart in both roles (graceful ``stop()`` and
  SIGKILL-like ``crash()``), promotion of the most-caught-up replica, and
  the three invariant checks the sweep asserts for every scenario:

  1. **no acked write lost** — every acknowledged root binding is
     readable, with the acknowledged value, on every live node;
  2. **convergence** — all live nodes reach the primary's replication
     version with an identical logical state digest, and every image
     passes ``fsck`` clean after shutdown;
  3. **single primary** — exactly one live node reports the primary
     role, and it holds the highest term any live node has seen.

* the scenario families in :func:`build_scenarios` — link faults at every
  workload step, kill/restart of each node in each role at every step,
  and sync-replicated failover (kill the primary, promote, re-point,
  keep writing) — plus :func:`scenario_negative_control`, which disables
  fencing and demonstrates the acked-write loss the fencing term exists
  to prevent (the harness must *detect* that loss; a negative control
  that passes means the detector is broken).

The sweep is wired as ``scripts/replication_sim.py`` / ``make
replication-sim``; everything runs in-process so a few hundred scenarios
finish in minutes.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import METRICS
from repro.server.client import (
    ClientError,
    ClusterClient,
    RetryPolicy,
    ServerError,
    connect,
)
from repro.server.daemon import ReproServer, ServerConfig
from repro.store.fsck import fsck_image

__all__ = [
    "ChaosProxy",
    "ClusterHarness",
    "ScenarioResult",
    "build_scenarios",
    "scenario_negative_control",
    "run_sweep",
]

_SCENARIOS = METRICS.counter("server.netchaos.scenarios", "chaos scenarios run")
_FAILURES = METRICS.counter("server.netchaos.failures", "chaos scenarios failed")
_FAULTS = METRICS.counter("server.netchaos.faults", "faults injected")

_CHUNK = 4096


class ChaosProxy:
    """A fault-injecting TCP relay for one replication link."""

    def __init__(self, target: tuple[str, int]):
        self.target = target  # mutable: restarts may move the upstream
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._closed = False
        # fault state (all cleared by heal())
        self.drop_connect = False
        self.blackhole = False
        self.delay = 0.0
        self.truncate_after: int | None = None
        threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        ).start()

    # ---------------------------------------------------------------- faults

    def inject(self, kind: str, **params) -> None:
        """Arm one fault; kinds double as scenario labels."""
        _FAULTS.inc()
        if kind == "blackhole":
            self.blackhole = True
        elif kind == "delay":
            self.delay = float(params.get("seconds", 0.05))
        elif kind == "truncate":
            self.truncate_after = int(params.get("after_bytes", 64))
            self.kill_connections()  # next connection hits the budget
        elif kind == "drop-connect":
            self.drop_connect = True
            self.kill_connections()
        elif kind == "reset":
            self.kill_connections()  # one-shot: reconnect succeeds
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    def heal(self) -> None:
        self.drop_connect = False
        self.blackhole = False
        self.delay = 0.0
        self.truncate_after = None

    def kill_connections(self) -> None:
        with self._lock:
            victims = list(self._conns)
            self._conns.clear()
        for sock in victims:
            # shutdown, not just close: a pump thread blocked in recv holds
            # the file description open, so close() alone would never send
            # FIN and the peers would block forever on a dead link
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # --------------------------------------------------------------- pumping

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            if self.drop_connect:
                client.close()
                continue
            try:
                upstream = socket.create_connection(self.target, timeout=5.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.add(client)
                self._conns.add(upstream)
            budget = [self.truncate_after]  # shared by both directions
            for a, b in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(a, b, budget), daemon=True
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, budget: list) -> None:
        try:
            while True:
                chunk = src.recv(_CHUNK)
                if not chunk:
                    break
                while self.blackhole and not self._closed:
                    time.sleep(0.02)  # partition: hold the data back
                if self.delay:
                    time.sleep(self.delay)
                if budget[0] is not None:
                    if len(chunk) >= budget[0]:
                        # forward the final partial bytes, then cut the
                        # connection: the receiver holds a torn frame
                        dst.sendall(chunk[: budget[0]])
                        break
                    budget[0] -= len(chunk)
                dst.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                with self._lock:
                    self._conns.discard(sock)
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.kill_connections()


@dataclass
class ScenarioResult:
    name: str
    ok: bool
    detail: str = ""
    elapsed_s: float = 0.0
    checks: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": self.checks,
        }


class ChaosError(AssertionError):
    """A scenario invariant was violated."""


class ClusterHarness:
    """One primary and N replicas with chaos-proxied replication links."""

    def __init__(
        self,
        root: str,
        replicas: int = 2,
        sync_replicas: int = 0,
        fence: bool = True,
        lock_timeout: float = 5.0,
    ):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.fence = fence
        self.sync_replicas = sync_replicas
        self.lock_timeout = lock_timeout
        #: acked root -> value: only ``ok`` write responses land here
        self.acked: dict[str, int] = {}
        self.servers: dict[str, ReproServer] = {}
        self.live: set[str] = set()
        self.proxies: dict[str, ChaosProxy] = {}
        self.primary_name = "primary"
        self.primary = self._spawn_primary("primary")
        for i in range(replicas):
            name = f"r{i}"
            proxy = ChaosProxy(("127.0.0.1", self.primary.port))
            self.proxies[name] = proxy
            self._spawn_replica(name, proxy.port)

    # ------------------------------------------------------------- lifecycle

    def _image(self, name: str) -> str:
        return os.path.join(self.root, f"{name}.tyc")

    def _config(self, name: str, **overrides) -> ServerConfig:
        defaults = dict(
            workers=2,
            queue_size=32,
            lock_timeout=self.lock_timeout,
            pgo_interval=None,
            node_id=name,
            fence=self.fence,
        )
        defaults.update(overrides)
        return ServerConfig(**defaults)

    def _spawn_primary(self, name: str, port: int = 0) -> ReproServer:
        server = ReproServer(
            self._image(name),
            self._config(
                name,
                port=port,
                replicate=True,
                sync_replicas=self.sync_replicas,
                replication_timeout=8.0,
            ),
        )
        server.start()
        self.servers[name] = server
        self.live.add(name)
        return server

    def _spawn_replica(self, name: str, upstream_port: int, port: int = 0) -> ReproServer:
        server = ReproServer(
            self._image(name),
            self._config(
                name, port=port, replica_of=("127.0.0.1", upstream_port)
            ),
        )
        server.start()
        self.servers[name] = server
        self.live.add(name)
        return server

    def kill(self, name: str, crash: bool = False) -> None:
        server = self.servers[name]
        if crash:
            server.crash()
        else:
            server.stop()
        self.live.discard(name)

    def restart(self, name: str) -> ReproServer:
        """Bring a killed node back in its previous role, on its old port."""
        old = self.servers[name]
        port = old.port
        if name == self.primary_name:
            server = self._spawn_primary(name, port=port)
            self.proxies_retarget(port)
        else:
            server = self._spawn_replica(name, self.proxies[name].port, port=port)
        return server

    def proxies_retarget(self, primary_port: int) -> None:
        for proxy in self.proxies.values():
            proxy.target = ("127.0.0.1", primary_port)

    def promote_best_replica(self) -> str:
        """Promote the most-caught-up live replica; re-point the others."""
        versions: dict[str, int] = {}
        for name in sorted(self.live - {self.primary_name}):
            try:
                with connect(self.servers[name].port) as db:
                    versions[name] = db.repl_status()["version"]
            except (ClientError, ServerError):
                continue
        if not versions:
            raise ChaosError("no live replica to promote")
        best = max(versions, key=lambda n: (versions[n], n))
        with connect(self.servers[best].port) as db:
            db.promote()
        self.primary_name = best
        for name in self.live - {best}:
            try:
                with connect(self.servers[name].port) as db:
                    db.follow("127.0.0.1", self.servers[best].port)
            except (ClientError, ServerError):
                pass
        return best

    def teardown(self) -> None:
        for name in list(self.servers):
            try:
                self.servers[name].stop()
            except Exception:
                pass
        for proxy in self.proxies.values():
            proxy.close()

    # -------------------------------------------------------------- workload

    def cluster_client(self) -> ClusterClient:
        endpoints = [("127.0.0.1", s.port) for s in self.servers.values()]
        return ClusterClient(
            endpoints,
            timeout=10.0,
            retry=RetryPolicy(base_delay=0.05, max_attempts=8),
        )

    def write(self, index: int, db: ClusterClient | None = None) -> bool:
        """One workload write; records it in ``acked`` only on success."""
        root, value = f"w{index}", index * 101
        try:
            if db is not None:
                db.set(root, value)
            else:
                with connect(
                    self.servers[self.primary_name].port,
                    retry=RetryPolicy(base_delay=0.05, max_attempts=4),
                ) as direct:
                    direct.set(root, value)
        except (ClientError, ServerError):
            return False  # not acknowledged: the write may or may not exist
        self.acked[root] = value
        return True

    # ----------------------------------------------------------- invariants

    def _status(self, name: str, digest: bool = False) -> dict:
        with connect(self.servers[name].port, timeout=10.0) as db:
            return db.repl_status(digest=digest)

    def wait_converged(self, timeout: float = 40.0) -> dict[str, dict]:
        """Block until every live node matches the primary's version and
        logical digest; raises :class:`ChaosError` on timeout."""
        deadline = time.monotonic() + timeout
        last: dict[str, dict] = {}
        while time.monotonic() < deadline:
            try:
                want = self._status(self.primary_name, digest=True)
                last = {self.primary_name: want}
                settled = True
                for name in sorted(self.live - {self.primary_name}):
                    got = self._status(name, digest=True)
                    last[name] = got
                    if (
                        got["version"] != want["version"]
                        or got.get("digest") != want.get("digest")
                    ):
                        settled = False
                if settled:
                    return last
            except (ClientError, ServerError):
                pass
            time.sleep(0.05)
        raise ChaosError(f"no convergence within {timeout}s: {last}")

    def check_acked_writes(self) -> int:
        """Every acknowledged write must be readable on every live node."""
        for name in sorted(self.live):
            with connect(self.servers[name].port, timeout=10.0) as db:
                roots = set(db.roots())
                missing = [r for r in self.acked if r not in roots]
                if missing:
                    raise ChaosError(f"{name} lost acked writes: {missing}")
                for root in self.acked:
                    try:
                        got = db.get(root)[root]
                    except ServerError as exc:
                        if exc.code == "not_found":
                            # vanished between the roots() listing and the
                            # read — still a lost acked write
                            raise ChaosError(
                                f"{name} lost acked write {root}: {exc}"
                            ) from exc
                        raise
                    if got != self.acked[root]:
                        raise ChaosError(
                            f"{name}: acked {root}={self.acked[root]} reads {got}"
                        )
        return len(self.acked)

    def check_single_primary(self) -> str:
        primaries: list[tuple[str, int]] = []
        max_term = 0
        for name in sorted(self.live):
            status = self._status(name)
            max_term = max(max_term, status["term"])
            if status["role"] == "primary":
                primaries.append((name, status["term"]))
        if len(primaries) != 1:
            raise ChaosError(f"want exactly one live primary, have {primaries}")
        name, term = primaries[0]
        if term < max_term:
            raise ChaosError(
                f"primary {name} at term {term} but a node has seen {max_term}"
            )
        return name

    def check_fsck_clean(self) -> None:
        """Stop everything and fsck every live node's image."""
        live = sorted(self.live)
        for name in list(self.servers):
            self.servers[name].stop()
        self.live.clear()
        for name in live:
            result = fsck_image(self._image(name))
            if not result.ok:
                raise ChaosError(
                    f"fsck {name}: "
                    + "; ".join(f.message for f in result.errors)
                )

    def verify(self) -> dict:
        """Run the full invariant suite; returns the check summary."""
        primary = self.check_single_primary()
        self.wait_converged()
        acked = self.check_acked_writes()
        self.check_fsck_clean()
        return {"primary": primary, "acked_writes": acked, "fsck": "clean"}


# ---------------------------------------------------------------------------
# scenario families
# ---------------------------------------------------------------------------


def scenario_link_fault(
    root: str,
    kind: str,
    step: int,
    both_links: bool = False,
    sync: bool = False,
    writes: int = 10,
) -> dict:
    """Fault one (or both) replication links mid-workload, heal, converge."""
    harness = ClusterHarness(root, sync_replicas=1 if sync else 0)
    try:
        targets = ["r0", "r1"] if both_links else ["r0"]
        for i in range(writes):
            if i == step:
                for name in targets:
                    harness.proxies[name].inject(kind)
            if i == step + 2:
                for name in targets:
                    harness.proxies[name].heal()
            harness.write(i)
        for proxy in harness.proxies.values():
            proxy.heal()
        return harness.verify()
    finally:
        harness.teardown()


def scenario_restart(
    root: str, node: str, crash: bool, step: int, writes: int = 10
) -> dict:
    """Kill one node mid-workload (gracefully or abruptly), restart it."""
    harness = ClusterHarness(root)
    try:
        for i in range(writes):
            if i == step:
                harness.kill(node, crash=crash)
            if i == step + 2:
                harness.restart(node)
            harness.write(i)
        if node not in harness.live:
            harness.restart(node)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_failover(
    root: str, crash: bool, step: int, writes: int = 10
) -> dict:
    """Kill the primary, promote the most-caught-up replica, keep writing.

    Runs sync-replicated (``sync_replicas=1``) so an acknowledged write is
    by definition on at least one replica — which the promotion rule (the
    max-version replica wins) then guarantees survives the failover.
    """
    harness = ClusterHarness(root, sync_replicas=1)
    db = None
    try:
        db = harness.cluster_client()
        for i in range(writes):
            if i == step:
                harness.kill("primary", crash=crash)
                harness.promote_best_replica()
            harness.write(i, db=db)
        return harness.verify()
    finally:
        if db is not None:
            db.close()
        harness.teardown()


def scenario_negative_control(root: str) -> dict:
    """Fencing OFF: the acked-write invariant MUST fail.

    The deposed primary keeps its stale term-1 state; the promoted node
    (term 2) takes an acknowledged write, then is pointed back at the
    deposed primary.  Without fencing it accepts the stale snapshot, the
    acked write vanishes, and the standard
    :meth:`ClusterHarness.check_acked_writes` invariant raises — so the
    sweep reports a failure and the sim exits nonzero.  CI inverts the
    invocation (``! replication_sim.py --negative-control``): a zero exit
    here would mean the detector can no longer see lost writes.
    """
    harness = ClusterHarness(root, replicas=1, sync_replicas=1, fence=False)
    try:
        for i in range(3):
            harness.write(i)
        harness.wait_converged()
        old_primary_port = harness.servers["primary"].port
        with connect(harness.servers["r0"].port) as db:
            db.promote()
        harness.primary_name = "r0"
        harness.write(99)  # acked by the term-2 primary
        if "w99" not in harness.acked:
            raise ChaosError("negative control write was not acknowledged")
        # point the new primary back at the deposed one: unfenced, it
        # accepts the stale-term snapshot and silently regresses
        with connect(harness.servers["r0"].port) as db:
            db.follow("127.0.0.1", old_primary_port)
        harness.live.discard("primary")  # judge the regressed node only
        deadline = time.monotonic() + 20.0
        while True:
            try:
                with connect(harness.servers["r0"].port) as db:
                    regressed = "w99" not in set(db.roots())
            except (ClientError, ServerError):
                regressed = False
            if regressed or time.monotonic() >= deadline:
                break
            time.sleep(0.1)
        # the standard invariant check: with fencing off it must raise
        harness.check_acked_writes()
        return {"lost": False}  # nothing lost?! fencing leaked in somewhere
    finally:
        harness.teardown()


def build_scenarios(quick: bool = False) -> list[tuple[str, callable]]:
    """The full sweep: (name, thunk(root)) pairs, ≥200 scenarios."""
    kinds = ["blackhole", "delay", "truncate", "drop-connect", "reset"]
    steps = [1, 4, 7] if quick else list(range(10))
    scenarios: list[tuple[str, callable]] = []

    def add(name, fn, *args, **kwargs):
        scenarios.append(
            (name, lambda root, a=args, k=kwargs: fn(root, *a, **k))
        )

    for kind in kinds:
        for step in steps:
            add(f"link/{kind}/s{step}", scenario_link_fault, kind, step)
            add(
                f"link-both/{kind}/s{step}",
                scenario_link_fault,
                kind,
                step,
                both_links=True,
            )
    sync_steps = steps if not quick else steps[:1]
    for kind in kinds:
        for step in sync_steps:
            add(
                f"link-sync/{kind}/s{step}",
                scenario_link_fault,
                kind,
                step,
                sync=True,
            )
    restart_steps = steps if not quick else [2]
    for node in ("primary", "r0", "r1"):
        for crash in (False, True):
            for step in restart_steps:
                mode = "crash" if crash else "stop"
                add(
                    f"restart/{node}/{mode}/s{step}",
                    scenario_restart,
                    node,
                    crash,
                    step,
                )
    failover_steps = [1, 2, 3, 4, 5, 6, 7, 8] if not quick else [2]
    for crash in (False, True):
        for step in failover_steps:
            mode = "crash" if crash else "stop"
            add(f"failover/{mode}/s{step}", scenario_failover, crash, step)
    return scenarios


def run_sweep(
    root: str,
    quick: bool = False,
    negative_control: bool = False,
    progress=None,
) -> dict:
    """Run the sweep (or just the negative control); returns the report."""
    if negative_control:
        scenarios = [("negative-control/unfenced", scenario_negative_control)]
    else:
        scenarios = build_scenarios(quick=quick)
    results: list[ScenarioResult] = []
    for index, (name, thunk) in enumerate(scenarios):
        _SCENARIOS.inc()
        scenario_root = os.path.join(root, f"s{index:03d}")
        started = time.monotonic()
        try:
            checks = thunk(scenario_root)
            result = ScenarioResult(
                name, True, elapsed_s=time.monotonic() - started, checks=checks
            )
        except Exception as exc:
            _FAILURES.inc()
            result = ScenarioResult(
                name,
                False,
                detail=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.monotonic() - started,
            )
        results.append(result)
        if progress is not None:
            progress(index + 1, len(scenarios), result)
    failed = [r for r in results if not r.ok]
    return {
        "scenarios": len(results),
        "passed": len(results) - len(failed),
        "failed": len(failed),
        "failures": [r.as_dict() for r in failed],
        "results": [r.as_dict() for r in results],
    }
