"""Wire protocol: length-prefixed JSON frames and value conversion.

Framing (version 1): each message is a 4-byte big-endian unsigned payload
length followed by a UTF-8 JSON object.  Requests and responses are flat
JSON objects:

* request — ``{"id": <int>, "op": "<name>", ...operands}``;
* success — ``{"id": <int>, "ok": true, "result": {...}}``;
* failure — ``{"id": <int>, "ok": false,
  "error": {"code": "<code>", "message": "...", ...details}}``.

Error codes are machine-readable contract, not prose: ``backpressure``
(admission control rejected the request), ``busy`` (transaction lock
timeout), ``step_limit`` (instruction budget exhausted,
:class:`repro.machine.vm.StepLimitExceeded`), ``exec_error`` (uncaught TML
exception), ``bad_request``, ``txn_state``, ``not_found``, ``internal``,
``shutting_down``.

Version 2 adds the replication vocabulary (:mod:`repro.server.replication`)
and request deadlines: ``not_primary`` (a mutating request reached a
replica; details carry the upstream primary's address), ``stale_term``
(fencing rejected a deposed primary's stream), ``stale_read`` (a bounded-
staleness read's ``min_version`` floor is ahead of this replica), and
``deadline_exceeded`` (the request's remaining time budget ran out before
it could execute).  ``replication_timeout`` reports a write that committed
locally but was not acknowledged by the required number of replicas in
time (details carry ``committed: true``).  Framing is unchanged, so v1
clients interoperate for the v1 op set.

Version 3 adds the observability vocabulary: any request may carry a
``trace`` operand — ``{"trace_id": "<16-hex>", "span_id": "<16-hex>"}`` —
and the daemon opens its server span under that context, so one logical
operation is followable client → primary → replica in a single
distributed trace; error payloads carry the active ``trace_id`` when the
request was traced.  Three introspection ops join the set: ``stats``
(extended with per-op latency percentiles, slowlog/trace/history status
and replication lag), ``slowlog`` (the ring of slowest requests) and
``trace`` (runtime start/stop/sampling control of the daemon's NDJSON
export).  All are additive: unstamped requests and v2 clients are served
unchanged.

Version 4 adds the sharding vocabulary (:mod:`repro.server.sharding`):
``wrong_shard`` rejects a data operation whose root hashes to another
shard group — details carry the owning ``shard`` id and its ``endpoints``
so a ring-aware client can follow the hint — and ``twopc_aborted``
reports a cross-shard write whose two-phase commit could not reach a
commit decision (the transaction is guaranteed rolled back everywhere).
New ops: ``mset`` (bind several roots in one atomic commit; on a
coordinator the roots may span shards and run as 2PC), ``query``
(prefix-scan of a shard's owned roots, optionally folded through a stored
function — the executable half of scatter-gather), ``scatter``
(coordinator fan-out of a query to every shard with a merge step),
``topology`` (read the consistent-hash ring) and the participant ops
``shard.prepare`` / ``shard.decide`` / ``shard.indoubt`` / ``shard.adopt``
(see docs/sharding.md).  All additive; v3 clients are served unchanged.

Version 5 adds the resource-exhaustion vocabulary: ``read_only`` rejects a
mutating request because the daemon is in degraded read-only mode after a
disk-level failure (ENOSPC/EDQUOT/EIO/fsync failure mid-commit) or a
manual ``--read-only`` override — details carry the ``reason``, ``since``
(unix seconds) and a ``retry_after`` hint matching the recovery probe's
cadence; reads, ``stats``, ``ping`` and replication subscribe keep
working, and a cluster-aware client should *fail writes over* instead of
retrying the same endpoint.  ``overloaded`` rejects a request that waited
longer than the admission queue-time limit — distinct from
``backpressure`` (queue *full* on arrival); details carry ``queued_s``
and a ``retry_after`` backoff hint the client's retry policy honors.
Both additive; v4 clients are served unchanged.

Version 6 adds the anti-entropy repair vocabulary (:mod:`repro.server.repair`):
``repl.digest`` returns a digest tree over OID buckets — ``buckets`` maps
``str(oid >> bucket_bits)`` to a SHA-256 over the bucket's committed
``(oid, payload)`` pairs, with ``version``/``term``/``root`` for skew and
equality prechecks — and ``repl.fetch`` (operand ``buckets``: a list of
bucket ids) returns the committed payloads of those buckets as
``[oid, hex]`` pairs.  Together they let a replica whose scrub found bit
rot re-fetch only the diverged OID ranges from its primary instead of a
full snapshot resync.  Both run under a read transaction on the serving
node and are additive; v5 clients are served unchanged.

TML runtime values cross the wire as JSON with tagged escapes for the
types JSON cannot express directly (see :func:`to_jsonable` /
:func:`from_jsonable`).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.core.syntax import Char, Oid, UNIT, Unit
from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "to_jsonable",
    "from_jsonable",
    "E_BACKPRESSURE",
    "E_BUSY",
    "E_STEP_LIMIT",
    "E_EXEC",
    "E_BAD_REQUEST",
    "E_TXN_STATE",
    "E_NOT_FOUND",
    "E_INTERNAL",
    "E_SHUTTING_DOWN",
    "E_NOT_PRIMARY",
    "E_STALE_TERM",
    "E_STALE_READ",
    "E_DEADLINE",
    "E_REPL_TIMEOUT",
    "E_WRONG_SHARD",
    "E_TWOPC",
    "E_READ_ONLY",
    "E_OVERLOADED",
]

PROTOCOL_VERSION = 6
#: refuse frames above this size — a corrupt length prefix must not make
#: the peer allocate gigabytes
MAX_FRAME = 16 * 1024 * 1024
_LEN = struct.Struct(">I")

E_BACKPRESSURE = "backpressure"
E_BUSY = "busy"
E_STEP_LIMIT = "step_limit"
E_EXEC = "exec_error"
E_BAD_REQUEST = "bad_request"
E_TXN_STATE = "txn_state"
E_NOT_FOUND = "not_found"
E_INTERNAL = "internal"
E_SHUTTING_DOWN = "shutting_down"
E_NOT_PRIMARY = "not_primary"
E_STALE_TERM = "stale_term"
E_STALE_READ = "stale_read"
E_DEADLINE = "deadline_exceeded"
E_REPL_TIMEOUT = "replication_timeout"
E_WRONG_SHARD = "wrong_shard"
E_TWOPC = "twopc_aborted"
E_READ_ONLY = "read_only"
E_OVERLOADED = "overloaded"


class ProtocolError(Exception):
    """Malformed frame, oversized message or mid-frame disconnect."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME) -> dict | None:
    """Read one frame; returns None when the peer closed the connection."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise ProtocolError(f"announced frame of {length} bytes exceeds {max_frame}")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


# ---------------------------------------------------------------------------
# value conversion
# ---------------------------------------------------------------------------


def to_jsonable(value: Any) -> Any:
    """TML runtime value → JSON-safe representation (tagged escapes).

    Scalars that JSON covers pass through; everything else becomes a
    single-key tag object: ``{"$char": "c"}``, ``{"$unit": true}``,
    ``{"$oid": 7}``, ``{"$vec": [...]}`` (immutable vector), ``{"$arr":
    [...]}`` (mutable array), ``{"$bytes": "hex"}``.  Values with no wire
    form (closures, relations) degrade to ``{"$repr": "..."}`` — they stay
    in the image; the wire carries a description.
    """
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, Char):
        return {"$char": value.value}
    if isinstance(value, Unit):
        return {"$unit": True}
    if isinstance(value, Oid):
        return {"$oid": int(value)}
    if isinstance(value, TmlVector):
        return {"$vec": [to_jsonable(v) for v in value.slots]}
    if isinstance(value, TmlArray):
        return {"$arr": [to_jsonable(v) for v in value.slots]}
    if isinstance(value, TmlByteArray):
        return {"$bytes": bytes(value.data).hex()}
    if isinstance(value, (list, tuple)):
        return {"$vec": [to_jsonable(v) for v in value]}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    return {"$repr": repr(value)}


def from_jsonable(value: Any) -> Any:
    """JSON wire representation → TML runtime value (inverse of above)."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, list):
        return TmlVector([from_jsonable(v) for v in value])
    if isinstance(value, dict):
        if "$char" in value:
            return Char(value["$char"])
        if "$unit" in value:
            return UNIT
        if "$oid" in value:
            return Oid(value["$oid"])
        if "$vec" in value:
            return TmlVector([from_jsonable(v) for v in value["$vec"]])
        if "$arr" in value:
            return TmlArray([from_jsonable(v) for v in value["$arr"]])
        if "$bytes" in value:
            return TmlByteArray(bytearray.fromhex(value["$bytes"]))
        if "$repr" in value:
            raise ProtocolError("$repr values are display-only, not sendable")
        return {k: from_jsonable(v) for k, v in value.items()}
    raise ProtocolError(f"unsendable wire value: {value!r}")
