"""Sharded chaos harness: proving cross-shard 2PC under failure.

Builds on :mod:`repro.server.netchaos`: each shard group is one
:class:`~repro.server.netchaos.ClusterHarness` (primary + replicas with
chaos-proxied replication links, sync-replicated so an acknowledged
write is on a replica by definition), and a coordinator daemon fronts
them — reached by the workload client directly, reaching each shard
group through its own :class:`~repro.server.netchaos.ChaosProxy` so the
coordinator↔shard links can be partitioned independently of the
intra-group replication links.

The workload is cross-shard ``mset`` batches, each deliberately touching
**every** shard group (root names are picked against the ring until each
group owns at least one).  The harness records which batches were
*acknowledged* (an ``ok`` response with ``committed: true`` — a
``twopc_aborted`` rejection, a timeout or a dead socket is not an ack)
and which were merely *attempted*; after every scenario it settles the
deployment (restart whatever died, heal every link, wait for the
coordinator's resolver to drain all in-doubt state) and asserts:

1. **no acked batch lost** — every root of every acknowledged batch is
   readable, with the acknowledged value, on its owning shard group;
2. **atomicity** — every *attempted* batch is all-or-nothing: either
   every shard applied its slice or none did.  A half-applied batch is
   exactly the torn write 2PC exists to prevent;
3. **no residue** — no shard holds ``__2pc__:*`` staging and the
   coordinator holds no undrained decision record once settled;
4. the per-group replication invariants of the underlying harnesses
   (single primary, convergence, clean fsck).

:func:`scenario_negative_control` disables the decision-record fsync
(``durable_decisions=False``) and crashes the coordinator between the
two phase-two deliveries (``mid-decide``): on restart nothing proves the
commit happened, recovery presumes abort, and the shard that already
applied disagrees with the one that rolled back — invariant 2 must
catch the half-applied batch.  CI runs this inverted (``!
sharding_sim.py --negative-control``): a passing negative control means
the detector is blind.

The sweep is wired as ``scripts/sharding_sim.py`` / ``make
sharding-sim``.
"""

from __future__ import annotations

import os
import time

from repro.obs.metrics import METRICS
from repro.server.client import (
    ClientError,
    ClusterClient,
    RetryPolicy,
    ServerError,
    connect,
)
from repro.server.daemon import ReproServer, ServerConfig
from repro.server.netchaos import (
    ChaosError,
    ChaosProxy,
    ClusterHarness,
    ScenarioResult,
)
from repro.server.sharding.ring import ShardTopology

__all__ = [
    "ShardedHarness",
    "build_scenarios",
    "scenario_negative_control",
    "run_sweep",
]

_SCENARIOS = METRICS.counter(
    "server.shardchaos.scenarios", "sharded chaos scenarios run"
)
_FAILURES = METRICS.counter(
    "server.shardchaos.failures", "sharded chaos scenarios failed"
)


class ShardedHarness:
    """N shard groups + one coordinator, every link fault-injectable."""

    def __init__(
        self,
        root: str,
        shards: int = 2,
        replicas_per_shard: int = 1,
        durable_decisions: bool = True,
        lock_timeout: float = 5.0,
    ):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.lock_timeout = lock_timeout
        self.durable_decisions = durable_decisions
        #: per-group replication harnesses (they own kill/restart/promote
        #: and the per-group invariants)
        self.groups: list[ClusterHarness] = [
            ClusterHarness(
                os.path.join(root, f"g{sid}"),
                replicas=replicas_per_shard,
                sync_replicas=1,
                lock_timeout=lock_timeout,
            )
            for sid in range(shards)
        ]
        #: coordinator → shard-group links, one proxy per group node so a
        #: whole group (or just its primary) can be cut off independently
        self.coord_proxies: list[dict[str, ChaosProxy]] = []
        shard_endpoints: list[list[tuple[str, int]]] = []
        for group in self.groups:
            proxies: dict[str, ChaosProxy] = {}
            endpoints: list[tuple[str, int]] = []
            for name, server in group.servers.items():
                proxy = ChaosProxy(("127.0.0.1", server.port))
                proxies[name] = proxy
                endpoints.append(("127.0.0.1", proxy.port))
            self.coord_proxies.append(proxies)
            shard_endpoints.append(endpoints)
        self.shard_endpoints = shard_endpoints
        self.topology = ShardTopology.build(shard_endpoints)
        self.coordinator = self._spawn_coordinator()
        #: batch index → {root: value}; every batch *submitted*, acked or not
        self.attempted: dict[int, dict[str, int]] = {}
        #: batch indices whose mset was acknowledged committed
        self.acked: set[int] = set()

    # ------------------------------------------------------------- lifecycle

    def _spawn_coordinator(self, port: int = 0) -> ReproServer:
        config = ServerConfig(
            workers=2,
            queue_size=32,
            lock_timeout=self.lock_timeout,
            pgo_interval=None,
            node_id="coordinator",
            port=port,
            coordinator=True,
            shards=self.shard_endpoints,
            twopc_timeout=10.0,
            resolver_interval=0.2,
            durable_decisions=self.durable_decisions,
        )
        server = ReproServer(os.path.join(self.root, "coordinator.tyc"), config)
        server.start()
        return server

    def crash_coordinator(self) -> None:
        self.coordinator.crash()

    def restart_coordinator(self) -> ReproServer:
        port = self.coordinator.port
        try:  # make sure the old process state is down (crash() runs in a
            self.coordinator.stop()  # background thread at a failpoint)
        except Exception:
            pass
        deadline = time.monotonic() + 15.0
        while True:
            try:
                self.coordinator = self._spawn_coordinator(port=port)
                return self.coordinator
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    def arm_failpoint(self, name: str | None) -> None:
        """Arm (or clear) the coordinator's 2PC failpoint for the *next*
        cross-shard mset; the coordinator reads it at each protocol point,
        so this is a live switch."""
        self.coordinator.config.twopc_failpoint = name

    def heal_all(self) -> None:
        for proxies in self.coord_proxies:
            for proxy in proxies.values():
                proxy.heal()
        for group in self.groups:
            for proxy in group.proxies.values():
                proxy.heal()

    def teardown(self) -> None:
        try:
            self.coordinator.stop()
        except Exception:
            pass
        for group in self.groups:
            group.teardown()
        for proxies in self.coord_proxies:
            for proxy in proxies.values():
                proxy.close()

    # -------------------------------------------------------------- workload

    def batch(self, index: int) -> dict[str, int]:
        """The writes of batch ``index``: one root per shard group, names
        chosen against the ring so every group participates — a pure
        function of the topology, so re-runs are deterministic."""
        writes: dict[str, int] = {}
        owned: set[int] = set()
        attempt = 0
        while len(owned) < len(self.groups):
            name = f"x{index}n{attempt}"
            attempt += 1
            sid = self.topology.shard_for(name)
            if sid in owned:
                continue
            owned.add(sid)
            writes[name] = index * 1000 + sid
        return writes

    def write_batch(self, index: int) -> bool:
        """Submit one cross-shard mset; records the ack truthfully."""
        writes = self.batch(index)
        self.attempted[index] = writes
        try:
            with connect(
                self.coordinator.port,
                timeout=20.0,
                retry=RetryPolicy(base_delay=0.05, max_attempts=4),
            ) as db:
                result = db.mset(writes)
        except (ClientError, ServerError):
            return False  # not acknowledged: fate decided by recovery
        if not result.get("committed"):
            return False
        self.acked.add(index)
        return True

    # --------------------------------------------------------------- settling

    def _shard_staging(self, sid: int) -> list[str]:
        group = self.groups[sid]
        with connect(group.servers[group.primary_name].port, timeout=10.0) as db:
            return [r for r in db.roots() if r.startswith("__2pc__:")]

    def settle(self, timeout: float = 45.0) -> None:
        """Heal links, resurrect the coordinator if it died, then wait for
        recovery to drain every in-doubt transaction."""
        self.heal_all()
        try:
            with connect(self.coordinator.port, timeout=5.0) as db:
                db.ping()
        except (ClientError, ServerError):
            self.restart_coordinator()
        deadline = time.monotonic() + timeout
        last = "never polled"
        while time.monotonic() < deadline:
            try:
                with connect(self.coordinator.port, timeout=10.0) as db:
                    stats = db.stats()
                coord = stats.get("coordinator", {})
                staging = {
                    sid: self._shard_staging(sid)
                    for sid in range(len(self.groups))
                }
                last = f"coordinator={coord} staging={staging}"
                if (
                    coord.get("recovered")
                    and coord.get("indoubt_decisions") == 0
                    and coord.get("inflight") == 0
                    and not any(staging.values())
                ):
                    return
            except (ClientError, ServerError) as exc:
                last = f"{type(exc).__name__}: {exc}"
            time.sleep(0.1)
        raise ChaosError(f"in-doubt state did not drain in {timeout}s: {last}")

    # ------------------------------------------------------------ invariants

    def _read_root(self, sid: int, root: str):
        """Read one root directly from its owning group's primary;
        ``(found, value)``."""
        group = self.groups[sid]
        with connect(group.servers[group.primary_name].port, timeout=10.0) as db:
            try:
                return True, db.get(root)[root]
            except ServerError as exc:
                if exc.code == "not_found":
                    return False, None
                raise

    def check_atomicity(self) -> dict[str, int]:
        """Invariants 1 + 2: acked batches fully applied, every attempted
        batch all-or-nothing."""
        torn: list[str] = []
        for index, writes in sorted(self.attempted.items()):
            found: dict[str, bool] = {}
            wrong: list[str] = []
            for root, value in writes.items():
                sid = self.topology.shard_for(root)
                present, got = self._read_root(sid, root)
                found[root] = present
                if present and got != value:
                    wrong.append(f"{root}={got!r} want {value}")
            if wrong:
                torn.append(f"batch {index}: wrong values: {wrong}")
                continue
            states = set(found.values())
            if index in self.acked:
                if states != {True}:
                    missing = [r for r, p in found.items() if not p]
                    raise ChaosError(
                        f"acked batch {index} lost roots {missing}"
                    )
            elif len(states) > 1:
                torn.append(
                    f"batch {index}: half-applied "
                    f"({ {r: p for r, p in found.items()} })"
                )
        if torn:
            raise ChaosError("atomicity violated: " + "; ".join(torn))
        applied = sum(
            1
            for index in self.attempted
            if index in self.acked
            or all(
                self._read_root(self.topology.shard_for(r), r)[0]
                for r in self.attempted[index]
            )
        )
        return {"attempted": len(self.attempted), "acked": len(self.acked),
                "applied": applied}

    def check_no_residue(self) -> None:
        """Invariant 3: staging and decision roots all retired."""
        for sid in range(len(self.groups)):
            staging = self._shard_staging(sid)
            if staging:
                raise ChaosError(f"shard {sid} still in doubt: {staging}")
        with connect(self.coordinator.port, timeout=10.0) as db:
            leftover = [r for r in db.roots() if r.startswith("2pc:")]
        if leftover:
            raise ChaosError(f"coordinator kept decision records: {leftover}")

    def verify(self) -> dict:
        """Settle, then run the full invariant suite (including each
        group's replication invariants, which stop the group's servers)."""
        self.settle()
        counts = self.check_atomicity()
        self.check_no_residue()
        self.coordinator.stop()
        groups = {}
        for sid, group in enumerate(self.groups):
            primary = group.check_single_primary()
            group.wait_converged()
            group.check_fsck_clean()
            groups[f"g{sid}"] = primary
        return {**counts, "groups": groups}


# ---------------------------------------------------------------------------
# scenario families
# ---------------------------------------------------------------------------


def _wait_recovered(harness: ShardedHarness, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with connect(harness.coordinator.port, timeout=5.0) as db:
                if db.topology().get("recovered"):
                    return
        except (ClientError, ServerError):
            pass
        time.sleep(0.1)
    raise ChaosError("coordinator never finished boot recovery")


def scenario_baseline(root: str, batches: int = 6) -> dict:
    """No faults: every cross-shard batch must be acked and applied."""
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        for i in range(batches):
            if not harness.write_batch(i):
                raise ChaosError(f"fault-free batch {i} was not acked")
        return harness.verify()
    finally:
        harness.teardown()


def scenario_coord_link(
    root: str, kind: str, step: int, batches: int = 6
) -> dict:
    """Cut the coordinator↔shard-0 link mid-workload, heal, settle."""
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        proxies = harness.coord_proxies[0].values()
        for i in range(batches):
            if i == step:
                for proxy in proxies:
                    proxy.inject(kind)
            if i == step + 2:
                for proxy in proxies:
                    proxy.heal()
            harness.write_batch(i)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_repl_link(
    root: str, kind: str, step: int, batches: int = 6
) -> dict:
    """Fault shard 0's *replication* link mid-workload (the group is
    sync-replicated, so prepares there stall or time out), heal, settle."""
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        group = harness.groups[0]
        for i in range(batches):
            if i == step:
                for proxy in group.proxies.values():
                    proxy.inject(kind)
            if i == step + 2:
                for proxy in group.proxies.values():
                    proxy.heal()
            harness.write_batch(i)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_shard_failover(
    root: str, crash: bool, step: int, batches: int = 6
) -> dict:
    """Kill shard 0's primary mid-workload and promote its replica; the
    coordinator must refresh the fencing term and keep committing."""
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        group = harness.groups[0]
        for i in range(batches):
            if i == step:
                group.kill(group.primary_name, crash=crash)
                promoted = group.promote_best_replica()
                # re-point the coordinator-side proxies is not needed: the
                # coordinator's ClusterClient holds every group node and
                # rediscovers the new primary on not_primary
                del promoted
            harness.write_batch(i)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_coordinator_crash(
    root: str, failpoint: str, step: int, batches: int = 6
) -> dict:
    """Crash the coordinator at a 2PC protocol point, restart, settle.

    ``after-prepare``: no decision record exists — recovery must presume
    abort and no shard may keep the batch.  ``after-decision`` and
    ``mid-decide``: the decision fsync happened — recovery must re-drive
    the commit until every shard applied.  Either way the crashed batch
    was never acked, so only atomicity (all-or-nothing) is at stake.
    """
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        for i in range(batches):
            if i == step:
                harness.arm_failpoint(failpoint)
            acked = harness.write_batch(i)
            if i == step:
                if acked:
                    raise ChaosError(
                        f"batch {i} acked through failpoint {failpoint}"
                    )
                harness.restart_coordinator()
                _wait_recovered(harness)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_post_ack_crash(root: str, batches: int = 4) -> dict:
    """Ack several batches, then crash the coordinator abruptly (no
    failpoint: mid-workload SIGKILL equivalent) and restart — acked
    batches must survive, resolver must drain whatever was in flight."""
    harness = ShardedHarness(root)
    try:
        _wait_recovered(harness)
        for i in range(batches):
            if not harness.write_batch(i):
                raise ChaosError(f"fault-free batch {i} was not acked")
        harness.crash_coordinator()
        harness.restart_coordinator()
        _wait_recovered(harness)
        for i in range(batches, batches + 2):
            harness.write_batch(i)
        return harness.verify()
    finally:
        harness.teardown()


def scenario_negative_control(root: str) -> dict:
    """Decision fsync OFF + crash between phase-two deliveries: the
    atomicity invariant MUST fail.

    Without a durable decision record the post-restart coordinator finds
    staging on the not-yet-delivered shard, presumes abort and rolls it
    back — but the first shard already applied its slice.  The batch is
    half-applied, exactly what invariant 2 detects; a clean pass here
    means the detector can no longer see torn cross-shard writes.
    """
    harness = ShardedHarness(root, durable_decisions=False)
    try:
        _wait_recovered(harness)
        if not harness.write_batch(0):
            raise ChaosError("negative control warm-up batch was not acked")
        harness.arm_failpoint("mid-decide")
        if harness.write_batch(1):
            raise ChaosError("batch acked through the mid-decide failpoint")
        harness.restart_coordinator()
        _wait_recovered(harness)
        harness.settle()
        harness.check_atomicity()  # with the fsync off this must raise
        return {"torn": False}  # nothing torn?! durability leaked in somewhere
    finally:
        harness.teardown()


def build_scenarios(quick: bool = False) -> list[tuple[str, callable]]:
    """The sweep: (name, thunk(root)) pairs."""
    scenarios: list[tuple[str, callable]] = []

    def add(name, fn, *args, **kwargs):
        scenarios.append(
            (name, lambda root, a=args, k=kwargs: fn(root, *a, **k))
        )

    add("baseline", scenario_baseline)
    kinds = ["blackhole", "drop-connect", "reset"]
    steps = [2] if quick else [1, 2, 3]
    for kind in kinds:
        for step in steps:
            add(f"coord-link/{kind}/s{step}", scenario_coord_link, kind, step)
    for kind in kinds if not quick else kinds[:1]:
        for step in steps:
            add(f"repl-link/{kind}/s{step}", scenario_repl_link, kind, step)
    for crash in (False, True):
        for step in steps:
            mode = "crash" if crash else "stop"
            add(
                f"shard-failover/{mode}/s{step}",
                scenario_shard_failover,
                crash,
                step,
            )
    failpoints = ["after-prepare", "after-decision", "mid-decide"]
    for failpoint in failpoints:
        for step in steps if not quick else steps[:1]:
            add(
                f"coord-crash/{failpoint}/s{step}",
                scenario_coordinator_crash,
                failpoint,
                step,
            )
    add("post-ack-crash", scenario_post_ack_crash)
    return scenarios


def run_sweep(
    root: str,
    quick: bool = False,
    negative_control: bool = False,
    progress=None,
) -> dict:
    """Run the sweep (or just the negative control); returns the report."""
    if negative_control:
        scenarios = [
            ("negative-control/no-durable-decision", scenario_negative_control)
        ]
    else:
        scenarios = build_scenarios(quick=quick)
    results: list[ScenarioResult] = []
    for index, (name, thunk) in enumerate(scenarios):
        _SCENARIOS.inc()
        scenario_root = os.path.join(root, f"s{index:03d}")
        started = time.monotonic()
        try:
            checks = thunk(scenario_root)
            result = ScenarioResult(
                name, True, elapsed_s=time.monotonic() - started, checks=checks
            )
        except Exception as exc:
            _FAILURES.inc()
            result = ScenarioResult(
                name,
                False,
                detail=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.monotonic() - started,
            )
        results.append(result)
        if progress is not None:
            progress(index + 1, len(scenarios), result)
    failed = [r for r in results if not r.ok]
    return {
        "scenarios": len(results),
        "passed": len(results) - len(failed),
        "failed": len(failed),
        "failures": [r.as_dict() for r in failed],
        "results": [r.as_dict() for r in results],
    }
