"""The Tycoon Abstract Machine: executes TAM code objects.

A register machine with CPS control: no call stack, every transfer is a
``tailcall`` that replaces the current register file.  Runtime state is
(code, pc, registers) plus the dynamic handler stack, the output channel and
the foreign-function table.

The VM agrees observably with the reference interpreter
(:mod:`repro.machine.cps_interp`); differential tests enforce this.  It also
counts executed instructions, the concrete realization of the paper's
"idealized abstract machine" cost measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.syntax import Char, Oid, UNIT
from repro.machine.isa import CodeObject, VMClosure
from repro.machine.runtime import (
    ARITY_ERROR,
    BOUNDS_ERROR,
    ExtRaise,
    ForeignTable,
    MachineError,
    TYPE_ERROR,
    TmlArray,
    TmlByteArray,
    TmlVector,
    UncaughtTmlException,
    identical,
    show_value,
)

#: Handlers for registry-extension primitives compiled to ``extcall``.
#: name -> handler(vm, [arg values]) -> result value.  Populated by the
#: subsystems that register extension primitives (e.g. the query algebra).
EXT_OPS: dict = {}
from repro.obs.metrics import METRICS
from repro.primitives.arith import OVERFLOW, ZERO_DIVIDE, int_div, int_rem
from repro.primitives._util import INT_MAX, INT_MIN, wrap_int

_VM_RUNS = METRICS.counter("vm.runs", "completed top-level VM runs")
_VM_INSTRUCTIONS = METRICS.counter(
    "vm.instructions", "TAM instructions executed by completed runs"
)

__all__ = ["VM", "VMResult", "instantiate", "StepLimitExceeded"]


class StepLimitExceeded(Exception):
    """The configured instruction budget ran out.

    Carries the truncated run as structured state so profilers and tests can
    inspect how far execution got:

    * ``limit`` — the configured budget;
    * ``instructions`` — instructions executed by the *run* that hit the
      limit (filled in by :meth:`VM._run`);
    * ``partial`` — a :class:`VMResult` with ``value=None`` holding the
      instruction count and the output emitted before truncation.
    """

    def __init__(
        self,
        message: str,
        *,
        limit: int | None = None,
        instructions: int | None = None,
        partial: "VMResult | None" = None,
    ):
        super().__init__(message)
        self.limit = limit
        self.instructions = instructions
        self.partial = partial


class _VMTrap(Exception):
    """Internal: a trap to be routed to the dynamic handler stack."""

    def __init__(self, value: Any):
        self.value = value


class _VMHalt(Exception):
    def __init__(self, value: Any):
        self.value = value


class _TopCont:
    """Sentinel closures terminating a top-level VM run."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        self.kind = kind


@dataclass(slots=True)
class VMResult:
    """Observable outcome of a VM execution."""

    value: Any
    instructions: int
    output: list[str] = field(default_factory=list)


def instantiate(code: CodeObject, bindings: dict | None = None) -> VMClosure:
    """Create a closure of a top-level code object.

    ``bindings`` maps the code's free :class:`~repro.core.names.Name`s to
    runtime values (the linker supplies module/store bindings this way).
    """
    bindings = bindings or {}
    free = []
    for name in code.free_names:
        if name not in bindings:
            raise MachineError(f"no binding supplied for free variable {name}")
        free.append(bindings[name])
    return VMClosure(code, free)


class VM:
    """One virtual machine instance (handler stack, output, store, foreign)."""

    def __init__(
        self,
        store=None,
        foreign: ForeignTable | None = None,
        step_limit: int | None = None,
        profiler=None,
    ):
        self.store = store
        self.foreign = foreign or ForeignTable()
        self.step_limit = step_limit
        self.handlers: list[Any] = []
        self.output: list[str] = []
        self.instructions = 0
        #: optional :class:`repro.obs.profile.VMProfiler`; when attached the
        #: main loop additionally counts per-opcode / per-closure totals
        self.profiler = profiler

    # ------------------------------------------------------------------ API

    def call(self, closure: VMClosure, args: list[Any]) -> VMResult:
        """Call a procedure closure with top-level ce/cc continuations."""
        full_args = list(args) + [_TopCont("exception"), _TopCont("normal")]
        if closure.arity != len(full_args):
            raise MachineError(
                f"procedure {closure.code.name} expects {closure.arity} args "
                f"(incl. continuations), got {len(full_args)}"
            )
        return self._run(closure, full_args)

    def run_code(self, code: CodeObject, bindings: dict | None = None) -> VMResult:
        """Instantiate and run a nullary-value procedure ``proc(ce cc)``."""
        closure = instantiate(code, bindings)
        return self.call(closure, [])

    # ------------------------------------------------------------ main loop

    def _run(self, closure: VMClosure, args: list[Any]) -> VMResult:
        start_instr = self.instructions
        start_output = len(self.output)
        pending: tuple[Any, list[Any]] | None = (closure, args)
        try:
            return self._loop(pending, start_instr, start_output)
        except StepLimitExceeded as exc:
            # enrich with the truncated run's observable state (satellite of
            # the obs layer: profilers/tests inspect how far execution got)
            exc.instructions = self.instructions - start_instr
            exc.partial = VMResult(
                value=None,
                instructions=exc.instructions,
                output=self.output[start_output:],
            )
            raise

    def _loop(
        self, pending: tuple[Any, list[Any]], start_instr: int, start_output: int
    ) -> VMResult:
        try:
            while True:
                try:
                    target, values = pending
                    if isinstance(target, _TopCont):
                        if target.kind == "normal":
                            raise _VMHalt(values[0])
                        raise UncaughtTmlException(values[0])
                    if not isinstance(target, VMClosure):
                        raise _VMTrap(TYPE_ERROR)
                    if target.arity != len(values):
                        raise _VMTrap(ARITY_ERROR)
                    pending = self._execute(target, values)
                except _VMTrap as trap:
                    if not self.handlers:
                        raise UncaughtTmlException(trap.value) from None
                    handler = self.handlers.pop()
                    pending = (handler, [trap.value])
        except _VMHalt as halted:
            executed = self.instructions - start_instr
            _VM_RUNS.inc()
            _VM_INSTRUCTIONS.inc(executed)
            return VMResult(
                value=halted.value,
                instructions=executed,
                output=self.output[start_output:],
            )

    def _execute(self, closure: VMClosure, args: list[Any]) -> tuple[Any, list[Any]]:
        """Run one code object until it tail-calls out (or halts/raises)."""
        code = closure.code
        regs: list[Any] = [None] * code.nregs
        regs[: len(args)] = args
        free = closure.free
        consts = code.consts
        instrs = code.instrs
        codes = code.codes
        pc = 0
        counted = self.instructions
        limit = self.step_limit
        profiler = self.profiler
        if profiler is not None:
            profile_ops = profiler.opcodes
            profile_pairs = profiler.pairs
            closure_stats = profiler.enter(code.name)
            prev_pc = -2  # no fall-through into pc 0

        while True:
            instr = instrs[pc]
            counted += 1
            if limit is not None and counted > limit:
                # the instruction that tripped the limit never executes, so
                # it is not part of the run's executed-instruction count
                self.instructions = counted - 1
                raise StepLimitExceeded(
                    f"exceeded {limit} instructions", limit=limit
                )
            op = instr[0]
            if profiler is not None:
                profile_ops[op] += 1
                closure_stats.instructions += 1
                # adjacent-pair counts feed the fusion certifier; only
                # fall-through adjacency counts — a taken branch or error
                # edge is not a statically fusable boundary
                if pc == prev_pc + 1:
                    profile_pairs[(instrs[prev_pc][0], op)] += 1
                prev_pc = pc

            if op == "const":
                value = consts[instr[2]]
                if type(value) is Oid and self.store is not None:
                    value = self.store.load(value)
                regs[instr[1]] = value
            elif op == "move":
                regs[instr[1]] = regs[instr[2]]
            elif op == "free":
                regs[instr[1]] = free[instr[2]]
            elif op == "closure":
                _, dst, code_index, plan = instr
                regs[dst] = VMClosure(
                    codes[code_index],
                    [regs[i] if kind == "r" else free[i] for kind, i in plan],
                )
            elif op == "fix":
                group = instr[1]
                created = []
                for dst, code_index, plan in group:
                    vmclosure = VMClosure(codes[code_index], [None] * len(plan))
                    regs[dst] = vmclosure
                    created.append((vmclosure, plan))
                for vmclosure, plan in created:
                    for slot, (kind, i) in enumerate(plan):
                        vmclosure.free[slot] = regs[i] if kind == "r" else free[i]
            elif op == "jump":
                self.instructions = counted
                pc = instr[1]
                continue
            elif op in ("add", "sub", "mul"):
                _, dst, ra, rb, epc, ed = instr
                a, b = regs[ra], regs[rb]
                if type(a) is not int or type(b) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                result = a + b if op == "add" else a - b if op == "sub" else a * b
                if result < INT_MIN or result > INT_MAX:
                    regs[ed] = OVERFLOW
                    pc = epc
                    continue
                regs[dst] = result
            elif op in ("div", "rem"):
                _, dst, ra, rb, epc, ed = instr
                a, b = regs[ra], regs[rb]
                if type(a) is not int or type(b) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                if b == 0:
                    regs[ed] = ZERO_DIVIDE
                    pc = epc
                    continue
                result = int_div(a, b) if op == "div" else int_rem(a, b)
                if result < INT_MIN or result > INT_MAX:
                    regs[ed] = OVERFLOW
                    pc = epc
                    continue
                regs[dst] = result
            elif op in ("lt", "gt", "le", "ge"):
                _, ra, rb, else_pc = instr
                a, b = regs[ra], regs[rb]
                if type(a) is not int or type(b) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                taken = (
                    a < b if op == "lt" else a > b if op == "gt" else a <= b if op == "le" else a >= b
                )
                if not taken:
                    pc = else_pc
                    continue
            elif op in ("band", "bor", "bxor", "shl", "shr"):
                _, dst, ra, rb = instr
                a, b = regs[ra], regs[rb]
                if type(a) is not int or type(b) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                if op == "band":
                    regs[dst] = wrap_int(a & b)
                elif op == "bor":
                    regs[dst] = wrap_int(a | b)
                elif op == "bxor":
                    regs[dst] = wrap_int(a ^ b)
                elif op == "shl":
                    regs[dst] = wrap_int(a << (b % 64))
                else:
                    regs[dst] = wrap_int(a >> (b % 64))
            elif op == "bnot":
                a = regs[instr[2]]
                if type(a) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                regs[instr[1]] = wrap_int(~a)
            elif op == "c2i":
                a = regs[instr[2]]
                if not isinstance(a, Char):
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                regs[instr[1]] = a.code & 0xFF
            elif op == "i2c":
                a = regs[instr[2]]
                if type(a) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                regs[instr[1]] = Char(chr(a & 0xFF))
            elif op == "arr":
                regs[instr[1]] = TmlArray([regs[i] for i in instr[2]])
            elif op == "vec":
                regs[instr[1]] = TmlVector([regs[i] for i in instr[2]])
            elif op == "anew":
                n, init = regs[instr[2]], regs[instr[3]]
                if type(n) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                if n < 0:
                    self.instructions = counted
                    raise _VMTrap(BOUNDS_ERROR)
                regs[instr[1]] = TmlArray([init] * n)
            elif op == "bnew":
                n, init = regs[instr[2]], regs[instr[3]]
                if type(n) is not int or type(init) is not int:
                    self.instructions = counted
                    raise _VMTrap(TYPE_ERROR)
                if n < 0:
                    self.instructions = counted
                    raise _VMTrap(BOUNDS_ERROR)
                regs[instr[1]] = TmlByteArray(bytes([init & 0xFF]) * n)
            elif op == "aget":
                target, i = regs[instr[2]], regs[instr[3]]
                self.instructions = counted
                if isinstance(target, TmlArray):
                    slots = target.slots
                elif isinstance(target, TmlVector):
                    slots = target.slots
                else:
                    raise _VMTrap(TYPE_ERROR)
                if type(i) is not int or not 0 <= i < len(slots):
                    raise _VMTrap(BOUNDS_ERROR)
                regs[instr[1]] = slots[i]
            elif op == "aset":
                target, i, value = regs[instr[1]], regs[instr[2]], regs[instr[3]]
                self.instructions = counted
                if not isinstance(target, TmlArray):
                    raise _VMTrap(TYPE_ERROR)
                if type(i) is not int or not 0 <= i < len(target.slots):
                    raise _VMTrap(BOUNDS_ERROR)
                target.slots[i] = value
            elif op == "bget":
                target, i = regs[instr[2]], regs[instr[3]]
                self.instructions = counted
                if not isinstance(target, TmlByteArray):
                    raise _VMTrap(TYPE_ERROR)
                if type(i) is not int or not 0 <= i < len(target.data):
                    raise _VMTrap(BOUNDS_ERROR)
                regs[instr[1]] = target.data[i]
            elif op == "bset":
                target, i, value = regs[instr[1]], regs[instr[2]], regs[instr[3]]
                self.instructions = counted
                if not isinstance(target, TmlByteArray):
                    raise _VMTrap(TYPE_ERROR)
                if type(i) is not int or not 0 <= i < len(target.data):
                    raise _VMTrap(BOUNDS_ERROR)
                if type(value) is not int:
                    raise _VMTrap(TYPE_ERROR)
                target.data[i] = value & 0xFF
            elif op == "asize":
                target = regs[instr[2]]
                self.instructions = counted
                if isinstance(target, (TmlArray, TmlVector, TmlByteArray)):
                    regs[instr[1]] = len(target)
                else:
                    raise _VMTrap(TYPE_ERROR)
            elif op == "amove":
                self.instructions = counted
                self._move(regs, instr, bytes_mode=False)
            elif op == "bmove":
                self.instructions = counted
                self._move(regs, instr, bytes_mode=True)
            elif op == "case":
                _, rs, tag_regs, pcs, else_pc = instr
                scrutinee = regs[rs]
                target_pc = else_pc
                for tag_reg, branch_pc in zip(tag_regs, pcs):
                    if identical(scrutinee, regs[tag_reg]):
                        target_pc = branch_pc
                        break
                if target_pc is None:
                    self.instructions = counted
                    raise _VMTrap("caseError")
                pc = target_pc
                continue
            elif op == "tailcall":
                self.instructions = counted
                return regs[instr[1]], [regs[i] for i in instr[2]]
            elif op == "pushh":
                self.handlers.append(regs[instr[1]])
            elif op == "poph":
                if not self.handlers:
                    raise MachineError("popHandler on empty handler stack")
                self.handlers.pop()
            elif op == "raise":
                self.instructions = counted
                raise _VMTrap(regs[instr[1]])
            elif op == "ccall":
                _, dst, rf, rv, epc, ed = instr
                fn_name = regs[rf]
                argvec = regs[rv]
                self.instructions = counted
                if isinstance(fn_name, Char):
                    fn_name = fn_name.value
                if not isinstance(fn_name, str) or not isinstance(
                    argvec, (TmlArray, TmlVector)
                ):
                    raise _VMTrap(TYPE_ERROR)
                if profiler is not None:
                    profiler.primitives[f"ccall:{fn_name}"] += 1
                function = self.foreign.lookup(fn_name)
                try:
                    result = function(*argvec.slots)
                except Exception as error:
                    regs[ed] = f"foreignError: {error}"
                    pc = epc
                    continue
                regs[dst] = UNIT if result is None else result
            elif op == "extcall":
                _, name, dst, arg_regs, epc, ed = instr
                handler = EXT_OPS.get(name)
                self.instructions = counted
                if handler is None:
                    raise MachineError(f"no VM handler for extension primitive {name!r}")
                if profiler is not None:
                    profiler.primitives[f"extcall:{name}"] += 1
                try:
                    regs[dst] = handler(self, [regs[i] for i in arg_regs])
                except ExtRaise as ext:
                    counted = self.instructions  # nested calls were counted
                    if epc is None:
                        raise _VMTrap(ext.value) from None
                    regs[ed] = ext.value
                    pc = epc
                    continue
                # an extension handler may re-enter the VM (e.g. a query
                # predicate); pick up the instructions it executed
                counted = self.instructions
            elif op == "print":
                self.output.append(show_value(regs[instr[1]]))
            elif op == "halt":
                self.instructions = counted
                raise _VMHalt(regs[instr[1]])
            elif op == "trapc":
                self.instructions = counted
                raise _VMTrap(consts[instr[1]])
            else:  # pragma: no cover - defensive
                raise MachineError(f"unknown opcode {op!r}")

            pc += 1

    @staticmethod
    def _move(regs: list[Any], instr: tuple, bytes_mode: bool) -> None:
        dst, di, src, si, n = (regs[i] for i in instr[1:6])
        for index in (di, si, n):
            if type(index) is not int:
                raise _VMTrap(TYPE_ERROR)
        if bytes_mode:
            if not isinstance(dst, TmlByteArray) or not isinstance(src, TmlByteArray):
                raise _VMTrap(TYPE_ERROR)
            dst_len, src_len = len(dst.data), len(src.data)
        else:
            if not isinstance(dst, TmlArray):
                raise _VMTrap(TYPE_ERROR)
            if isinstance(src, TmlArray):
                source = src.slots
            elif isinstance(src, TmlVector):
                source = list(src.slots)
            else:
                raise _VMTrap(TYPE_ERROR)
            dst_len, src_len = len(dst.slots), len(source)
        if n < 0 or di < 0 or si < 0 or di + n > dst_len or si + n > src_len:
            raise _VMTrap(BOUNDS_ERROR)
        if bytes_mode:
            chunk = bytes(src.data[si : si + n])
            dst.data[di : di + n] = chunk
        else:
            chunk = list(source[si : si + n])
            dst.slots[di : di + n] = chunk
