"""Reference CPS interpreter for TML — the executable semantics oracle.

TML "has simple and clean semantics based on the λ-calculus ... effectively
a call-by-value λ-calculus with store semantics" (section 2.1).  This module
implements those semantics directly: a trampolined machine whose state is
the current application, an environment, a handler stack and the store.

The interpreter is the *oracle* for the whole repository: the optimizer must
preserve its observable behaviour (result, output, exception), and the TAM
virtual machine must agree with it — both properties are differential-tested.

Cost accounting mirrors the paper's "idealized abstract machine": each
primitive contributes its registered instruction cost, a user procedure call
costs :data:`PROC_CALL_COST`, a continuation invocation
:data:`CONT_CALL_COST`.  The asymmetry is the heart of the section 6
experiment — dynamically bound library calls pay call overhead that inlined
primitives do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.names import Name
from repro.core.syntax import Abs, App, Application, Char, Lit, Oid, PrimApp, UNIT, Var
from repro.primitives.arith import OVERFLOW, ZERO_DIVIDE, int_div, int_rem
from repro.primitives.registry import PrimitiveRegistry, default_registry
from repro.primitives._util import INT_MAX, INT_MIN, wrap_int
from repro.machine.runtime import (
    ARITY_ERROR,
    BOUNDS_ERROR,
    Closure,
    Env,
    FixReceiver,
    ForeignTable,
    Halted,
    MachineError,
    TYPE_ERROR,
    TmlArray,
    TmlByteArray,
    TmlVector,
    Trap,
    UncaughtTmlException,
    identical,
    show_value,
)

__all__ = [
    "Interpreter",
    "RunResult",
    "FuelExhausted",
    "PROC_CALL_COST",
    "CONT_CALL_COST",
]

#: Abstract-machine instructions charged for calling a user procedure
#: (closure fetch, argument transfer, frame setup, indirect jump).
PROC_CALL_COST = 6

#: Instructions charged for invoking a continuation (a goto with arguments).
CONT_CALL_COST = 2


class FuelExhausted(Exception):
    """The configured step budget ran out (used to bound property tests)."""


@dataclass(slots=True)
class RunResult:
    """Observable outcome of a TML execution."""

    value: Any
    steps: int
    cost: int
    output: list[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"RunResult(value={self.value!r}, steps={self.steps}, cost={self.cost})"


class _TopCont:
    """Sentinel continuations delimiting a top-level run."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        self.kind = kind  # "normal" | "exception"

    def __repr__(self) -> str:
        return f"<top-{self.kind}-continuation>"


class Interpreter:
    """A TML abstract machine instance.

    Args:
        registry: primitive registry (defaults to the Fig. 2 set).
        store: optional object store; literal OIDs resolve through it.
        foreign: the ``ccall`` function table.
        fuel: optional bound on interpreter steps.
    """

    def __init__(
        self,
        registry: PrimitiveRegistry | None = None,
        store=None,
        foreign: ForeignTable | None = None,
        fuel: int | None = None,
    ):
        self.registry = registry or default_registry()
        self.store = store
        self.foreign = foreign or ForeignTable()
        self.fuel = fuel
        self.steps = 0
        self.cost = 0
        self.output: list[str] = []
        self.handlers: list[Any] = []
        self._dispatch: dict[str, Callable] = dict(_PRIM_HANDLERS)

    # ------------------------------------------------------------------ API

    def run(self, app: Application, bindings: dict[Name, Any] | None = None) -> RunResult:
        """Execute an application until ``halt`` or a top continuation fires.

        Free variables of ``app`` must be covered by ``bindings``.
        """
        env = Env(dict(bindings or {}))
        return self._trampoline(app, env)

    def call(self, closure: Closure, args: list[Any]) -> RunResult:
        """Call a procedure closure, supplying top-level ce/cc continuations.

        ``closure`` must be a proc abstraction expecting ``len(args)`` value
        arguments plus the two continuations.
        """
        top_cc = _TopCont("normal")
        top_ce = _TopCont("exception")
        full_args = list(args) + [top_ce, top_cc]
        if closure.arity != len(full_args):
            raise MachineError(
                f"procedure expects {closure.arity} arguments "
                f"(incl. continuations), got {len(full_args)}"
            )
        env = Env(dict(zip(closure.abs.params, full_args)), closure.env)
        return self._trampoline(closure.abs.body, env)

    def make_closure(self, abs_node: Abs, bindings: dict[Name, Any] | None = None) -> Closure:
        """Close an abstraction over explicit bindings."""
        return Closure(abs_node, Env(dict(bindings or {})))

    # ------------------------------------------------------------ trampoline

    def _trampoline(self, current: Application, env: Env) -> RunResult:
        start_steps, start_cost = self.steps, self.cost
        start_output = len(self.output)
        try:
            while True:
                self.steps += 1
                if self.fuel is not None and self.steps - start_steps > self.fuel:
                    raise FuelExhausted(f"exceeded {self.fuel} steps")
                try:
                    current, env = self._step(current, env)
                except Trap as trap:
                    current, env = self._route_exception(trap.value)
        except Halted as halted:
            return RunResult(
                value=halted.value,
                steps=self.steps - start_steps,
                cost=self.cost - start_cost,
                output=self.output[start_output:],
            )

    def _step(self, current: Application, env: Env) -> tuple[Application, Env]:
        if isinstance(current, App):
            fn_value = self._value(current.fn, env)
            args = [self._value(arg, env) for arg in current.args]
            return self._enter(fn_value, args)
        return self._prim_step(current, env)

    def _value(self, node, env: Env) -> Any:
        if isinstance(node, Var):
            return env.lookup(node.name)
        if isinstance(node, Lit):
            payload = node.value
            if isinstance(payload, Oid) and self.store is not None:
                return self.store.load(payload)
            return payload
        if isinstance(node, Abs):
            return Closure(node, env)
        raise MachineError(f"not a value: {node!r}")

    def _enter(self, fn_value: Any, args: list[Any]) -> tuple[Application, Env]:
        if isinstance(fn_value, Closure):
            abs_node = fn_value.abs
            if len(abs_node.params) != len(args):
                raise Trap(ARITY_ERROR)
            self.cost += PROC_CALL_COST if abs_node.is_proc_abs else CONT_CALL_COST
            env = Env(dict(zip(abs_node.params, args)), fn_value.env)
            return abs_node.body, env
        if isinstance(fn_value, FixReceiver):
            return self._fix_backpatch(fn_value, args)
        if isinstance(fn_value, _TopCont):
            if len(args) != 1:
                raise MachineError("top continuation expects exactly one value")
            if fn_value.kind == "normal":
                raise Halted(args[0])
            raise UncaughtTmlException(args[0])
        raise Trap(TYPE_ERROR)

    def _fix_backpatch(self, receiver: FixReceiver, args: list[Any]) -> tuple[Application, Env]:
        if len(args) != len(receiver.names) + 1:
            raise MachineError("Y receiver called with wrong argument count")
        entry = args[0]
        receiver.frame[receiver.c0] = entry
        for name, value in zip(receiver.names, args[1:]):
            receiver.frame[name] = value
        self.cost += CONT_CALL_COST
        return self._enter(entry, [])

    def _route_exception(self, value: Any) -> tuple[Application, Env]:
        """Transfer control to the topmost dynamic handler (pop-and-invoke)."""
        if not self.handlers:
            raise UncaughtTmlException(value)
        handler = self.handlers.pop()
        return self._enter(handler, [value])

    # -------------------------------------------------------------- prims

    def _prim_step(self, current: PrimApp, env: Env) -> tuple[Application, Env]:
        name = current.prim
        if name == "Y":
            return self._prim_y(current, env)

        prim = self.registry.get(name)
        self.cost += prim.cost if prim is not None else 1

        handler = self._dispatch.get(name)
        if handler is None and prim is not None and prim.interp is not None:
            handler = prim.interp
        if handler is None:
            raise MachineError(f"no interpreter semantics for primitive {name!r}")

        args = [self._value(arg, env) for arg in current.args]
        cont, results = handler(self, args)
        return self._enter(cont, results)

    def _prim_y(self, current: PrimApp, env: Env) -> tuple[Application, Env]:
        """The fixpoint combinator: backpatching frame + receiver (section 2.3)."""
        self.cost += self.registry.lookup("Y").cost
        fix_value = self._value(current.args[0], env)
        if not isinstance(fix_value, Closure):
            raise MachineError("Y expects an abstraction argument")
        params = fix_value.abs.params
        if len(params) < 2:
            raise MachineError("Y fixpoint function must bind at least (c0 c)")
        c0, *vs, c = params
        frame: dict[Name, Any] = {}
        frame[c] = FixReceiver(frame, c0, tuple(vs))
        return fix_value.abs.body, Env(frame, fix_value.env)

    # ------------------------------------------------------------ utilities

    def trap(self, value: Any) -> None:
        raise Trap(value)

    def emit_output(self, value: Any) -> None:
        self.output.append(show_value(value))


# ---------------------------------------------------------------------------
# Primitive handlers.  Signature: handler(machine, evaluated_args) ->
# (continuation_value, result_values).  Traps are raised as Trap.
# ---------------------------------------------------------------------------


def _need_int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise Trap(TYPE_ERROR)
    return value


def _arith(op):
    def handler(machine, args):
        a, b, ce, cc = args
        left, right = _need_int(a), _need_int(b)
        try:
            result = op(left, right)
        except ZeroDivisionError:
            return ce, [ZERO_DIVIDE]
        if result < INT_MIN or result > INT_MAX:
            return ce, [OVERFLOW]
        return cc, [result]

    return handler


def _compare(op):
    def handler(machine, args):
        a, b, c_then, c_else = args
        return (c_then if op(_need_int(a), _need_int(b)) else c_else), []

    return handler


def _bitop(op):
    def handler(machine, args):
        a, b, cont = args
        return cont, [wrap_int(op(_need_int(a), _need_int(b)))]

    return handler


def _prim_bnot(machine, args):
    a, cont = args
    return cont, [wrap_int(~_need_int(a))]


def _prim_char2int(machine, args):
    value, cont = args
    if not isinstance(value, Char):
        raise Trap(TYPE_ERROR)
    return cont, [value.code & 0xFF]


def _prim_int2char(machine, args):
    value, cont = args
    return cont, [Char(chr(_need_int(value) & 0xFF))]


def _prim_array(machine, args):
    *values, cont = args
    return cont, [TmlArray(values)]


def _prim_vector(machine, args):
    *values, cont = args
    return cont, [TmlVector(values)]


def _prim_new(machine, args):
    count, init, cont = args
    n = _need_int(count)
    if n < 0:
        raise Trap(BOUNDS_ERROR)
    return cont, [TmlArray([init] * n)]


def _prim_bnew(machine, args):
    count, init, cont = args
    n = _need_int(count)
    byte = _need_int(init)
    if n < 0:
        raise Trap(BOUNDS_ERROR)
    return cont, [TmlByteArray(bytes([byte & 0xFF]) * n)]


def _slots(value) -> list | tuple:
    if isinstance(value, TmlArray):
        return value.slots
    if isinstance(value, TmlVector):
        return value.slots
    raise Trap(TYPE_ERROR)


def _prim_load(machine, args):
    target, index, cont = args
    slots = _slots(target)
    i = _need_int(index)
    if not 0 <= i < len(slots):
        raise Trap(BOUNDS_ERROR)
    return cont, [slots[i]]


def _prim_store(machine, args):
    target, index, value, cont = args
    if not isinstance(target, TmlArray):
        raise Trap(TYPE_ERROR)  # vectors are immutable
    i = _need_int(index)
    if not 0 <= i < len(target.slots):
        raise Trap(BOUNDS_ERROR)
    target.slots[i] = value
    return cont, [UNIT]


def _prim_bload(machine, args):
    target, index, cont = args
    if not isinstance(target, TmlByteArray):
        raise Trap(TYPE_ERROR)
    i = _need_int(index)
    if not 0 <= i < len(target.data):
        raise Trap(BOUNDS_ERROR)
    return cont, [target.data[i]]


def _prim_bstore(machine, args):
    target, index, value, cont = args
    if not isinstance(target, TmlByteArray):
        raise Trap(TYPE_ERROR)
    i = _need_int(index)
    if not 0 <= i < len(target.data):
        raise Trap(BOUNDS_ERROR)
    target.data[i] = _need_int(value) & 0xFF
    return cont, [UNIT]


def _prim_size(machine, args):
    target, cont = args
    if isinstance(target, (TmlArray, TmlVector)):
        return cont, [len(target)]
    if isinstance(target, TmlByteArray):
        return cont, [len(target)]
    raise Trap(TYPE_ERROR)


def _check_move_range(dst_len: int, di: int, src_len: int, si: int, n: int) -> None:
    if n < 0 or di < 0 or si < 0 or di + n > dst_len or si + n > src_len:
        raise Trap(BOUNDS_ERROR)


def _prim_move(machine, args):
    dst, di, src, si, n, cont = args
    if not isinstance(dst, TmlArray):
        raise Trap(TYPE_ERROR)
    source = _slots(src)
    di_i, si_i, n_i = _need_int(di), _need_int(si), _need_int(n)
    _check_move_range(len(dst.slots), di_i, len(source), si_i, n_i)
    chunk = list(source[si_i : si_i + n_i])
    dst.slots[di_i : di_i + n_i] = chunk
    return cont, [UNIT]


def _prim_bmove(machine, args):
    dst, di, src, si, n, cont = args
    if not isinstance(dst, TmlByteArray) or not isinstance(src, TmlByteArray):
        raise Trap(TYPE_ERROR)
    di_i, si_i, n_i = _need_int(di), _need_int(si), _need_int(n)
    _check_move_range(len(dst.data), di_i, len(src.data), si_i, n_i)
    chunk = bytes(src.data[si_i : si_i + n_i])
    dst.data[di_i : di_i + n_i] = chunk
    return cont, [UNIT]


def _prim_case(machine, args):
    # (== v tag1..tagn c1..cn [celse]) with nullary branch continuations
    total = len(args)
    has_else = (total % 2) == 0
    n = (total - 2) // 2 if has_else else (total - 1) // 2
    scrutinee = args[0]
    tags = args[1 : 1 + n]
    branches = args[1 + n : 1 + 2 * n]
    for tag, branch in zip(tags, branches):
        if identical(scrutinee, tag):
            return branch, []
    if has_else:
        return args[-1], []
    raise Trap("caseError")


def _prim_push_handler(machine, args):
    handler, cont = args
    machine.handlers.append(handler)
    return cont, []


def _prim_pop_handler(machine, args):
    (cont,) = args
    if not machine.handlers:
        raise MachineError("popHandler on empty handler stack")
    machine.handlers.pop()
    return cont, []


def _prim_raise(machine, args):
    (value,) = args
    raise Trap(value)


def _prim_ccall(machine, args):
    fn_name, argvec, ce, cc = args
    if isinstance(fn_name, Char):
        fn_name = fn_name.value
    if not isinstance(fn_name, str):
        raise Trap(TYPE_ERROR)
    if isinstance(argvec, (TmlArray, TmlVector)):
        call_args = list(argvec.slots)
    else:
        raise Trap(TYPE_ERROR)
    function = machine.foreign.lookup(fn_name)
    try:
        result = function(*call_args)
    except Exception as error:  # foreign failures surface at ce
        return ce, [f"foreignError: {error}"]
    return cc, [UNIT if result is None else result]


def _prim_print(machine, args):
    value, cont = args
    machine.emit_output(value)
    return cont, [UNIT]


def _prim_halt(machine, args):
    raise Halted(args[0])


_PRIM_HANDLERS: dict[str, Callable] = {
    "+": _arith(lambda a, b: a + b),
    "-": _arith(lambda a, b: a - b),
    "*": _arith(lambda a, b: a * b),
    "/": _arith(int_div),
    "%": _arith(int_rem),
    "<": _compare(lambda a, b: a < b),
    ">": _compare(lambda a, b: a > b),
    "<=": _compare(lambda a, b: a <= b),
    ">=": _compare(lambda a, b: a >= b),
    "band": _bitop(lambda a, b: a & b),
    "bor": _bitop(lambda a, b: a | b),
    "bxor": _bitop(lambda a, b: a ^ b),
    "shl": _bitop(lambda a, b: a << (b % 64)),
    "shr": _bitop(lambda a, b: a >> (b % 64)),
    "bnot": _prim_bnot,
    "char2int": _prim_char2int,
    "int2char": _prim_int2char,
    "array": _prim_array,
    "vector": _prim_vector,
    "new": _prim_new,
    "$new": _prim_bnew,
    "[]": _prim_load,
    "[]:=": _prim_store,
    "$[]": _prim_bload,
    "$[]:=": _prim_bstore,
    "size": _prim_size,
    "move": _prim_move,
    "$move": _prim_bmove,
    "==": _prim_case,
    "pushHandler": _prim_push_handler,
    "popHandler": _prim_pop_handler,
    "raise": _prim_raise,
    "ccall": _prim_ccall,
    "print": _prim_print,
    "halt": _prim_halt,
}
