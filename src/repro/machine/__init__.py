"""Execution substrates for TML.

Two consistent semantics:

* :mod:`repro.machine.cps_interp` — the direct CPS interpreter, the
  semantics oracle (call-by-value λ-calculus with store, section 2.1);
* :mod:`repro.machine.codegen` + :mod:`repro.machine.vm` — the Tycoon
  Abstract Machine back end: TML compiles to register bytecode with
  tail-call-only control flow.

Shared runtime values live in :mod:`repro.machine.runtime`.
"""

from repro.machine.codegen import CodegenError, compile_function
from repro.machine.cps_interp import Interpreter, RunResult
from repro.machine.isa import CodeObject, VMClosure, code_size
from repro.machine.runtime import (
    Closure,
    Env,
    ForeignTable,
    Halted,
    MachineError,
    TmlArray,
    TmlByteArray,
    TmlVector,
    Trap,
    UncaughtTmlException,
    show_value,
)
from repro.machine.vm import VM, VMResult, instantiate

__all__ = [
    "CodegenError",
    "compile_function",
    "Interpreter",
    "RunResult",
    "CodeObject",
    "VMClosure",
    "code_size",
    "Closure",
    "Env",
    "ForeignTable",
    "Halted",
    "MachineError",
    "TmlArray",
    "TmlByteArray",
    "TmlVector",
    "Trap",
    "UncaughtTmlException",
    "show_value",
    "VM",
    "VMResult",
    "instantiate",
]
