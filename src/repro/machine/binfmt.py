"""Compact binary encoding of TAM code — the "executable" bytes of E3.

The E3 experiment compares the size of executable code against the size of
code *plus* its persistent TML (the paper measured 600 kB vs 1.2 MB for the
full Tycoon system).  A fair comparison needs a realistically compact code
format, not a generic value dump: this module packs each instruction as a
one-byte opcode followed by varint operands, with interned string and
constant pools per code object — roughly what a native CPS back end emits.

The format round-trips (`decode_code(encode_code(c))` executes identically),
so it doubles as the on-disk representation for shipped code images.
"""

from __future__ import annotations

from typing import Any

from repro.machine.isa import CodeObject
from repro.store.serialize import Decoder, Encoder, SerializeError

__all__ = ["encode_code", "decode_code", "binary_code_size"]

#: stable opcode numbering for the TAM instruction set
_OPCODES = [
    "const", "move", "free", "closure", "fix", "jump",
    "add", "sub", "mul", "div", "rem",
    "lt", "gt", "le", "ge",
    "band", "bor", "bxor", "shl", "shr", "bnot",
    "c2i", "i2c",
    "arr", "vec", "anew", "bnew",
    "aget", "aset", "bget", "bset", "asize", "amove", "bmove",
    "case", "tailcall", "pushh", "poph", "raise", "ccall",
    "print", "halt", "trapc", "extcall",
]
_OP_INDEX = {name: index for index, name in enumerate(_OPCODES)}

# operand micro-tags
_O_INT = 0
_O_NONE = 1
_O_TUPLE = 2
_O_STR = 3
_O_PAIR = 4  # capture-plan entry ("r"|"f", index)


def _encode_operand(enc: Encoder, operand: Any, strings: dict[str, int]) -> None:
    if operand is None:
        enc.buf.append(_O_NONE)
    elif isinstance(operand, bool):
        raise SerializeError("boolean operand in instruction stream")
    elif isinstance(operand, int):
        enc.buf.append(_O_INT)
        enc.svarint(operand)
    elif isinstance(operand, str):
        enc.buf.append(_O_STR)
        enc.uvarint(_intern(strings, operand))
    elif isinstance(operand, tuple):
        if (
            len(operand) == 2
            and operand[0] in ("r", "f")
            and isinstance(operand[1], int)
        ):
            enc.buf.append(_O_PAIR)
            enc.buf.append(0 if operand[0] == "r" else 1)
            enc.uvarint(operand[1])
        else:
            enc.buf.append(_O_TUPLE)
            enc.uvarint(len(operand))
            for item in operand:
                _encode_operand(enc, item, strings)
    else:
        raise SerializeError(f"unencodable operand {operand!r}")


def _decode_operand(dec: Decoder, strings: list[str]) -> Any:
    tag = dec.byte()
    if tag == _O_NONE:
        return None
    if tag == _O_INT:
        return dec.svarint()
    if tag == _O_STR:
        return strings[dec.uvarint()]
    if tag == _O_PAIR:
        kind = "r" if dec.byte() == 0 else "f"
        return (kind, dec.uvarint())
    if tag == _O_TUPLE:
        return tuple(_decode_operand(dec, strings) for _ in range(dec.uvarint()))
    raise SerializeError(f"bad operand tag {tag}")


def _intern(strings: dict[str, int], text: str) -> int:
    index = strings.get(text)
    if index is None:
        index = len(strings)
        strings[text] = index
    return index


def encode_code(code: CodeObject) -> bytes:
    """Pack a code object tree into compact binary form (PTML refs omitted).

    Only the *root* carries its full free-name table (needed to link the
    function into an image); nested closures capture positionally, so their
    parameter and free-variable names are not load-bearing and are stored as
    counts — as a native image would.
    """
    enc = Encoder()
    _encode_one(enc, code, root=True)
    return enc.getvalue()


def _encode_one(enc: Encoder, code: CodeObject, root: bool) -> None:
    strings: dict[str, int] = {}
    body = Encoder()
    body.uvarint(len(code.instrs))
    for instr in code.instrs:
        op = instr[0]
        opcode = _OP_INDEX.get(op)
        if opcode is None:
            raise SerializeError(f"unknown opcode {op!r}")
        body.buf.append(opcode)
        body.uvarint(len(instr) - 1)
        for operand in instr[1:]:
            _encode_operand(body, operand, strings)

    if root:
        enc.text(code.name)
    enc.uvarint(len(code.params))
    if code.params:
        # continuation-parameter sorts matter for the proc/cont distinction
        enc.uvarint(sum(1 for p in code.params if p.is_cont))
    enc.uvarint(code.nregs)
    enc.buf.append(1 if code.is_proc else 0)
    enc.uvarint(len(strings))
    for text in sorted(strings, key=strings.get):
        enc.text(text)
    enc.raw(bytes(body.buf))
    enc.value(tuple(code.consts))
    if root:
        enc.value(tuple(code.free_names))
    else:
        enc.uvarint(len(code.free_names))
    enc.uvarint(len(code.codes))
    for nested in code.codes:
        _encode_one(enc, nested, root=False)


def decode_code(data: bytes) -> CodeObject:
    dec = Decoder(data)
    counter = [0]
    code = _decode_one(dec, root=True, counter=counter)
    if dec.pos != len(data):
        raise SerializeError("trailing bytes after code image")
    return code


def _decode_one(dec: Decoder, root: bool, counter: list[int]) -> CodeObject:
    from repro.core.names import Name

    name = dec.text() if root else "anon"
    nparams = dec.uvarint()
    nconts = dec.uvarint() if nparams else 0
    # synthetic parameter names: only arity and continuation sorts matter
    params = tuple(
        Name(
            f"p{index}",
            _fresh_uid(counter),
            "cont" if index >= nparams - nconts else "val",
        )
        for index in range(nparams)
    )
    nregs = dec.uvarint()
    is_proc = bool(dec.byte())
    strings = [dec.text() for _ in range(dec.uvarint())]
    body = Decoder(dec.raw())
    instrs = []
    for _ in range(body.uvarint()):
        opcode = body.byte()
        if opcode >= len(_OPCODES):
            raise SerializeError(f"bad opcode {opcode}")
        count = body.uvarint()
        operands = tuple(_decode_operand(body, strings) for _ in range(count))
        instrs.append((_OPCODES[opcode],) + operands)
    consts = list(dec.value())
    if root:
        free_names = dec.value()
    else:
        free_names = tuple(
            Name(f"v{index}", _fresh_uid(counter)) for index in range(dec.uvarint())
        )
    codes = [_decode_one(dec, root=False, counter=counter) for _ in range(dec.uvarint())]
    return CodeObject(
        name=name,
        params=params,
        nregs=nregs,
        instrs=instrs,
        consts=consts,
        codes=codes,
        free_names=free_names,
        is_proc=is_proc,
        ptml_ref=None,
    )


def _fresh_uid(counter: list[int]) -> int:
    counter[0] += 1
    return counter[0]


def binary_code_size(code: CodeObject) -> int:
    """Bytes of the packed executable image (the E3 'code' measure)."""
    return len(encode_code(code))
