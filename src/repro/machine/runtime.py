"""Runtime value representations shared by the CPS interpreter and the TAM VM.

TML has call-by-value λ-calculus semantics over an implicit store (paper
section 2.1).  The runtime universe:

* simple values — 64-bit integers, booleans, characters, strings, unit;
* store objects — mutable arrays, immutable vectors, byte arrays;
* procedures — interpreter closures or compiled TAM closures;
* OIDs — resolved against a persistent object store when one is attached.

Traps (array bounds, bad element types, uncaught raises) and program
termination are modelled as Python exceptions that the machine loops catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Protocol

from repro.core.names import Name
from repro.core.syntax import Abs, Char, Oid, Unit

__all__ = [
    "TmlArray",
    "TmlVector",
    "TmlByteArray",
    "Env",
    "Closure",
    "FixReceiver",
    "ForeignTable",
    "ObjectResolver",
    "Trap",
    "Halted",
    "UncaughtTmlException",
    "MachineError",
    "show_value",
    "BOUNDS_ERROR",
    "TYPE_ERROR",
    "ARITY_ERROR",
]

#: Exception payloads used for runtime traps.
BOUNDS_ERROR = "boundsError"
TYPE_ERROR = "typeError"
ARITY_ERROR = "arityError"


class TmlArray:
    """A mutable array of object references (the ``array``/``new`` primitives)."""

    __slots__ = ("slots",)

    def __init__(self, slots: Iterable[Any]):
        self.slots = list(slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        return f"TmlArray({self.slots!r})"


class TmlVector:
    """An immutable array (the ``vector`` primitive).

    Being immutable, vectors get structural (Python-level) equality; the
    TML ``==`` primitive still compares store objects by identity — see
    :func:`identical`.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: Iterable[Any]):
        self.slots = tuple(slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TmlVector) and other.slots == self.slots

    def __hash__(self) -> int:
        return hash(self.slots)

    def __repr__(self) -> str:
        return f"TmlVector({self.slots!r})"


class TmlByteArray:
    """A mutable byte array (the ``$new``/``$[]`` primitives)."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray | bytes | Iterable[int]):
        self.data = bytearray(data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"TmlByteArray({bytes(self.data)!r})"


class Env:
    """A lexical environment: one frame of bindings plus a parent link.

    Frames are plain dicts keyed by :class:`Name`; the Y combinator
    backpatches a frame in place to tie recursive knots (Landin's knot).
    """

    __slots__ = ("frame", "parent")

    def __init__(self, frame: dict[Name, Any] | None = None, parent: "Env | None" = None):
        self.frame = frame if frame is not None else {}
        self.parent = parent

    def lookup(self, name: Name) -> Any:
        env: Env | None = self
        while env is not None:
            frame = env.frame
            if name in frame:
                return frame[name]
            env = env.parent
        raise MachineError(f"unbound variable {name}")

    def extend(self, names: Iterable[Name], values: Iterable[Any]) -> "Env":
        return Env(dict(zip(names, values)), self)

    def flatten(self) -> dict[Name, Any]:
        """All visible bindings (inner frames win); used by reflection."""
        chain: list[Env] = []
        env: Env | None = self
        while env is not None:
            chain.append(env)
            env = env.parent
        merged: dict[Name, Any] = {}
        for frame_env in reversed(chain):
            merged.update(frame_env.frame)
        return merged


@dataclass(slots=True)
class Closure:
    """An interpreter closure: an abstraction together with its environment."""

    abs: Abs
    env: Env

    @property
    def arity(self) -> int:
        return len(self.abs.params)

    def __repr__(self) -> str:
        params = " ".join(str(p) for p in self.abs.params)
        return f"<closure λ({params})>"


@dataclass(slots=True)
class FixReceiver:
    """The continuation the Y primitive binds to ``c`` (paper section 2.3).

    Invoking it with ``(entry, f1..fn)`` backpatches the fixpoint frame and
    transfers control to the entry continuation.
    """

    frame: dict
    c0: Name
    names: tuple[Name, ...]

    def __repr__(self) -> str:
        return f"<fix-receiver {len(self.names)} binding(s)>"


class ForeignTable:
    """The ``ccall`` target world: named Python callables.

    Substitutes for the original system's C functions while preserving the
    contract: opaque, unknown effects, may fail.
    """

    def __init__(self, functions: Mapping[str, Callable] | None = None):
        self._functions: dict[str, Callable] = dict(functions or {})

    def register(self, name: str, function: Callable) -> None:
        self._functions[name] = function

    def lookup(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            raise MachineError(f"unknown foreign function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions


class ObjectResolver(Protocol):
    """What a machine needs from the persistent store: OID resolution."""

    def load(self, oid: Oid) -> Any:  # pragma: no cover - protocol
        ...


class Trap(Exception):
    """A runtime trap (bounds error, type error); routed to the handler stack."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


class ExtRaise(Exception):
    """An extension primitive delivering a value to its exception continuation.

    Raised by handlers of registry-extension primitives (e.g. a query
    predicate raising inside ``select``); both machines route it to the
    primitive's ``ce`` argument rather than the dynamic handler stack.
    """

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


class Halted(Exception):
    """Raised by the ``halt`` primitive to deliver the final program result."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


class UncaughtTmlException(Exception):
    """A ``raise`` (or trap) with an empty handler stack."""

    def __init__(self, value: Any):
        super().__init__(show_value(value))
        self.value = value


class MachineError(Exception):
    """An internal invariant violation (ill-formed code reached the machine)."""


def show_value(value: Any) -> str:
    """Human-readable rendering of a runtime value (used by ``print``)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Char):
        return value.value
    if isinstance(value, str):
        return value
    if isinstance(value, Unit):
        return "unit"
    if isinstance(value, TmlArray):
        return "[" + " ".join(show_value(v) for v in value.slots) + "]"
    if isinstance(value, TmlVector):
        return "#[" + " ".join(show_value(v) for v in value.slots) + "]"
    if isinstance(value, TmlByteArray):
        return "$[" + " ".join(str(b) for b in value.data) + "]"
    if isinstance(value, Oid):
        return str(value)
    return repr(value)


def identical(left: Any, right: Any) -> bool:
    """Object identity as used by the ``==`` primitive.

    Simple values compare by value (within the same type); store objects by
    Python identity, which models OID equality.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, int) and isinstance(right, int):
        return left == right
    if isinstance(left, Char) and isinstance(right, Char):
        return left.value == right.value
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, Unit) and isinstance(right, Unit):
        return True
    if isinstance(left, Oid) and isinstance(right, Oid):
        return left.value == right.value
    return left is right
