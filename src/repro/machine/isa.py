"""Instruction set of the Tycoon Abstract Machine (TAM).

The back-end target substituting for the paper's native code generator: a
register-based bytecode machine with CPS-faithful control (there is no call
stack — every transfer is a tail call, matching "a generalized goto with
parameter passing", section 2.1).

A :class:`CodeObject` is the compiled form of one TML abstraction that is
*materialized* as a closure (user procedures, escaping continuations,
recursive Y-group members).  Abstractions that are only ever entered
directly — continuation arguments of primitives, branch continuations,
directly-applied λs — are compiled inline into their parent's instruction
stream, so straight-line TL code becomes straight-line bytecode.

Instructions are tuples ``(op, operand...)``.  Operand kinds: ``r`` register
index, ``c`` constant-pool index, ``k`` nested-code index, ``pc`` jump
target, ``plan`` closure-capture plan.

====================  =====================================================
instruction            meaning
====================  =====================================================
(const d c)            regs[d] = consts[c]
(move d s)             regs[d] = regs[s]
(free d f)             regs[d] = closure.free[f]
(closure d k plan)     regs[d] = new closure of codes[k], captured per plan
(fix group)            create mutually recursive closures, then patch
(jump pc)              transfer within this code object
(add d a b epc ed)     regs[d]=a+b; overflow: regs[ed]=err, jump epc
(sub/mul/div/rem ...)  likewise (div/rem also trap zeroDivide via epc)
(lt/gt/le/ge a b pc)   fallthrough when true, jump pc when false
(band/bor/bxor/shl/shr d a b)   bit operations
(bnot d a)             bitwise complement
(c2i d a) (i2c d a)    char/int conversions
(arr d regs)           regs[d] = mutable array of operand registers
(vec d regs)           regs[d] = immutable vector
(anew d n i)           array of size regs[n] filled with regs[i]
(bnew d n i)           byte array
(aget d a i)           indexed load   (traps boundsError)
(aset a i v)           indexed store
(bget d a i) (bset a i v)   byte array access
(asize d a)            size in slots
(amove d di s si n)    block move         (traps boundsError)
(bmove d di s si n)    byte block move
(case s tagregs pcs epc)  identity dispatch; epc may be None (trap)
(tailcall f args)      enter closure regs[f] with operand registers
(pushh h) (poph)       handler stack
(raise v)              raise regs[v] to the dynamic handler stack
(ccall d f a epc ed)   foreign call; result in d or error in ed + jump
(print v)              emit regs[v] to the output channel
(halt v)               stop, delivering regs[v]
(trapc c)              raise consts[c] (compiled trap, e.g. caseError)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.names import Name

__all__ = [
    "Label",
    "CodeObject",
    "VMClosure",
    "OpTraits",
    "OPCODE_TRAITS",
    "code_size",
    "flatten_codes",
]


@dataclass(frozen=True, slots=True)
class OpTraits:
    """Static execution properties of one opcode, as the VM implements it.

    The single authoritative description of each instruction's control and
    observability behavior, shared by the abstract interpreter
    (:mod:`repro.analysis.absint`), the fusion-safety certifier
    (:mod:`repro.analysis.fusion`) and the bytecode verifier.  Every claim
    here is checkable against :meth:`repro.machine.vm.VM._execute`; the
    fusion test suite re-derives the safety-relevant bits empirically.
    """

    #: control never falls through to pc+1 (tailcall, halt, raise, ...)
    terminal: bool = False
    #: has a pc operand it may transfer to (comparisons, error edges, case)
    branches: bool = False
    #: may leave the instruction stream via a TML trap (typeError,
    #: boundsError, ...) or a MachineError — i.e. executing it can observe
    #: machine state other than its own operands
    can_trap: bool = False
    #: mutates heap-visible state (arrays / byte arrays) other sessions or
    #: later instructions can read
    writes_memory: bool = False
    #: emits to an observable channel (the output list)
    observable: bool = False
    #: net change to the dynamic handler-stack depth
    handler_delta: int = 0


#: opcode -> :class:`OpTraits`.  ``const`` may load from the store but can
#: neither trap nor branch; ``poph`` on an empty stack is a MachineError, so
#: it counts as trapping.  Terminal opcodes are trivially "branching" for the
#: purposes of fusion (control leaves the pair), so certifiers must check
#: both flags.
OPCODE_TRAITS: dict[str, OpTraits] = {
    "const": OpTraits(),
    "move": OpTraits(),
    "free": OpTraits(),
    "closure": OpTraits(),
    "fix": OpTraits(),
    "jump": OpTraits(terminal=True, branches=True),
    "add": OpTraits(branches=True, can_trap=True),
    "sub": OpTraits(branches=True, can_trap=True),
    "mul": OpTraits(branches=True, can_trap=True),
    "div": OpTraits(branches=True, can_trap=True),
    "rem": OpTraits(branches=True, can_trap=True),
    "lt": OpTraits(branches=True, can_trap=True),
    "gt": OpTraits(branches=True, can_trap=True),
    "le": OpTraits(branches=True, can_trap=True),
    "ge": OpTraits(branches=True, can_trap=True),
    "band": OpTraits(can_trap=True),
    "bor": OpTraits(can_trap=True),
    "bxor": OpTraits(can_trap=True),
    "shl": OpTraits(can_trap=True),
    "shr": OpTraits(can_trap=True),
    "bnot": OpTraits(can_trap=True),
    "c2i": OpTraits(can_trap=True),
    "i2c": OpTraits(can_trap=True),
    "arr": OpTraits(),
    "vec": OpTraits(),
    "anew": OpTraits(can_trap=True),
    "bnew": OpTraits(can_trap=True),
    "aget": OpTraits(can_trap=True),
    "aset": OpTraits(can_trap=True, writes_memory=True),
    "bget": OpTraits(can_trap=True),
    "bset": OpTraits(can_trap=True, writes_memory=True),
    "asize": OpTraits(can_trap=True),
    "amove": OpTraits(can_trap=True, writes_memory=True),
    "bmove": OpTraits(can_trap=True, writes_memory=True),
    "case": OpTraits(terminal=True, branches=True, can_trap=True),
    "tailcall": OpTraits(terminal=True, can_trap=True),
    "pushh": OpTraits(handler_delta=1),
    "poph": OpTraits(can_trap=True, handler_delta=-1),
    "raise": OpTraits(terminal=True, can_trap=True),
    "ccall": OpTraits(branches=True, can_trap=True, observable=True),
    "extcall": OpTraits(branches=True, can_trap=True, observable=True),
    "print": OpTraits(observable=True),
    "halt": OpTraits(terminal=True),
    "trapc": OpTraits(terminal=True, can_trap=True),
}


class Label:
    """A forward-reference jump target, resolved to a pc at assembly time."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: int | None = None

    def __repr__(self) -> str:
        return f"<label pc={self.pc}>"


@dataclass(slots=True)
class CodeObject:
    """Compiled form of one materialized TML abstraction."""

    name: str
    params: tuple[Name, ...]
    nregs: int = 0
    instrs: list[tuple] = field(default_factory=list)
    consts: list[Any] = field(default_factory=list)
    codes: list["CodeObject"] = field(default_factory=list)
    #: the free variables this closure captures, in slot order
    free_names: tuple[Name, ...] = ()
    is_proc: bool = False
    #: OID of the persistent TML (PTML) blob for this function, when the
    #: compiler attached one (paper section 4.1: "the compiler back end
    #: augments the generated code ... with a reference to a compact
    #: persistent representation of the TML tree").
    ptml_ref: Any = None

    @property
    def arity(self) -> int:
        return len(self.params)

    def disassemble(self, indent: str = "") -> str:
        """Human-readable listing (nested code objects included)."""
        lines = [
            f"{indent}code {self.name} params={len(self.params)} "
            f"regs={self.nregs} free={[str(n) for n in self.free_names]}"
        ]
        for pc, instr in enumerate(self.instrs):
            lines.append(f"{indent}  {pc:4d}  {instr}")
        for index, nested in enumerate(self.codes):
            lines.append(f"{indent}  .code[{index}]:")
            lines.append(nested.disassemble(indent + "    "))
        return "\n".join(lines)


class VMClosure:
    """A runtime closure: code plus captured free-variable cells.

    ``free`` is a list (not tuple) because the ``fix`` instruction patches
    the cells of mutually recursive closures after creating the whole group.
    """

    __slots__ = ("code", "free")

    def __init__(self, code: CodeObject, free: list):
        self.code = code
        self.free = free

    @property
    def arity(self) -> int:
        return len(self.code.params)

    def __repr__(self) -> str:
        return f"<vmclosure {self.code.name}/{self.arity}>"


def flatten_codes(root: CodeObject) -> list[CodeObject]:
    """The code object and all nested ones, preorder."""
    out: list[CodeObject] = []
    stack = [root]
    while stack:
        code = stack.pop()
        out.append(code)
        stack.extend(reversed(code.codes))
    return out


def code_size(root: CodeObject) -> int:
    """Total instruction count across a code object tree.

    The unit of the E3 code-size experiment's "executable code" side.
    """
    return sum(len(code.instrs) for code in flatten_codes(root))
