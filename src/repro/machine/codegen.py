"""TML → TAM code generation.

Compiles a TML procedure abstraction into a :class:`CodeObject` tree.  The
compilation strategy follows classic CPS back ends (ORBIT, Appel):

* abstractions entered directly — continuation arguments of primitives,
  branch continuations, directly applied λs — are *inlined* into the parent
  instruction stream (a continuation is just a join point / basic block);
* abstractions used as values — user procedures, continuations passed to
  user calls, Y-group members — are *materialized* as nested code objects
  with flat closures (explicit capture plans);
* the Y combinator compiles to a ``fix`` instruction that creates the whole
  recursive closure group and backpatches the capture cells.

Every primitive supplies its code generation function (paper section 2.3,
item 1): the built-in Fig. 2 set lives in the ``_EMITTERS`` table here;
extension primitives (e.g. the relational algebra of the query subsystem)
attach emitters through :meth:`PrimitiveRegistry.set_emitter`.
"""

from __future__ import annotations

from typing import Any

from repro.core.names import Name
from repro.core.occurrences import count as count_occurrences
from repro.core.syntax import Abs, App, Application, Lit, PrimApp, UNIT, Var
from repro.machine.isa import CodeObject, Label
from repro.primitives.registry import PrimitiveRegistry, default_registry

__all__ = ["CodegenError", "compile_function"]


class CodegenError(Exception):
    """The code generator met a construct the front end should not emit."""


def compile_function(
    abs_node: Abs,
    registry: PrimitiveRegistry | None = None,
    name: str = "fn",
) -> CodeObject:
    """Compile a TML abstraction into an executable code object.

    ``abs_node``'s free variables become the closure's capture list; the
    caller (the linker or the VM embedding) supplies their values when the
    closure is instantiated — see :func:`repro.machine.vm.instantiate`.
    """
    registry = registry or default_registry()
    compiler = _FnCompiler(abs_node, parent=None, name=name, registry=registry)
    return compiler.compile()


class _FnCompiler:
    """Compiles one materialized abstraction; children recurse."""

    def __init__(
        self,
        abs_node: Abs,
        parent: "_FnCompiler | None",
        name: str,
        registry: PrimitiveRegistry,
    ):
        self.abs_node = abs_node
        self.parent = parent
        self.registry = registry
        self.code = CodeObject(
            name=name,
            params=abs_node.params,
            is_proc=abs_node.is_proc_abs,
        )
        self.reg_of: dict[Name, int] = {
            param: index for index, param in enumerate(abs_node.params)
        }
        self.nreg = len(abs_node.params)
        self.free_slot: dict[Name, int] = {}
        self._const_index: dict[tuple, int] = {}
        #: deferred basic blocks: (label, continuation value, result regs)
        self._blocks: list[tuple[Label, Any, list[int]]] = []

    # ------------------------------------------------------------ plumbing

    def fresh_reg(self) -> int:
        reg = self.nreg
        self.nreg += 1
        return reg

    def emit(self, *instr) -> None:
        self.code.instrs.append(tuple(instr))

    def const_index(self, payload) -> int:
        key = (type(payload).__name__, payload)
        index = self._const_index.get(key)
        if index is None:
            index = len(self.code.consts)
            self.code.consts.append(payload)
            self._const_index[key] = index
        return index

    # ------------------------------------------------------- value sources

    def value_reg(self, value) -> int:
        """Materialize a TML value into a register."""
        if isinstance(value, Var):
            return self._var_reg(value.name)
        if isinstance(value, Lit):
            dst = self.fresh_reg()
            self.emit("const", dst, self.const_index(value.value))
            return dst
        if isinstance(value, Abs):
            return self._materialize(value)
        raise CodegenError(f"not a value: {value!r}")

    def _var_reg(self, name: Name) -> int:
        reg = self.reg_of.get(name)
        if reg is not None:
            return reg
        slot = self._free_slot_of(name)
        dst = self.fresh_reg()
        # A fresh load per use: the load must sit in the basic block that
        # uses it — caching the register would leave it unloaded on paths
        # that jump around the original load.
        self.emit("free", dst, slot)
        return dst

    def _free_slot_of(self, name: Name) -> int:
        slot = self.free_slot.get(name)
        if slot is None:
            if self.parent is None and not self._known_free(name):
                raise CodegenError(f"unbound variable {name} reaches code generation")
            slot = len(self.free_slot)
            self.free_slot[name] = slot
        return slot

    def _known_free(self, name: Name) -> bool:
        # the root compiler accepts free names: they become the function's
        # capture list, to be supplied at instantiation time
        return True

    def capture_source(self, name: Name) -> tuple[str, int]:
        """How the *parent* obtains ``name`` when creating a child closure."""
        reg = self.reg_of.get(name)
        if reg is not None:
            return ("r", reg)
        return ("f", self._free_slot_of(name))

    def _materialize(self, abs_node: Abs, name_hint: str = "anon") -> int:
        child = _FnCompiler(abs_node, self, name_hint, self.registry)
        child.compile()
        code_index = len(self.code.codes)
        self.code.codes.append(child.code)
        plan = tuple(self.capture_source(n) for n in child.code.free_names)
        dst = self.fresh_reg()
        self.emit("closure", dst, code_index, plan)
        return dst

    # --------------------------------------------------------- compilation

    def compile(self) -> CodeObject:
        self.compile_app(self.abs_node.body)
        while self._blocks:
            label, cont_value, result_regs = self._blocks.pop()
            label.pc = len(self.code.instrs)
            self.continue_with(cont_value, result_regs)
        self._finalize_labels()
        self.code.nregs = self.nreg
        self.code.free_names = tuple(
            sorted(self.free_slot, key=lambda n: self.free_slot[n])
        )
        return self.code

    def _finalize_labels(self) -> None:
        def resolve(operand):
            if isinstance(operand, Label):
                if operand.pc is None:
                    raise CodegenError("unresolved label")
                return operand.pc
            if isinstance(operand, tuple):
                return tuple(resolve(o) for o in operand)
            return operand

        self.code.instrs = [
            tuple(resolve(o) for o in instr) for instr in self.code.instrs
        ]

    def compile_app(self, app: Application) -> None:
        if isinstance(app, App):
            if isinstance(app.fn, Abs):
                # direct application: bind arguments, continue inline
                if len(app.fn.params) != len(app.args):
                    raise CodegenError("direct application arity mismatch")
                regs = [self.value_reg(arg) for arg in app.args]
                for param, reg in zip(app.fn.params, regs):
                    self.reg_of[param] = reg
                self.compile_app(app.fn.body)
                return
            fn_reg = self.value_reg(app.fn)
            arg_regs = tuple(self.value_reg(arg) for arg in app.args)
            self.emit("tailcall", fn_reg, arg_regs)
            return

        assert isinstance(app, PrimApp)
        emitter = _EMITTERS.get(app.prim)
        if emitter is not None:
            emitter(self, app)
            return
        prim = self.registry.get(app.prim)
        if prim is not None and prim.emit is not None:
            prim.emit(self, app)
            return
        raise CodegenError(f"no code generation for primitive {app.prim!r}")

    # -------------------------------------------------- continuation wiring

    def continue_with(self, cont_value, result_regs: list[int]) -> None:
        """Deliver results to a continuation value; inline when literal."""
        if isinstance(cont_value, Abs):
            if len(cont_value.params) != len(result_regs):
                raise CodegenError("continuation arity mismatch")
            for param, reg in zip(cont_value.params, result_regs):
                self.reg_of[param] = reg
            self.compile_app(cont_value.body)
            return
        if isinstance(cont_value, Var):
            fn_reg = self._var_reg(cont_value.name)
            self.emit("tailcall", fn_reg, tuple(result_regs))
            return
        raise CodegenError("literal in continuation position")

    def block(self, cont_value, result_regs: list[int]) -> Label:
        """A jump target that delivers ``result_regs`` to ``cont_value``."""
        label = Label()
        self._blocks.append((label, cont_value, result_regs))
        return label

    def unit_reg(self) -> int:
        dst = self.fresh_reg()
        self.emit("const", dst, self.const_index(UNIT))
        return dst


# ---------------------------------------------------------------------------
# Built-in emitters (paper section 2.3 item 1, for the Fig. 2 primitives)
# ---------------------------------------------------------------------------


def _emit_arith(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        a, b, ce, cc = app.args
        ra, rb = c.value_reg(a), c.value_reg(b)
        dst, err = c.fresh_reg(), c.fresh_reg()
        exc = c.block(ce, [err])
        c.emit(op, dst, ra, rb, exc, err)
        c.continue_with(cc, [dst])

    return emitter


def _emit_compare(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        a, b, c_then, c_else = app.args
        ra, rb = c.value_reg(a), c.value_reg(b)
        else_pc = c.block(c_else, [])
        c.emit(op, ra, rb, else_pc)
        c.continue_with(c_then, [])

    return emitter


def _emit_bits(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        a, b, cont = app.args
        ra, rb = c.value_reg(a), c.value_reg(b)
        dst = c.fresh_reg()
        c.emit(op, dst, ra, rb)
        c.continue_with(cont, [dst])

    return emitter


def _emit_unary(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        a, cont = app.args
        ra = c.value_reg(a)
        dst = c.fresh_reg()
        c.emit(op, dst, ra)
        c.continue_with(cont, [dst])

    return emitter


def _emit_alloc(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        *values, cont = app.args
        regs = tuple(c.value_reg(v) for v in values)
        dst = c.fresh_reg()
        c.emit(op, dst, regs)
        c.continue_with(cont, [dst])

    return emitter


def _emit_sized_alloc(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        n, init, cont = app.args
        rn, ri = c.value_reg(n), c.value_reg(init)
        dst = c.fresh_reg()
        c.emit(op, dst, rn, ri)
        c.continue_with(cont, [dst])

    return emitter


def _emit_load(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        target, index, cont = app.args
        rt, ri = c.value_reg(target), c.value_reg(index)
        dst = c.fresh_reg()
        c.emit(op, dst, rt, ri)
        c.continue_with(cont, [dst])

    return emitter


def _emit_store(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        target, index, value, cont = app.args
        rt, ri, rv = c.value_reg(target), c.value_reg(index), c.value_reg(value)
        c.emit(op, rt, ri, rv)
        c.continue_with(cont, [c.unit_reg()])

    return emitter


def _emit_size(c: _FnCompiler, app: PrimApp) -> None:
    target, cont = app.args
    rt = c.value_reg(target)
    dst = c.fresh_reg()
    c.emit("asize", dst, rt)
    c.continue_with(cont, [dst])


def _emit_move(op: str):
    def emitter(c: _FnCompiler, app: PrimApp) -> None:
        dst_v, di, src_v, si, n, cont = app.args
        regs = [c.value_reg(v) for v in (dst_v, di, src_v, si, n)]
        c.emit(op, *regs)
        c.continue_with(cont, [c.unit_reg()])

    return emitter


def _emit_case(c: _FnCompiler, app: PrimApp) -> None:
    from repro.primitives.control import case_parts

    scrutinee, tags, branches, else_branch = case_parts(app)
    rs = c.value_reg(scrutinee)
    tag_regs = tuple(c.value_reg(tag) for tag in tags)
    branch_pcs = tuple(c.block(branch, []) for branch in branches)
    else_pc = c.block(else_branch, []) if else_branch is not None else None
    c.emit("case", rs, tag_regs, branch_pcs, else_pc)


def _emit_y(c: _FnCompiler, app: PrimApp) -> None:
    """Compile ``(Y λ(c0 v1..vn c) (c entry abs1..absn))`` to a fix group."""
    fixfun = app.args[0]
    if not isinstance(fixfun, Abs) or len(fixfun.params) < 2:
        raise CodegenError("Y expects a fixpoint abstraction λ(c0 v1..vn c)")
    c0, *vs, cname = fixfun.params
    body = fixfun.body
    if not (
        isinstance(body, App)
        and isinstance(body.fn, Var)
        and body.fn.name == cname
        and len(body.args) == len(vs) + 1
    ):
        raise CodegenError("Y fixpoint body must be (c entry abs1..absn)")
    entry, *abses = body.args
    if not all(isinstance(a, Abs) for a in abses):
        raise CodegenError("Y group members must be abstractions")
    if not isinstance(entry, (Abs, Var)):
        raise CodegenError("Y entry must be an abstraction or a variable")

    # Whether the entry continuation itself is recursive (referenced via c0).
    entry_recursive = isinstance(entry, Abs) and count_occurrences(fixfun.body, c0) > 0

    # registers for the group names, visible to the member closures
    group_names = list(vs)
    group_abs: list[Abs] = list(abses)
    if entry_recursive:
        group_names.append(c0)
        group_abs.append(entry)
    for name in group_names:
        c.reg_of[name] = c.fresh_reg()

    descriptors = []
    for name, member in zip(group_names, group_abs):
        child = _FnCompiler(member, c, str(name), c.registry)
        child.compile()
        code_index = len(c.code.codes)
        c.code.codes.append(child.code)
        plan = tuple(c.capture_source(n) for n in child.code.free_names)
        descriptors.append((c.reg_of[name], code_index, plan))
    c.emit("fix", tuple(descriptors))

    if entry_recursive:
        c.emit("tailcall", c.reg_of[c0], ())
    elif isinstance(entry, Var):
        # eta-reduced entry: jump to the existing continuation
        c.emit("tailcall", c.value_reg(entry), ())
    else:
        # the entry continuation runs exactly once: inline it
        c.compile_app(entry.body)


def _emit_push_handler(c: _FnCompiler, app: PrimApp) -> None:
    handler, cont = app.args
    rh = c.value_reg(handler)
    c.emit("pushh", rh)
    c.continue_with(cont, [])


def _emit_pop_handler(c: _FnCompiler, app: PrimApp) -> None:
    (cont,) = app.args
    c.emit("poph")
    c.continue_with(cont, [])


def _emit_raise(c: _FnCompiler, app: PrimApp) -> None:
    (value,) = app.args
    c.emit("raise", c.value_reg(value))


def _emit_ccall(c: _FnCompiler, app: PrimApp) -> None:
    fn_v, vec_v, ce, cc = app.args
    rf, rv = c.value_reg(fn_v), c.value_reg(vec_v)
    dst, err = c.fresh_reg(), c.fresh_reg()
    exc = c.block(ce, [err])
    c.emit("ccall", dst, rf, rv, exc, err)
    c.continue_with(cc, [dst])


def _emit_print(c: _FnCompiler, app: PrimApp) -> None:
    value, cont = app.args
    c.emit("print", c.value_reg(value))
    c.continue_with(cont, [c.unit_reg()])


def _emit_halt(c: _FnCompiler, app: PrimApp) -> None:
    (value,) = app.args
    c.emit("halt", c.value_reg(value))


_EMITTERS = {
    "+": _emit_arith("add"),
    "-": _emit_arith("sub"),
    "*": _emit_arith("mul"),
    "/": _emit_arith("div"),
    "%": _emit_arith("rem"),
    "<": _emit_compare("lt"),
    ">": _emit_compare("gt"),
    "<=": _emit_compare("le"),
    ">=": _emit_compare("ge"),
    "band": _emit_bits("band"),
    "bor": _emit_bits("bor"),
    "bxor": _emit_bits("bxor"),
    "shl": _emit_bits("shl"),
    "shr": _emit_bits("shr"),
    "bnot": _emit_unary("bnot"),
    "char2int": _emit_unary("c2i"),
    "int2char": _emit_unary("i2c"),
    "array": _emit_alloc("arr"),
    "vector": _emit_alloc("vec"),
    "new": _emit_sized_alloc("anew"),
    "$new": _emit_sized_alloc("bnew"),
    "[]": _emit_load("aget"),
    "$[]": _emit_load("bget"),
    "[]:=": _emit_store("aset"),
    "$[]:=": _emit_store("bset"),
    "size": _emit_size,
    "move": _emit_move("amove"),
    "$move": _emit_move("bmove"),
    "==": _emit_case,
    "Y": _emit_y,
    "pushHandler": _emit_push_handler,
    "popHandler": _emit_pop_handler,
    "raise": _emit_raise,
    "ccall": _emit_ccall,
    "print": _emit_print,
    "halt": _emit_halt,
}
