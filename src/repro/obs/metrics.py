"""Process-wide metrics: counters, gauges and histograms.

The registry is the always-on half of the observability layer (the other
half, :mod:`repro.obs.trace`, is opt-in).  Instruments are plain Python
attributes incremented inline by the instrumented subsystems — a counter
``inc`` is one integer add, cheap enough to leave enabled everywhere the
work it measures (page I/O, optimizer runs, VM calls) dominates it.

Naming convention: dotted ``<layer>.<component>.<what>`` — e.g.
``store.pager.page_reads`` or ``rewrite.rules_fired``.  The full catalog is
documented in ``docs/observability.md`` and printable via
``python -m repro stats``.

Snapshots are deterministic: same sequence of operations, same snapshot
(histograms use fixed power-of-two bucket boundaries and no timestamps).

Thread safety: the server (``repro.server``) increments instruments from
worker threads, so every mutation holds a small per-instrument lock and
registry creation holds a registry lock.  A CPython lock acquire on the
uncontended path is tens of nanoseconds — far below the work any
instrumented operation performs — so the single-threaded paths stay cheap
(guarded by ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "metrics_enabled",
    "set_metrics_enabled",
    "metrics_disabled",
]

#: global kill switch — normally True (metrics are the always-on half of
#: observability); ``scripts/obs_bench.py`` flips it off to measure what
#: "always on" actually costs.  The guard is one global load + branch on
#: each mutation, far below the lock acquire that follows it.
_ENABLED = True


def metrics_enabled() -> bool:
    return _ENABLED


def set_metrics_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def metrics_disabled():
    """Suspend every instrument mutation for a ``with`` block (bench use)."""
    previous = _ENABLED
    set_metrics_enabled(False)
    try:
        yield
    finally:
        set_metrics_enabled(previous)


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A value that can go up and down (e.g. cache size); thread-safe."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value -= amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0


#: log-linear bucket geometry: values below 2**_SUB_BITS are exact (one
#: bucket per integer); above, each power-of-two octave is split into
#: 2**_SUB_BITS linear sub-buckets, bounding the relative quantization
#: error of any bucket at 1/2**_SUB_BITS (6.25%) across the whole range —
#: microseconds to hours in a few hundred buckets.
_SUB_BITS = 4
_SUB_COUNT = 1 << _SUB_BITS
#: values past this go to the +inf overflow bucket (µs → ~35 minutes)
_MAX_TRACKED = (1 << 31) - 1


def _bucket_index(value: int) -> int:
    """Index of the log-linear bucket holding ``value`` (>= 0)."""
    if value < _SUB_COUNT:
        return value
    octave = value.bit_length() - 1
    sub = (value >> (octave - _SUB_BITS)) & (_SUB_COUNT - 1)
    return ((octave - _SUB_BITS + 1) << _SUB_BITS) + sub


def _bucket_upper(index: int) -> int:
    """Inclusive upper bound of the bucket at ``index`` (inverse of above)."""
    if index < _SUB_COUNT:
        return index
    octave = (index >> _SUB_BITS) + _SUB_BITS - 1
    sub = index & (_SUB_COUNT - 1)
    return (1 << octave) + ((sub + 1) << (octave - _SUB_BITS)) - 1


_NBUCKETS = _bucket_index(_MAX_TRACKED) + 1


class Histogram:
    """A distribution summary over fixed log-linear buckets.

    Designed for latencies in microseconds as well as sizes and counts:
    one bucket per integer below 16, then 16 linear sub-buckets per
    power-of-two octave, so every bucket is at most 6.25% wide relative to
    its value.  ``observe`` takes any non-negative number (floats are
    bucketed by their integer part; ``total`` keeps the exact sum).

    ``percentile(q)`` extracts quantiles by exact rank over the bucket
    counts: it walks the cumulative distribution to the bucket containing
    the rank ``ceil(q * count)`` and returns that bucket's upper bound
    (clamped to the observed min/max) — so p50/p99/p999 are exact up to
    the 6.25% bucket resolution even for microsecond latencies, where the
    old power-of-two buckets lumped 1.1ms and 2ms together.
    """

    __slots__ = ("name", "help", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = [0] * (_NBUCKETS + 1)  # last = overflow
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = _bucket_index(max(0, int(value)))
            if index >= _NBUCKETS:
                self.buckets[-1] += 1
            else:
                self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _percentile_locked(self, q: float):
        if not self.count:
            return None
        rank = max(1, -(-int(q * 1000) * self.count // 1000))  # ceil at 0.1% grain
        seen = 0
        for index, filled in enumerate(self.buckets):
            if not filled:
                continue
            seen += filled
            if seen >= rank:
                if index >= _NBUCKETS:
                    return self.max
                bound = _bucket_upper(index)
                return max(self.min, min(self.max, bound))
        return self.max

    def percentile(self, q: float):
        """Value at quantile ``q`` in (0, 1] by exact rank (None if empty)."""
        with self._lock:
            return self._percentile_locked(q)

    def percentiles(self, *qs: float) -> dict:
        """Several quantiles under one lock, keyed ``p50``/``p999``-style."""
        with self._lock:
            return {
                "p" + format(q * 100, "g").replace(".", ""): self._percentile_locked(q)
                for q in qs
            }

    def snapshot(self) -> dict:
        # only non-empty buckets, keyed by their upper bound — compact and
        # stable across runs; p50/p99/p999 ride along for consumers that
        # do not want to re-derive ranks (shape is a superset of the v1
        # snapshot: count/total/min/max/buckets are unchanged keys)
        with self._lock:
            buckets = {}
            for index, filled in enumerate(self.buckets):
                if filled:
                    key = str(_bucket_upper(index)) if index < _NBUCKETS else "+inf"
                    buckets[key] = filled
            return {
                "type": "histogram",
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "buckets": buckets,
                "p50": self._percentile_locked(0.50),
                "p99": self._percentile_locked(0.99),
                "p999": self._percentile_locked(0.999),
            }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0
            self.min = None
            self.max = None
            self.buckets = [0] * (_NBUCKETS + 1)


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, help: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, help, Histogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Deterministic name → state mapping (sorted by name)."""
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def describe(self) -> list[tuple[str, str, str]]:
        """(name, type, help) rows for the catalog listing, sorted."""
        return [
            (name, type(self._metrics[name]).__name__.lower(), self._metrics[name].help)
            for name in sorted(self._metrics)
        ]

    def reset(self) -> None:
        """Zero every instrument (the registry keeps its catalog)."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-wide default registry every subsystem instruments into.
METRICS = MetricsRegistry()
