"""Process-wide metrics: counters, gauges and histograms.

The registry is the always-on half of the observability layer (the other
half, :mod:`repro.obs.trace`, is opt-in).  Instruments are plain Python
attributes incremented inline by the instrumented subsystems — a counter
``inc`` is one integer add, cheap enough to leave enabled everywhere the
work it measures (page I/O, optimizer runs, VM calls) dominates it.

Naming convention: dotted ``<layer>.<component>.<what>`` — e.g.
``store.pager.page_reads`` or ``rewrite.rules_fired``.  The full catalog is
documented in ``docs/observability.md`` and printable via
``python -m repro stats``.

Snapshots are deterministic: same sequence of operations, same snapshot
(histograms use fixed power-of-two bucket boundaries and no timestamps).

Thread safety: the server (``repro.server``) increments instruments from
worker threads, so every mutation holds a small per-instrument lock and
registry creation holds a registry lock.  A CPython lock acquire on the
uncontended path is tens of nanoseconds — far below the work any
instrumented operation performs — so the single-threaded paths stay cheap
(guarded by ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
]


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A value that can go up and down (e.g. cache size); thread-safe."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0


#: Histogram bucket upper bounds: powers of two from 1 to 2**30, fixed so
#: that two runs observing the same values produce identical snapshots.
_BUCKET_BOUNDS = tuple(1 << i for i in range(31))


class Histogram:
    """A distribution summary with fixed power-of-two buckets.

    Designed for sizes and counts (bytes encoded, term sizes, latencies in
    microseconds); ``observe`` takes any non-negative number.
    """

    __slots__ = ("name", "help", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)  # last = overflow
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(_BUCKET_BOUNDS):
                if value <= bound:
                    self.buckets[index] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        # only non-empty buckets, keyed by their upper bound — compact and
        # stable across runs
        with self._lock:
            buckets = {}
            for index, filled in enumerate(self.buckets):
                if filled:
                    key = (
                        str(_BUCKET_BOUNDS[index])
                        if index < len(_BUCKET_BOUNDS)
                        else "+inf"
                    )
                    buckets[key] = filled
            return {
                "type": "histogram",
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "buckets": buckets,
            }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0
            self.min = None
            self.max = None
            self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, help: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, help, Histogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Deterministic name → state mapping (sorted by name)."""
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def describe(self) -> list[tuple[str, str, str]]:
        """(name, type, help) rows for the catalog listing, sorted."""
        return [
            (name, type(self._metrics[name]).__name__.lower(), self._metrics[name].help)
            for name in sorted(self._metrics)
        ]

    def reset(self) -> None:
        """Zero every instrument (the registry keeps its catalog)."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-wide default registry every subsystem instruments into.
METRICS = MetricsRegistry()
