"""repro.obs — unified tracing, metrics and profiling.

Three pieces, one package:

* :mod:`repro.obs.metrics` — always-on process-wide counters/gauges/
  histograms (``METRICS``), incremented inline by the store, the rewrite
  pipeline and the VM;
* :mod:`repro.obs.trace` — opt-in structured spans/events (``TRACER``),
  disabled by default with a near-zero no-op path;
* :mod:`repro.obs.profile` — per-closure/per-opcode VM execution profiles
  (:class:`VMProfiler`), the runtime evidence consumed by
  ``repro.reflect.pgo`` for profile-guided reoptimization.

Exporters (:mod:`repro.obs.exporters`) serialize traces as NDJSON and
metric/bench snapshots as JSON.  See ``docs/observability.md``.
"""

from repro.obs.exporters import (
    ListRecorder,
    NdjsonRecorder,
    SCHEMA_VERSION,
    TraceSchemaError,
    event_from_dict,
    event_to_dict,
    read_ndjson,
    validate_event,
    write_metrics_json,
)
from repro.obs.history import (
    HISTORY_ROOT,
    MetricsHistory,
    read_history,
    sanitize_snapshot,
)
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_disabled,
    metrics_enabled,
    set_metrics_enabled,
)
from repro.obs.profile import ClosureStats, VMProfiler, profile_call
from repro.obs.slowlog import SlowLog
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    TraceEvent,
    Tracer,
    TRACER,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_enabled",
    "set_metrics_enabled",
    "metrics_disabled",
    "TRACER",
    "Tracer",
    "TraceEvent",
    "TraceContext",
    "Span",
    "NULL_SPAN",
    "new_trace_id",
    "new_span_id",
    "SlowLog",
    "MetricsHistory",
    "HISTORY_ROOT",
    "read_history",
    "sanitize_snapshot",
    "ListRecorder",
    "NdjsonRecorder",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "event_to_dict",
    "event_from_dict",
    "read_ndjson",
    "validate_event",
    "write_metrics_json",
    "ClosureStats",
    "VMProfiler",
    "profile_call",
]
