"""Bounded slow-request log — the daemon's "what was slow, and why" ring.

A :class:`SlowLog` keeps the N slowest requests seen so far (a min-heap on
latency: a new request enters only by evicting a faster one), each entry
carrying what an operator needs to chase it: the distributed ``trace_id``
(join key into the NDJSON export), the op, VM step count, lock-wait time
and the outcome (``ok`` or the structured error code).  It is part of the
always-on metrics half: recording is one lock + heap push, independent of
whether tracing is enabled — so the slowlog is populated even for requests
that were never sampled, and a trace id is present exactly when the
request was.

Served over the wire by the daemon's ``slowlog`` op and rendered by
``python -m repro top``.
"""

from __future__ import annotations

import heapq
import itertools
import threading

__all__ = ["SlowLog"]


class SlowLog:
    """Thread-safe bounded collection of the slowest request records."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("slowlog capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: (latency_us, tiebreak, entry) min-heap — root is the fastest of
        #: the kept slow requests, i.e. the next eviction candidate
        self._heap: list[tuple[int, int, dict]] = []
        self._tiebreak = itertools.count()
        self._recorded = 0

    def record(
        self,
        op: str,
        latency_us: int,
        outcome: str = "ok",
        trace_id: str | None = None,
        session: int | None = None,
        steps: int | None = None,
        lock_wait_us: int | None = None,
        **extra,
    ) -> bool:
        """Offer one finished request; True when it entered the log."""
        entry = {
            "op": op,
            "latency_us": int(latency_us),
            "outcome": outcome,
            "trace_id": trace_id,
            "session": session,
            "steps": steps,
            "lock_wait_us": lock_wait_us,
        }
        entry.update(extra)
        with self._lock:
            self._recorded += 1
            item = (entry["latency_us"], next(self._tiebreak), entry)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
                return True
            if item[0] <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, item)
            return True

    def entries(self, n: int | None = None) -> list[dict]:
        """The kept requests, slowest first (at most ``n``)."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda it: (-it[0], -it[1]))
        entries = [dict(entry) for _, _, entry in ordered]
        return entries if n is None else entries[: max(0, n)]

    def threshold_us(self) -> int | None:
        """Latency a request must beat to enter a full log (None: not full)."""
        with self._lock:
            if len(self._heap) < self.capacity:
                return None
            return self._heap[0][0]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "kept": len(self._heap),
                "recorded": self._recorded,
            }

    def clear(self) -> None:
        """Drop the kept entries; the lifetime ``recorded`` count stays."""
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
