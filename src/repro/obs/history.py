"""In-image metrics history — observability that survives the process.

The daemon periodically snapshots its :class:`MetricsRegistry` into a
bounded ring persisted under heap root ``obs:history``, flushed alongside
the compiled-code cache on the next write commit.  The image then carries
its own recent operational record: after a crash or restart,
``python -m repro stats IMAGE --history`` replays what the server was
doing — request rates, latency percentiles, replication lag — without any
external metrics pipeline having been attached.

The persisted form is integer-only: the repro serializer stores ints,
strings, tuples and dicts but not floats, so :func:`sanitize_snapshot`
rounds every float (latencies are already in µs, timestamps in ms — the
sub-unit fraction is noise).  Replicas never flush history locally (they
never write their image); only the writing primary accumulates it.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "HISTORY_ROOT",
    "MetricsHistory",
    "sanitize_snapshot",
    "read_history",
]

HISTORY_ROOT = "obs:history"


def sanitize_snapshot(value):
    """Deep-copy a metrics snapshot into serializer-storable values.

    Floats become rounded ints, lists become tuples; None/bool/int/str
    pass through; anything else degrades to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return round(value)
    if isinstance(value, dict):
        return {str(k): sanitize_snapshot(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(sanitize_snapshot(v) for v in value)
    return repr(value)


class MetricsHistory:
    """Bounded ring of registry snapshots, persisted under ``obs:history``."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: list[dict] = []
        self._next_seq = 0
        self._dirty = False

    def record(self, registry, ts_ms: int | None = None, **meta) -> dict:
        """Append one sanitized snapshot of ``registry`` to the ring."""
        if ts_ms is None:
            ts_ms = int(time.time() * 1000)
        entry = {
            "seq": 0,
            "ts_ms": int(ts_ms),
            "metrics": sanitize_snapshot(registry.snapshot()),
        }
        if meta:
            entry["meta"] = sanitize_snapshot(meta)
        with self._lock:
            entry["seq"] = self._next_seq
            self._next_seq += 1
            self._entries.append(entry)
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]
            self._dirty = True
        return entry

    def entries(self, n: int | None = None) -> list[dict]:
        """Snapshots oldest-first (the last ``n`` when given)."""
        with self._lock:
            entries = list(self._entries)
        return entries if n is None else entries[-max(0, n):]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "kept": len(self._entries),
                "recorded": self._next_seq,
                "dirty": self._dirty,
            }

    # -------------------------------------------------------- image resident

    def attach(self, heap) -> int:
        """Load persisted snapshots from the image; returns how many."""
        stored = read_history(heap)
        if not stored:
            return 0
        with self._lock:
            merged = stored[-self.capacity:] + self._entries
            self._entries = merged[-self.capacity:] if len(merged) > self.capacity else merged
            top = max(e.get("seq", -1) for e in self._entries) + 1
            self._next_seq = max(self._next_seq, top)
            return len(self._entries)

    def flush(self, heap) -> None:
        """Persist the ring under ``obs:history``.

        Must run inside a write transaction — the surrounding commit
        publishes it (same contract as ``CodeCache.flush``).
        """
        with self._lock:
            if not self._dirty:
                return
            payload = {
                "capacity": self.capacity,
                "next_seq": self._next_seq,
                "entries": tuple(dict(e) for e in self._entries),
            }
            self._dirty = False
        oid = heap.root(HISTORY_ROOT)
        if oid is None:
            oid = heap.store(payload)
            heap.set_root(HISTORY_ROOT, oid)
        else:
            heap.update(oid, payload)


def read_history(heap) -> list[dict]:
    """Read persisted snapshots from an image, oldest-first (offline use)."""
    oid = heap.root(HISTORY_ROOT)
    if oid is None:
        return []
    stored = heap.load(oid)
    if not isinstance(stored, dict):
        return []
    entries = stored.get("entries", ())
    if not isinstance(entries, (list, tuple)):
        return []
    out = [dict(e) for e in entries if isinstance(e, dict)]
    out.sort(key=lambda e: e.get("seq", 0))
    return out
