"""Per-closure / per-opcode VM execution profiles.

The paper's reflective optimizer needs runtime *evidence*: which procedures
actually run hot.  :class:`VMProfiler` plugs into
:class:`repro.machine.vm.VM` and extends the existing single
``instructions`` counter into

* per-opcode totals (``opcodes``),
* per-code-object invocation and instruction counts (``closures``, keyed by
  the code object's qualified name, e.g. ``sieve.count_primes``),
* per-primitive call counts for ``ccall``/``extcall`` (``primitives``),
* adjacent-opcode pair counts (``pairs``): how often opcode *b* executed at
  ``pc+1`` immediately after opcode *a* at ``pc``.  Only fall-through
  adjacency is counted — taken branches and error edges are not statically
  fusable boundaries — so the counts are exactly the dynamic weight of each
  superinstruction candidate the fusion certifier
  (:mod:`repro.analysis.fusion`) rules on.

Profiles are deterministic: the VM is, so the same program produces an
identical profile on every run (pinned by ``tests/obs/test_profile.py``).
``repro.reflect.pgo`` consumes profiles to pick reoptimization targets.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass

__all__ = ["ClosureStats", "VMProfiler", "profile_call"]


@dataclass(slots=True)
class ClosureStats:
    """Execution totals for one code object."""

    invocations: int = 0
    instructions: int = 0


class VMProfiler:
    """Mutable profile accumulated by one or more VM runs."""

    __slots__ = ("opcodes", "closures", "primitives", "pairs")

    def __init__(self):
        self.opcodes: _Counter = _Counter()
        self.closures: dict[str, ClosureStats] = {}
        self.primitives: _Counter = _Counter()
        #: (prev opcode, opcode) -> fall-through-adjacent execution count
        self.pairs: _Counter = _Counter()

    # -------------------------------------------------------- VM interface

    def enter(self, code_name: str) -> ClosureStats:
        """Count one invocation; returns the stats cell for the hot loop."""
        stats = self.closures.get(code_name)
        if stats is None:
            stats = self.closures[code_name] = ClosureStats()
        stats.invocations += 1
        return stats

    # ------------------------------------------------------------- queries

    @property
    def total_instructions(self) -> int:
        return sum(self.opcodes.values())

    @property
    def total_invocations(self) -> int:
        return sum(s.invocations for s in self.closures.values())

    def hot_closures(
        self, top: int | None = None, key: str = "instructions"
    ) -> list[tuple[str, ClosureStats]]:
        """Closures ordered hottest-first by ``key`` (name breaks ties)."""
        if key not in ("instructions", "invocations"):
            raise ValueError(f"unknown profile key {key!r}")
        ranked = sorted(
            self.closures.items(),
            key=lambda item: (-getattr(item[1], key), item[0]),
        )
        return ranked[:top] if top is not None else ranked

    def hot_pairs(self, top: int | None = None) -> list[tuple[tuple[str, str], int]]:
        """Adjacent opcode pairs ordered hottest-first (pair breaks ties)."""
        ranked = sorted(self.pairs.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top] if top is not None else ranked

    def merge(self, other: "VMProfiler") -> None:
        self.opcodes.update(other.opcodes)
        self.primitives.update(other.primitives)
        self.pairs.update(other.pairs)
        for name, stats in other.closures.items():
            mine = self.closures.get(name)
            if mine is None:
                mine = self.closures[name] = ClosureStats()
            mine.invocations += stats.invocations
            mine.instructions += stats.instructions

    # ------------------------------------------------------------- export

    def as_dict(self) -> dict:
        """Deterministic JSON-ready representation (sorted keys)."""
        return {
            "schema": "repro.profile/v2",
            "total_instructions": self.total_instructions,
            "opcodes": {op: self.opcodes[op] for op in sorted(self.opcodes)},
            "closures": {
                name: {
                    "invocations": stats.invocations,
                    "instructions": stats.instructions,
                }
                for name, stats in sorted(self.closures.items())
            },
            "primitives": {
                name: self.primitives[name] for name in sorted(self.primitives)
            },
            "pairs": {
                f"{first} {second}": self.pairs[(first, second)]
                for first, second in sorted(self.pairs)
            },
        }

    def format_report(self, top: int | None = None) -> str:
        """Human-readable profile: closures hottest-first, then opcodes."""
        lines = []
        lines.append(f"{'closure':<40} {'invocations':>12} {'instructions':>13}")
        lines.append("-" * 67)
        for name, stats in self.hot_closures(top):
            lines.append(f"{name:<40} {stats.invocations:>12} {stats.instructions:>13}")
        lines.append("")
        lines.append(f"{'opcode':<12} {'count':>12}")
        lines.append("-" * 25)
        for op, count in sorted(self.opcodes.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"{op:<12} {count:>12}")
        lines.append("-" * 25)
        lines.append(f"{'total':<12} {self.total_instructions:>12}")
        if self.primitives:
            lines.append("")
            lines.append(f"{'primitive':<24} {'calls':>8}")
            lines.append("-" * 33)
            for name, count in sorted(
                self.primitives.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"{name:<24} {count:>8}")
        return "\n".join(lines)


def profile_call(
    system,
    module: str,
    function: str,
    args=(),
    step_limit: int | None = None,
    profiler: VMProfiler | None = None,
):
    """Run ``module.function`` under a profiler; returns (result, profiler).

    ``system`` is a :class:`repro.lang.TycoonSystem`; an existing profiler
    may be passed to accumulate across several runs.
    """
    profiler = profiler if profiler is not None else VMProfiler()
    closure = system.closure(module, function)
    vm = system.vm(step_limit=step_limit)
    vm.profiler = profiler
    result = vm.call(closure, list(args))
    return result, profiler
