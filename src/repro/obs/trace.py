"""Structured event/span tracing — the opt-in half of ``repro.obs``.

One process-wide :class:`Tracer` (module constant :data:`TRACER`) is shared
by every instrumented subsystem.  It is *disabled* by default: no recorder
is attached, ``span()`` returns a shared no-op singleton and ``event()``
returns immediately, so instrumentation left inline in hot paths costs one
attribute load and an ``is None`` test (the overhead guard in
``tests/obs/test_overhead.py`` enforces this stays negligible).

Attach a recorder (see :mod:`repro.obs.exporters`) to start collecting::

    from repro.obs import TRACER, ListRecorder
    with TRACER.recording(ListRecorder()) as rec:
        ...  # spans/events from every layer land in rec.events

Event model (the NDJSON schema, version 2):

* ``name`` — dotted event name (``rewrite.pass``, ``query.rule``, ...);
* ``kind`` — ``"span"`` (has a duration) or ``"event"`` (a point);
* ``ts``   — wall-clock seconds since the epoch;
* ``dur``  — span duration in seconds (``None`` for point events);
* ``attrs`` — flat JSON-safe key/value payload;
* ``trace_id`` / ``span_id`` / ``parent_id`` — distributed trace context
  (16-hex ids); recorded spans always carry ``trace_id`` and ``span_id``,
  and nest under whatever context is active on the recording thread.

**Trace context.**  Each thread carries an implicit current
:class:`TraceContext`.  A recorded span inherits its ``trace_id`` from the
context (minting a fresh one at a trace root) and links ``parent_id`` to
the context's span; entering a span via ``with`` makes it the context for
its body, so nested spans form a tree.  Context crosses process
boundaries explicitly: the repro wire protocol ships ``trace_id``/
``span_id`` on each request and on each replication record, and the
receiving side re-activates them via :meth:`Tracer.activate` — one write
can be followed client → primary → replica in a single merged trace.

**Sampling.**  ``Tracer.sample_rate`` (default 1.0) governs *new* trace
roots: :meth:`Tracer.should_sample` rolls the dice once per root, and an
unsampled request simply produces no ids (span creation under an already
sampled incoming context is never re-rolled — the root's decision sticks
end to end).
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TraceEvent",
    "TraceContext",
    "Span",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "new_trace_id",
    "new_span_id",
]

#: dedicated RNG for id generation — never seeded, so forked test
#: environments that seed ``random`` still get unique ids
_ID_RNG = random.Random()


def new_trace_id() -> str:
    """A fresh 16-hex trace id."""
    return f"{_ID_RNG.getrandbits(64):016x}"


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return f"{_ID_RNG.getrandbits(64):016x}"


@dataclass(slots=True)
class TraceEvent:
    """One recorded span or point event."""

    name: str
    kind: str  # "span" | "event"
    ts: float
    dur: float | None
    attrs: dict
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The (trace, span) a thread is currently executing under."""

    trace_id: str
    span_id: str | None = None

    def child_ids(self) -> tuple[str, str, str | None]:
        """(trace_id, fresh span_id, parent_id) for a span opened here."""
        return (self.trace_id, new_span_id(), self.span_id)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled.

    A singleton: the disabled path allocates nothing (asserted by the
    overhead guard).
    """

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """A live span: use as a context manager, enrich with ``set(...)``.

    Created with the thread's current :class:`TraceContext` folded in;
    entering the span (``with``) activates it as the context for its body
    so spans opened inside become children.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "_ts", "_t0",
        "trace_id", "span_id", "parent_id", "_restore",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._restore = None
        self._ts = time.time()
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. sizes after a pass)."""
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext | None:
        if self.trace_id is None or self.span_id is None:
            return None
        return TraceContext(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        ctx = self.context()
        if ctx is not None:
            self._restore = self._tracer._swap_context(ctx)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.trace_id is not None:
            self._tracer._set_context(self._restore)
            self._restore = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def finish(self) -> None:
        dur = time.perf_counter() - self._t0
        self._tracer._emit(
            TraceEvent(
                self.name, "span", self._ts, dur, self.attrs,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )


class Tracer:
    """Routes spans/events to the attached recorder; no-op when detached."""

    __slots__ = ("recorder", "sample_rate", "rng", "_local")

    def __init__(self, recorder=None, sample_rate: float = 1.0):
        self.recorder = recorder
        #: probability a *new* trace root is sampled (1.0 = every one);
        #: incoming contexts were sampled upstream and bypass the roll
        self.sample_rate = sample_rate
        #: sampling-decision RNG — injectable for deterministic tests
        self.rng: random.Random = random.Random()
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return self.recorder is not None

    # ------------------------------------------------------------- context

    def current(self) -> TraceContext | None:
        """The thread's active trace context (None outside any trace)."""
        return getattr(self._local, "ctx", None)

    def _set_context(self, ctx: TraceContext | None) -> None:
        self._local.ctx = ctx

    def _swap_context(self, ctx: TraceContext | None) -> TraceContext | None:
        previous = self.current()
        self._local.ctx = ctx
        return previous

    @contextmanager
    def activate(self, trace_id: str | None, span_id: str | None = None):
        """Run a block under an explicitly supplied trace context.

        This is the cross-boundary half of propagation: a daemon activates
        the ids shipped on an incoming request, a replica activates the
        ids carried by a replication record.  ``trace_id=None`` clears the
        context for the block.
        """
        ctx = TraceContext(trace_id, span_id) if trace_id else None
        previous = self._swap_context(ctx)
        try:
            yield ctx
        finally:
            self._set_context(previous)

    def should_sample(self) -> bool:
        """Roll the sampling dice for a new trace root."""
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self.rng.random() < rate

    # --------------------------------------------------------------- spans

    def span(self, name: str, **attrs):
        """Open a span; returns :data:`NULL_SPAN` while disabled.

        Recorded spans always carry ids: the trace id comes from the
        thread's current context (a fresh one is minted at a root), the
        parent is the context's span.
        """
        if self.recorder is None:
            return NULL_SPAN
        ctx = self.current()
        if ctx is not None:
            trace_id, span_id, parent_id = ctx.child_ids()
        else:
            trace_id, span_id, parent_id = new_trace_id(), new_span_id(), None
        return Span(
            self, name, attrs,
            trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        )

    def event(self, name: str, **attrs) -> None:
        """Record a point event (dropped while disabled).

        Point events attach to the current context: they carry its trace
        id and point ``parent_id`` at the enclosing span, but have no span
        id of their own.
        """
        if self.recorder is None:
            return
        ctx = self.current()
        self._emit(
            TraceEvent(
                name, "event", time.time(), None, attrs,
                trace_id=ctx.trace_id if ctx is not None else None,
                span_id=None,
                parent_id=ctx.span_id if ctx is not None else None,
            )
        )

    def _emit(self, event: TraceEvent) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.record(event)

    @contextmanager
    def recording(self, recorder):
        """Attach ``recorder`` for the duration of a ``with`` block."""
        previous = self.recorder
        self.recorder = recorder
        try:
            yield recorder
        finally:
            self.recorder = previous


#: The process-wide tracer all subsystems report to.
TRACER = Tracer()
