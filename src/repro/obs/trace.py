"""Structured event/span tracing — the opt-in half of ``repro.obs``.

One process-wide :class:`Tracer` (module constant :data:`TRACER`) is shared
by every instrumented subsystem.  It is *disabled* by default: no recorder
is attached, ``span()`` returns a shared no-op singleton and ``event()``
returns immediately, so instrumentation left inline in hot paths costs one
attribute load and an ``is None`` test (the overhead guard in
``tests/obs/test_overhead.py`` enforces this stays negligible).

Attach a recorder (see :mod:`repro.obs.exporters`) to start collecting::

    from repro.obs import TRACER, ListRecorder
    with TRACER.recording(ListRecorder()) as rec:
        ...  # spans/events from every layer land in rec.events

Event model (the NDJSON schema, version 1):

* ``name`` — dotted event name (``rewrite.pass``, ``query.rule``, ...);
* ``kind`` — ``"span"`` (has a duration) or ``"event"`` (a point);
* ``ts``   — wall-clock seconds since the epoch;
* ``dur``  — span duration in seconds (``None`` for point events);
* ``attrs`` — flat JSON-safe key/value payload.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["TraceEvent", "Span", "Tracer", "TRACER", "NULL_SPAN"]


@dataclass(slots=True)
class TraceEvent:
    """One recorded span or point event."""

    name: str
    kind: str  # "span" | "event"
    ts: float
    dur: float | None
    attrs: dict


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled.

    A singleton: the disabled path allocates nothing (asserted by the
    overhead guard).
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """A live span: use as a context manager, enrich with ``set(...)``."""

    __slots__ = ("_tracer", "name", "attrs", "_ts", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._ts = time.time()
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. sizes after a pass)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def finish(self) -> None:
        dur = time.perf_counter() - self._t0
        self._tracer._emit(
            TraceEvent(self.name, "span", self._ts, dur, self.attrs)
        )


class Tracer:
    """Routes spans/events to the attached recorder; no-op when detached."""

    __slots__ = ("recorder",)

    def __init__(self, recorder=None):
        self.recorder = recorder

    @property
    def enabled(self) -> bool:
        return self.recorder is not None

    def span(self, name: str, **attrs):
        """Open a span; returns :data:`NULL_SPAN` while disabled."""
        if self.recorder is None:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point event (dropped while disabled)."""
        if self.recorder is None:
            return
        self._emit(TraceEvent(name, "event", time.time(), None, attrs))

    def _emit(self, event: TraceEvent) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.record(event)

    @contextmanager
    def recording(self, recorder):
        """Attach ``recorder`` for the duration of a ``with`` block."""
        previous = self.recorder
        self.recorder = recorder
        try:
            yield recorder
        finally:
            self.recorder = previous


#: The process-wide tracer all subsystems report to.
TRACER = Tracer()
