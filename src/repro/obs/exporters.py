"""Recorders and file exporters: NDJSON traces, JSON metrics/bench dumps.

NDJSON trace schema (version 2) — one JSON object per line::

    {"v": 2, "name": "server.request", "kind": "span",
     "ts": 1722860000.123, "dur": 0.0004,
     "trace_id": "9f86d081884c7d65", "span_id": "a4c349cd51b1cf5b",
     "parent_id": null, "attrs": {"op": "set"}}

Version 2 adds the distributed trace context: every event carries
``trace_id``, ``span_id`` and ``parent_id`` keys (values may be ``null``
on point events or spans recorded outside any trace — but the *keys* are
required, so a v2 consumer can always join events into traces).  Version 1
events (``"v": 1``, no context keys) are rejected by ``validate_event``;
re-record old traces rather than relabeling them.

``validate_event`` / ``read_ndjson`` enforce the schema so traces stay
machine-consumable; round-trip behavior is pinned by
``tests/obs/test_trace.py`` and ``tests/obs/test_trace_context.py``.
"""

from __future__ import annotations

import json
import threading
from typing import Any

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TraceEvent

__all__ = [
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "ListRecorder",
    "NdjsonRecorder",
    "event_to_dict",
    "event_from_dict",
    "validate_event",
    "read_ndjson",
    "write_metrics_json",
]

SCHEMA_VERSION = 2

_KINDS = ("span", "event")

#: trace-context keys every v2 event must carry (nullable values)
_CONTEXT_KEYS = ("trace_id", "span_id", "parent_id")


class TraceSchemaError(ValueError):
    """An event violates the NDJSON trace schema."""


def _safe_attr(value: Any):
    """Coerce an attribute value to something JSON-representable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_safe_attr(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _safe_attr(v) for k, v in value.items()}
    return repr(value)


def event_to_dict(event: TraceEvent) -> dict:
    return {
        "v": SCHEMA_VERSION,
        "name": event.name,
        "kind": event.kind,
        "ts": event.ts,
        "dur": event.dur,
        "trace_id": event.trace_id,
        "span_id": event.span_id,
        "parent_id": event.parent_id,
        "attrs": {str(k): _safe_attr(v) for k, v in event.attrs.items()},
    }


def validate_event(data: dict) -> dict:
    """Check one decoded NDJSON line against the schema; returns it."""
    if not isinstance(data, dict):
        raise TraceSchemaError(f"event is {type(data).__name__}, not an object")
    if data.get("v") != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported schema version {data.get('v')!r} "
            f"(this exporter reads v{SCHEMA_VERSION})"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise TraceSchemaError("event name must be a non-empty string")
    kind = data.get("kind")
    if kind not in _KINDS:
        raise TraceSchemaError(f"bad kind {kind!r} (expected one of {_KINDS})")
    ts = data.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise TraceSchemaError("ts must be a number")
    dur = data.get("dur")
    if kind == "span":
        if not isinstance(dur, (int, float)) or isinstance(dur, bool):
            raise TraceSchemaError("span events must carry a numeric dur")
    elif dur is not None:
        raise TraceSchemaError("point events must have dur = null")
    for key in _CONTEXT_KEYS:
        if key not in data:
            raise TraceSchemaError(f"v2 events must carry the {key} key")
        value = data[key]
        if value is not None and (
            not isinstance(value, str) or len(value) != 16
        ):
            raise TraceSchemaError(f"{key} must be null or a 16-hex string")
    attrs = data.get("attrs")
    if not isinstance(attrs, dict):
        raise TraceSchemaError("attrs must be an object")
    return data


def event_from_dict(data: dict) -> TraceEvent:
    validate_event(data)
    return TraceEvent(
        data["name"],
        data["kind"],
        data["ts"],
        data["dur"],
        data["attrs"],
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data["parent_id"],
    )


class ListRecorder:
    """Collects events in memory (tests, ad-hoc inspection)."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def named(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def traced(self, trace_id: str) -> list[TraceEvent]:
        """Every event belonging to one distributed trace."""
        return [e for e in self.events if e.trace_id == trace_id]


class NdjsonRecorder:
    """Streams events to an NDJSON file, one schema-valid object per line.

    Thread-safe: the daemon records from worker, connection and
    replication threads concurrently; each event is written as one
    atomic line.
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._fp = target
            self._owns = False
        else:
            self._fp = open(target, "w", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        line = json.dumps(event_to_dict(event), sort_keys=True)
        with self._lock:
            self._fp.write(line)
            self._fp.write("\n")

    def close(self) -> None:
        with self._lock:
            self._fp.flush()
            if self._owns:
                self._fp.close()

    def __enter__(self) -> "NdjsonRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_ndjson(path) -> list[dict]:
    """Read and validate every event of an NDJSON trace file."""
    events = []
    with open(path, "r", encoding="utf-8") as fp:
        for line_no, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(f"line {line_no}: not JSON: {error}") from None
            try:
                events.append(validate_event(data))
            except TraceSchemaError as error:
                raise TraceSchemaError(f"line {line_no}: {error}") from None
    return events


def write_metrics_json(
    path,
    registry: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> dict:
    """Dump a registry snapshot (plus optional metadata) as pretty JSON."""
    registry = registry if registry is not None else METRICS
    payload = {"schema": "repro.metrics/v1", "metrics": registry.snapshot()}
    if meta:
        payload["meta"] = {str(k): _safe_attr(v) for k, v in meta.items()}
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return payload
