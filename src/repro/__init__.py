"""TML — a persistent CPS intermediate code representation for open database
environments.

A from-scratch reproduction of Gawecki & Matthes, *"Exploiting Persistent
Intermediate Code Representations in Open Database Environments"* (EDBT
1996): the Tycoon Machine Language, its rewrite rules and two-pass
optimizer, a TL-style front end with dynamically bound libraries, a
persistent object store with compact PTML code blobs, reflective runtime
optimization across abstraction barriers, and integrated program/query
optimization.

Quickstart::

    from repro import TycoonSystem, reflect

    system = TycoonSystem()
    system.compile('''
    module demo export twice
    let twice(x: Int): Int = x + x
    end''')
    print(system.call("demo", "twice", [21]).value)          # 42
    fast = reflect.optimize_function(system, "demo", "twice")
    print(system.vm().call(fast, [21]).value)                 # 42, fewer instructions
"""

from repro import reflect
from repro.core import (
    Abs,
    App,
    Lit,
    Name,
    NameSupply,
    Oid,
    PrimApp,
    TmlBuilder,
    Var,
    check,
    parse_term,
    pretty,
    term_size,
)
from repro.lang import CompileOptions, TycoonSystem, compile_module
from repro.machine import VM, Interpreter, compile_function
from repro.primitives import default_registry
from repro.query import Relation, integrated_optimize, query_registry
from repro.rewrite import OptimizerConfig, RuleConfig, optimize, reduce_only
from repro.store import ObjectHeap, decode_ptml, encode_ptml

__version__ = "1.0.0"

__all__ = [
    "reflect",
    "Abs",
    "App",
    "Lit",
    "Name",
    "NameSupply",
    "Oid",
    "PrimApp",
    "TmlBuilder",
    "Var",
    "check",
    "parse_term",
    "pretty",
    "term_size",
    "CompileOptions",
    "TycoonSystem",
    "compile_module",
    "VM",
    "Interpreter",
    "compile_function",
    "default_registry",
    "Relation",
    "integrated_optimize",
    "query_registry",
    "OptimizerConfig",
    "RuleConfig",
    "optimize",
    "reduce_only",
    "ObjectHeap",
    "decode_ptml",
    "encode_ptml",
    "__version__",
]
