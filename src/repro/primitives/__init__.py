"""Primitive procedures for TML (paper section 2.3, Fig. 2).

The intermediate language itself knows nothing about arithmetic, arrays or
queries; all of it is factored into primitives described by a
:class:`~repro.primitives.registry.PrimitiveRegistry`.  The default registry
covers the full Fig. 2 set for compiling an imperative, algorithmically
complete language; the query subsystem extends it with relational primitives
at registration time — the paper's adaptability story.
"""

from repro.primitives.effects import EffectClass, may_commute
from repro.primitives.registry import (
    Attributes,
    Primitive,
    PrimitiveRegistry,
    Signature,
    default_registry,
)

__all__ = [
    "EffectClass",
    "may_commute",
    "Attributes",
    "Primitive",
    "PrimitiveRegistry",
    "Signature",
    "default_registry",
]
