"""Side-effect classes for primitive procedures.

Paper section 2.3, item 4: each primitive carries "a collection of attributes
useful for the optimizer, for example commutativity, side effect classes
[Gifford and Lucassen 1986], and flags to enable or disable certain
optimization rules.  There is a default value for any of these attributes,
representing the worst possible case."

We adopt a small Gifford/Lucassen-style lattice.  The classes drive:

* *fold legality* — only ``PURE`` calls may be meta-evaluated away;
* *reordering/commuting* — the query optimizer may swap two calls iff
  :func:`may_commute` holds;
* *worst-case defaults* — an unregistered attribute means ``UNKNOWN``.
"""

from __future__ import annotations

import enum

__all__ = ["EffectClass", "may_commute", "observes", "mutates"]


class EffectClass(enum.Enum):
    """Side-effect classification of a primitive procedure."""

    #: No observable effect; result depends only on the arguments.
    PURE = "pure"
    #: Reads the mutable store (arrays, relations) but writes nothing.
    READ = "read"
    #: Allocates fresh store objects; observable only through identity.
    ALLOC = "alloc"
    #: Writes the mutable store.
    WRITE = "write"
    #: Performs input/output (never removable or reorderable).
    IO = "io"
    #: Transfers control non-locally (raise, handler manipulation).
    CONTROL = "control"
    #: Unknown effects — the worst-case default (e.g. ``ccall``).
    UNKNOWN = "unknown"


#: Effects that may be discarded if the result is provably unused.
_DISCARDABLE = {EffectClass.PURE, EffectClass.READ, EffectClass.ALLOC}

#: Effects that observe store state.
_OBSERVERS = {EffectClass.READ, EffectClass.WRITE, EffectClass.IO, EffectClass.UNKNOWN}

#: Effects that change store state (or might).
_MUTATORS = {
    EffectClass.WRITE,
    EffectClass.ALLOC,
    EffectClass.IO,
    EffectClass.CONTROL,
    EffectClass.UNKNOWN,
}


def observes(effect: EffectClass) -> bool:
    """True when the primitive's result can depend on store state."""
    return effect in _OBSERVERS


def mutates(effect: EffectClass) -> bool:
    """True when the primitive can change observable state."""
    return effect in _MUTATORS


def is_discardable(effect: EffectClass) -> bool:
    """True when an unused call of this class may be deleted."""
    return effect in _DISCARDABLE


def may_commute(first: EffectClass, second: EffectClass) -> bool:
    """May two adjacent calls with these effect classes be reordered?

    Sound, conservative rule: two calls commute unless one mutates state the
    other observes or mutates.  CONTROL and UNKNOWN never commute with
    anything that observes or mutates.
    """
    if first == EffectClass.PURE or second == EffectClass.PURE:
        return True
    if EffectClass.UNKNOWN in (first, second) or EffectClass.CONTROL in (first, second):
        return False
    if mutates(first) and (observes(second) or mutates(second)):
        return False
    if mutates(second) and (observes(first) or mutates(first)):
        return False
    return True
