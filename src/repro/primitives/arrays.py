"""Array, vector and byte-array primitives (paper Fig. 2).

Conventions::

    (array v1..vn c)        create a mutable array of the n values
    (vector v1..vn c)       create an immutable array
    (new n init c)          create a mutable array of n slots, all = init
    ($new n byte c)         create a byte array of n slots, all = byte
    ([] a i c)              indexed load          (trap on bounds error)
    ([]:= a i v c)          indexed store         (trap on bounds error)
    ($[] a i c)             byte array load
    ($[]:= a i v c)         byte array store
    (size a c)              number of slots
    (move dst di src si n c)    block move between arrays
    ($move dst di src si n c)   block move between byte arrays

Bounds violations *trap*: they transfer control to the current exception
handler installed via ``pushHandler`` (see :mod:`repro.primitives.control`),
they do not consume an explicit exception continuation — matching the
single-continuation signatures in Fig. 2.

Allocation primitives are ``ALLOC``-classified; two textually identical
``array`` calls yield distinct objects, so they are never folded or merged.
The only meta-evaluation here is ``size`` applied to a binding whose value is
a known allocation — the optimizer handles that case structurally via the
``subst`` rule instead, so these primitives define no fold functions.
"""

from __future__ import annotations

from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES"]

PRIMITIVES = [
    Primitive(
        "array",
        Signature(value_args=0, cont_args=1, variadic=True),
        Attributes(effect=EffectClass.ALLOC),
        cost=4,
    ),
    Primitive(
        "vector",
        Signature(value_args=0, cont_args=1, variadic=True),
        Attributes(effect=EffectClass.ALLOC),
        cost=4,
    ),
    Primitive(
        "new",
        Signature(value_args=2, cont_args=1),
        Attributes(effect=EffectClass.ALLOC),
        cost=6,
    ),
    Primitive(
        "$new",
        Signature(value_args=2, cont_args=1),
        Attributes(effect=EffectClass.ALLOC),
        cost=6,
    ),
    Primitive(
        "[]",
        Signature(value_args=2, cont_args=1),
        Attributes(effect=EffectClass.READ),
        cost=2,
    ),
    Primitive(
        "[]:=",
        Signature(value_args=3, cont_args=1),
        Attributes(effect=EffectClass.WRITE),
        cost=2,
    ),
    Primitive(
        "$[]",
        Signature(value_args=2, cont_args=1),
        Attributes(effect=EffectClass.READ),
        cost=2,
    ),
    Primitive(
        "$[]:=",
        Signature(value_args=3, cont_args=1),
        Attributes(effect=EffectClass.WRITE),
        cost=2,
    ),
    Primitive(
        "size",
        Signature(value_args=1, cont_args=1),
        Attributes(effect=EffectClass.READ),
        cost=1,
    ),
    Primitive(
        "move",
        Signature(value_args=5, cont_args=1),
        Attributes(effect=EffectClass.WRITE),
        cost=8,
    ),
    Primitive(
        "$move",
        Signature(value_args=5, cont_args=1),
        Attributes(effect=EffectClass.WRITE),
        cost=8,
    ),
]
