"""Bit-manipulation primitives on integers (paper Fig. 2).

Convention: ``(p a b c)`` with a single continuation — bit operations cannot
fail.  Results wrap two's-complement into the 64-bit signed range.  ``shr``
is an arithmetic (sign-propagating) right shift; shift counts are taken
modulo 64, mirroring stock hardware.
"""

from __future__ import annotations

from repro.core.syntax import Application, Lit, PrimApp
from repro.primitives._util import as_int, invoke, same_var, wrap_int
from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES"]

_BIN_SIG = Signature(value_args=2, cont_args=1)
_UN_SIG = Signature(value_args=1, cont_args=1)


def _make_bin_fold(op):
    def fold(call: PrimApp) -> Application | None:
        a, b, cont = call.args
        left, right = as_int(a), as_int(b)
        if left is not None and right is not None:
            return invoke(cont, Lit(wrap_int(op(left, right))))
        return None

    return fold


def _fold_band(call: PrimApp) -> Application | None:
    a, b, cont = call.args
    if same_var(a, b):
        return invoke(cont, a)
    if as_int(a) == 0 or as_int(b) == 0:
        return invoke(cont, Lit(0))
    return _make_bin_fold(lambda x, y: x & y)(call)


def _fold_bor(call: PrimApp) -> Application | None:
    a, b, cont = call.args
    if same_var(a, b):
        return invoke(cont, a)
    if as_int(a) == 0:
        return invoke(cont, b)
    if as_int(b) == 0:
        return invoke(cont, a)
    return _make_bin_fold(lambda x, y: x | y)(call)


def _fold_bxor(call: PrimApp) -> Application | None:
    a, b, cont = call.args
    if same_var(a, b):
        return invoke(cont, Lit(0))
    return _make_bin_fold(lambda x, y: x ^ y)(call)


def _shl(a: int, b: int) -> int:
    return a << (b % 64)


def _shr(a: int, b: int) -> int:
    return a >> (b % 64)


def _fold_bnot(call: PrimApp) -> Application | None:
    a, cont = call.args
    value = as_int(a)
    if value is not None:
        return invoke(cont, Lit(wrap_int(~value)))
    return None


PRIMITIVES = [
    Primitive(
        "band",
        _BIN_SIG,
        Attributes(effect=EffectClass.PURE, commutative=True),
        fold=_fold_band,
        cost=1,
    ),
    Primitive(
        "bor",
        _BIN_SIG,
        Attributes(effect=EffectClass.PURE, commutative=True),
        fold=_fold_bor,
        cost=1,
    ),
    Primitive(
        "bxor",
        _BIN_SIG,
        Attributes(effect=EffectClass.PURE, commutative=True),
        fold=_fold_bxor,
        cost=1,
    ),
    Primitive(
        "shl",
        _BIN_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_bin_fold(_shl),
        cost=1,
    ),
    Primitive(
        "shr",
        _BIN_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_bin_fold(_shr),
        cost=1,
    ),
    Primitive(
        "bnot",
        _UN_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_bnot,
        cost=1,
    ),
]
