"""Shared helpers for primitive meta-evaluation (fold) functions."""

from __future__ import annotations

from repro.core.syntax import App, Application, Lit, Term, Value, Var

__all__ = [
    "INT_MIN",
    "INT_MAX",
    "as_int",
    "fits_int",
    "wrap_int",
    "invoke",
    "same_var",
]

#: TML integers are 64-bit signed machine integers; arithmetic primitives
#: invoke their exception continuation on overflow (paper section 2.3).
INT_BITS = 64
INT_MIN = -(1 << (INT_BITS - 1))
INT_MAX = (1 << (INT_BITS - 1)) - 1


def as_int(value: Value) -> int | None:
    """The payload of an integer literal, else None (bools are not ints)."""
    if isinstance(value, Lit) and isinstance(value.value, int) and not isinstance(
        value.value, bool
    ):
        return value.value
    return None


def fits_int(value: int) -> bool:
    return INT_MIN <= value <= INT_MAX


def wrap_int(value: int) -> int:
    """Two's-complement wrap to the 64-bit signed range (for bit primitives)."""
    masked = value & ((1 << INT_BITS) - 1)
    if masked > INT_MAX:
        masked -= 1 << INT_BITS
    return masked


def invoke(cont: Value, *results: Value) -> Application | None:
    """Build the application of a continuation to fold results.

    Returns None when the continuation position holds a literal (ill-formed
    input) so the fold harmlessly declines instead of crashing the optimizer.
    """
    if isinstance(cont, Lit):
        return None
    return App(cont, tuple(results))


def same_var(left: Term, right: Term) -> bool:
    """True when both are occurrences of the same variable.

    With unique binding this implies both denote the same runtime value,
    enabling folds such as ``x <= x  →  then-branch``.
    """
    return isinstance(left, Var) and isinstance(right, Var) and left.name == right.name
