"""Foreign function call primitive (paper Fig. 2).

``(ccall fn argvec ce cc)`` invokes a foreign routine.  In the original
Tycoon system this called into C; here the foreign world is a table of
registered Python callables (see :class:`repro.machine.runtime.ForeignTable`)
— the substitution preserves the IR-level contract: an opaque call with
*unknown* effects that the optimizer must neither fold, remove, nor reorder.

``fn`` is a literal (string name or OID) identifying the routine; ``argvec``
is a vector of arguments; the routine's result arrives at ``cc``, a raised
foreign error at ``ce``.
"""

from __future__ import annotations

from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES"]

PRIMITIVES = [
    Primitive(
        "ccall",
        Signature(value_args=2, cont_args=2),
        Attributes(effect=EffectClass.UNKNOWN),
        cost=20,
    ),
]
