"""Integer arithmetic and comparison primitives (paper Fig. 2).

Calling conventions::

    (p a b ce cc)      p in {+ - * / %}   — cc receives the result;
                                            ce fires on overflow / zeroDivide
    (p a b c1 c2)      p in {< > <= >=}   — c1 taken when true, c2 when false

Integers are 64-bit signed.  Division truncates toward zero (C semantics);
``%`` is the matching remainder, so ``a == (a/b)*b + a%b`` always holds.

Each primitive carries the meta-evaluation function the ``fold`` rewrite rule
dispatches to (section 2.3 item 2): literal operands reduce the call to an
application of the appropriate continuation —
``(+ 1 2 ce cc) → (cc 3)`` is the paper's own example — and algebraic
identities (``x+0``, ``x*1``, ``x*0``, ``x-x``, comparisons of a variable
with itself) reduce even with non-literal operands.
"""

from __future__ import annotations

from repro.core.syntax import Application, Lit, PrimApp
from repro.primitives._util import as_int, fits_int, invoke, same_var
from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES", "int_div", "int_rem"]

_ARITH_SIG = Signature(value_args=2, cont_args=2)
_CMP_SIG = Signature(value_args=2, cont_args=2)

#: Exception values passed to the exception continuation.
OVERFLOW = "overflow"
ZERO_DIVIDE = "zeroDivide"


def int_div(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def int_rem(a: int, b: int) -> int:
    """Remainder matching :func:`int_div`: ``a - int_div(a, b) * b``."""
    return a - int_div(a, b) * b


def _fold_add(call: PrimApp) -> Application | None:
    a, b, ce, cc = call.args
    left, right = as_int(a), as_int(b)
    if left is not None and right is not None:
        total = left + right
        if fits_int(total):
            return invoke(cc, Lit(total))
        return invoke(ce, Lit(OVERFLOW))
    if left == 0:
        return invoke(cc, b)
    if right == 0:
        return invoke(cc, a)
    return None


def _fold_sub(call: PrimApp) -> Application | None:
    a, b, ce, cc = call.args
    left, right = as_int(a), as_int(b)
    if left is not None and right is not None:
        total = left - right
        if fits_int(total):
            return invoke(cc, Lit(total))
        return invoke(ce, Lit(OVERFLOW))
    if right == 0:
        return invoke(cc, a)
    if same_var(a, b):
        return invoke(cc, Lit(0))
    return None


def _fold_mul(call: PrimApp) -> Application | None:
    a, b, ce, cc = call.args
    left, right = as_int(a), as_int(b)
    if left is not None and right is not None:
        total = left * right
        if fits_int(total):
            return invoke(cc, Lit(total))
        return invoke(ce, Lit(OVERFLOW))
    if left == 1:
        return invoke(cc, b)
    if right == 1:
        return invoke(cc, a)
    if left == 0 or right == 0:
        return invoke(cc, Lit(0))
    return None


def _fold_div(call: PrimApp) -> Application | None:
    a, b, ce, cc = call.args
    left, right = as_int(a), as_int(b)
    if right == 0:
        return invoke(ce, Lit(ZERO_DIVIDE))
    if left is not None and right is not None:
        total = int_div(left, right)
        if fits_int(total):  # INT_MIN / -1 overflows
            return invoke(cc, Lit(total))
        return invoke(ce, Lit(OVERFLOW))
    if right == 1:
        return invoke(cc, a)
    return None


def _fold_rem(call: PrimApp) -> Application | None:
    a, b, ce, cc = call.args
    left, right = as_int(a), as_int(b)
    if right == 0:
        return invoke(ce, Lit(ZERO_DIVIDE))
    if left is not None and right is not None:
        return invoke(cc, Lit(int_rem(left, right)))
    if right == 1:
        return invoke(cc, Lit(0))
    return None


def _make_cmp_fold(op, when_same: bool):
    def fold(call: PrimApp) -> Application | None:
        a, b, c_then, c_else = call.args
        left, right = as_int(a), as_int(b)
        if left is not None and right is not None:
            return invoke(c_then if op(left, right) else c_else)
        if same_var(a, b):
            return invoke(c_then if when_same else c_else)
        return None

    return fold


PRIMITIVES = [
    Primitive(
        "+",
        _ARITH_SIG,
        Attributes(effect=EffectClass.PURE, commutative=True),
        fold=_fold_add,
        cost=1,
    ),
    Primitive(
        "-",
        _ARITH_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_sub,
        cost=1,
    ),
    Primitive(
        "*",
        _ARITH_SIG,
        Attributes(effect=EffectClass.PURE, commutative=True),
        fold=_fold_mul,
        cost=2,
    ),
    Primitive(
        "/",
        _ARITH_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_div,
        cost=4,
    ),
    Primitive(
        "%",
        _ARITH_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_rem,
        cost=4,
    ),
    Primitive(
        "<",
        _CMP_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_cmp_fold(lambda a, b: a < b, when_same=False),
        cost=1,
    ),
    Primitive(
        ">",
        _CMP_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_cmp_fold(lambda a, b: a > b, when_same=False),
        cost=1,
    ),
    Primitive(
        "<=",
        _CMP_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_cmp_fold(lambda a, b: a <= b, when_same=True),
        cost=1,
    ),
    Primitive(
        ">=",
        _CMP_SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_make_cmp_fold(lambda a, b: a >= b, when_same=True),
        cost=1,
    ),
]
