"""Byte/integer conversion primitives (paper Fig. 2).

``(char2int v c)`` and ``(int2char v c)`` each take a single continuation.
``int2char`` truncates to the low byte, matching the paper's "convert an
integer to a byte value".
"""

from __future__ import annotations

from repro.core.syntax import Application, Char, Lit, PrimApp
from repro.primitives._util import as_int, invoke
from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES"]

_SIG = Signature(value_args=1, cont_args=1)


def _fold_char2int(call: PrimApp) -> Application | None:
    value, cont = call.args
    if isinstance(value, Lit) and isinstance(value.value, Char):
        return invoke(cont, Lit(value.value.code & 0xFF))
    return None


def _fold_int2char(call: PrimApp) -> Application | None:
    value, cont = call.args
    payload = as_int(value)
    if payload is not None:
        return invoke(cont, Lit(Char(chr(payload & 0xFF))))
    return None


PRIMITIVES = [
    Primitive(
        "char2int",
        _SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_char2int,
        cost=1,
    ),
    Primitive(
        "int2char",
        _SIG,
        Attributes(effect=EffectClass.PURE),
        fold=_fold_int2char,
        cost=1,
    ),
]
