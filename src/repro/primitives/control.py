"""Control primitives: identity case analysis, the Y combinator, and the
exception-handler machinery (paper Fig. 2 and section 2.3).

``==`` — case analysis based on object identity::

    (== v tag1..tagn c1..cn)          n branches
    (== v tag1..tagn c1..cn celse)    n branches plus an else branch

The branch continuations are nullary.  Identity on simple literals is value
equality; identity on store objects is OID equality.  Meta-evaluation picks
the branch when the scrutinee and tags are literals — the paper's example is
``(== 2 1 2 3 c1 c2 c3) → (c2)`` — and falls through to the else branch when
the scrutinee provably matches no tag.

``Y`` — the multiple-value-return CPS fixpoint combinator::

    (Y λ(c0 v1..vn c) (c entry abs1..absn))

binds ``entry``/``abs_i`` to ``c0``/``v_i`` recursively and then invokes the
entry continuation (section 2.3).  Its two rewrite rules (Y-remove, Y-reduce)
live in :mod:`repro.rewrite.rules`.

Exception handling::

    (pushHandler h c)    install continuation h as new handler, continue at c
    (popHandler c)       remove the topmost handler, continue at c
    (raise v)            transfer control to the topmost handler with v

This makes control flow explicit even for exceptions: inlined functions that
manipulate handlers are optimized by the ordinary rules, no special cases
(section 2.3).
"""

from __future__ import annotations

from repro.core.syntax import App, Application, Lit, PrimApp
from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES", "case_parts"]


def case_parts(call: PrimApp) -> tuple:
    """Split a ``==`` application into (scrutinee, tags, branches, else).

    ``else`` is None when absent.  Arity validity is the caller's concern
    (checked against the signature by wellformed / the optimizer).
    """
    args = call.args
    total = len(args)
    has_else = (total % 2) == 0
    n = (total - 2) // 2 if has_else else (total - 1) // 2
    scrutinee = args[0]
    tags = args[1 : 1 + n]
    branches = args[1 + n : 1 + 2 * n]
    else_branch = args[-1] if has_else else None
    return scrutinee, tags, branches, else_branch


def _fold_case(call: PrimApp) -> Application | None:
    scrutinee, tags, branches, else_branch = case_parts(call)
    if not isinstance(scrutinee, Lit):
        return None
    matched_unknown = False
    for tag, branch in zip(tags, branches):
        if not isinstance(tag, Lit):
            matched_unknown = True
            continue
        if tag.value == scrutinee.value and type(tag.value) is type(scrutinee.value):
            if matched_unknown:
                # an earlier non-literal tag might match first at runtime
                return None
            if isinstance(branch, Lit):
                return None
            return App(branch, ())
    if matched_unknown:
        return None
    if else_branch is not None and not isinstance(else_branch, Lit):
        return App(else_branch, ())
    return None


PRIMITIVES = [
    Primitive(
        "==",
        Signature(layout="case"),
        Attributes(effect=EffectClass.PURE),
        fold=_fold_case,
        cost=2,
    ),
    Primitive(
        "Y",
        Signature(layout="fixpoint"),
        Attributes(effect=EffectClass.PURE),
        cost=4,
    ),
    Primitive(
        "pushHandler",
        Signature(value_args=0, cont_args=2),
        Attributes(effect=EffectClass.CONTROL),
        cost=3,
    ),
    Primitive(
        "popHandler",
        Signature(value_args=0, cont_args=1),
        Attributes(effect=EffectClass.CONTROL),
        cost=2,
    ),
    Primitive(
        "raise",
        Signature(value_args=1, cont_args=0),
        Attributes(effect=EffectClass.CONTROL),
        cost=4,
    ),
]
