"""Input/output and program-termination primitives.

Not part of the paper's Fig. 2 (which targets a language whose I/O goes
through ``ccall``), but required by the Stanford benchmark programs and the
examples.  ``print`` appends to the machine's output channel; ``halt`` stops
execution delivering the final program result — the continuation a whole
compiled program is run with.

    (print v c)    write v, continue at c
    (halt v)       terminate with result v
"""

from __future__ import annotations

from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, Signature

__all__ = ["PRIMITIVES"]

PRIMITIVES = [
    Primitive(
        "print",
        Signature(value_args=1, cont_args=1),
        Attributes(effect=EffectClass.IO),
        cost=10,
    ),
    Primitive(
        "halt",
        Signature(value_args=1, cont_args=0),
        Attributes(effect=EffectClass.CONTROL),
        cost=1,
    ),
]
