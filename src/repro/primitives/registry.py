"""Primitive-procedure registry (paper section 2.3).

"In TML, most of the 'real work' needed to implement source language
semantics is factored out into primitive procedures which are not considered
part of the intermediate language itself."  A new primitive is defined by
providing four things (section 2.3):

1. a *code generation* function — registered by the back end
   (:mod:`repro.machine.codegen`) via :meth:`PrimitiveRegistry.set_emitter`;
2. a *meta-evaluation* function used by the ``fold`` rewrite rule —
   the ``fold`` callable here;
3. a *runtime cost estimate* in abstract machine instructions — ``cost``;
4. *attributes* for the optimizer — commutativity, side-effect class,
   per-rule enable flags — with worst-case defaults.

The registry is the single source of truth consulted by the well-formedness
checker (calling conventions), the optimizer (fold, cost, attributes), the
reference interpreter and the code generator (both register their handlers
here, keyed by primitive name, avoiding import cycles).

This registry is what makes TML adaptable: the query subsystem registers the
relational primitives (``select``, ``project``, ...) as *extensions* without
touching the core language — exactly the paper's pitch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from repro.core.syntax import Application, PrimApp
from repro.primitives.effects import EffectClass

__all__ = [
    "Signature",
    "Attributes",
    "Primitive",
    "PrimitiveRegistry",
    "default_registry",
    "FoldFn",
]

#: A meta-evaluation function: given a primitive application whose relevant
#: arguments are literal, return a strictly smaller replacement application,
#: or None when no useful meta-evaluation is possible (paper: "it simply
#: returns the original call").
FoldFn = Callable[[PrimApp], Optional[Application]]


@dataclass(frozen=True, slots=True)
class Signature:
    """Calling convention of a primitive.

    ``layout`` selects how continuation argument positions are computed:

    * ``"suffix"`` — ``value_args`` leading values (exactly, or at least when
      ``variadic``) followed by ``cont_args`` trailing continuations.  This
      covers every Fig. 2 primitive except ``==`` and ``Y``.
    * ``"case"`` — the ``==`` identity-case primitive:
      ``(== v tag1..tagn c1..cn [celse])`` with n >= 1.  Total arity ``t``
      determines the split: odd t has no else branch, even t has one.
    * ``"fixpoint"`` — the ``Y`` combinator: exactly one argument, the
      fixpoint function, which is a value position with special shape.
    """

    value_args: int = 0
    cont_args: int = 0
    variadic: bool = False
    layout: str = "suffix"

    def accepts_arity(self, total: int) -> bool:
        if self.layout == "case":
            return total >= 3
        if self.layout == "fixpoint":
            return total == 1
        if self.variadic:
            return total >= self.value_args + self.cont_args
        return total == self.value_args + self.cont_args

    def cont_positions(self, total: int) -> frozenset[int]:
        """Indices of arguments that are continuations, given total arity."""
        if self.layout == "case":
            # t = 1 + n tags + n branches (+ optional else)
            has_else = (total % 2) == 0
            branches = (total - 1) // 2 + (1 if has_else else 0)
            return frozenset(range(total - branches, total))
        if self.layout == "fixpoint":
            return frozenset()
        return frozenset(range(total - self.cont_args, total))

    def value_positions(self, total: int) -> frozenset[int]:
        return frozenset(range(total)) - self.cont_positions(total)

    def describe(self) -> str:
        if self.layout == "case":
            return "(== v tag1..tagn c1..cn [celse])"
        if self.layout == "fixpoint":
            return "(Y fixfun)"
        values = f"{self.value_args}{'+ ' if self.variadic else ''} values"
        return f"{values}, {self.cont_args} continuations"


@dataclass(frozen=True, slots=True)
class Attributes:
    """Optimizer-facing attributes with worst-case defaults (section 2.3)."""

    effect: EffectClass = EffectClass.UNKNOWN
    commutative: bool = False
    #: Disable the fold rule for this primitive (a per-rule enable flag).
    fold_enabled: bool = True
    #: Hint for the query optimizer: primitive iterates its relation argument.
    bulk: bool = False


@dataclass(slots=True)
class Primitive:
    """One primitive procedure: name, convention, semantics hooks, cost."""

    name: str
    signature: Signature
    attrs: Attributes = field(default_factory=Attributes)
    fold: FoldFn | None = None
    #: Runtime cost estimate in abstract-machine instructions (section 2.3
    #: item 3) — consulted by the expansion pass's savings heuristic.
    cost: int = 1
    #: Reference-interpreter handler; registered by repro.machine.cps_interp.
    interp: Callable | None = None
    #: Bytecode emitter; registered by repro.machine.codegen.
    emit: Callable | None = None

    def meta_evaluate(self, call: PrimApp) -> Application | None:
        """Apply the meta-evaluation function if enabled and applicable."""
        if self.fold is None or not self.attrs.fold_enabled:
            return None
        if call.prim != self.name:
            raise ValueError(f"call to {call.prim!r} handed to primitive {self.name!r}")
        return self.fold(call)


class PrimitiveRegistry:
    """A named collection of primitives; extensible per section 2.3."""

    def __init__(self, primitives: Iterable[Primitive] = ()) -> None:
        self._prims: dict[str, Primitive] = {}
        for prim in primitives:
            self.register(prim)

    def register(self, prim: Primitive, replace_existing: bool = False) -> None:
        if prim.name in self._prims and not replace_existing:
            raise ValueError(f"primitive {prim.name!r} already registered")
        self._prims[prim.name] = prim

    def lookup(self, name: str) -> Primitive:
        return self._prims[name]

    def get(self, name: str) -> Primitive | None:
        return self._prims.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._prims

    def names(self) -> frozenset[str]:
        return frozenset(self._prims)

    def __iter__(self):
        return iter(self._prims.values())

    def __len__(self) -> int:
        return len(self._prims)

    def set_interp(self, name: str, handler: Callable) -> None:
        """Attach a reference-interpreter handler to a primitive."""
        self._prims[name].interp = handler

    def set_emitter(self, name: str, emitter: Callable) -> None:
        """Attach a code-generation function to a primitive (item 1)."""
        self._prims[name].emit = emitter

    def with_disabled_fold(self, names: Iterable[str]) -> "PrimitiveRegistry":
        """A copy of the registry with fold disabled for ``names``.

        Used by the rule-ablation experiment (E7) and by tests exercising the
        per-rule enable flags of section 2.3 item 4.
        """
        disabled = set(names)
        clone = PrimitiveRegistry()
        for prim in self:
            if prim.name in disabled:
                attrs = replace(prim.attrs, fold_enabled=False)
                clone.register(
                    Primitive(
                        name=prim.name,
                        signature=prim.signature,
                        attrs=attrs,
                        fold=prim.fold,
                        cost=prim.cost,
                        interp=prim.interp,
                        emit=prim.emit,
                    )
                )
            else:
                clone.register(prim)
        return clone

    def copy(self) -> "PrimitiveRegistry":
        clone = PrimitiveRegistry()
        for prim in self:
            clone.register(prim)
        return clone


_default: PrimitiveRegistry | None = None


def default_registry() -> PrimitiveRegistry:
    """The standard Fig. 2 primitive set plus the I/O helpers.

    Built lazily and shared; callers that mutate (e.g. the query subsystem
    registering relational primitives, or ablation experiments) must work on
    a :meth:`PrimitiveRegistry.copy`.
    """
    global _default
    if _default is None:
        from repro.primitives import arith, arrays, bits, ccall, control, convert, io

        registry = PrimitiveRegistry()
        for module in (arith, bits, convert, arrays, control, ccall, io):
            for prim in module.PRIMITIVES:
                registry.register(prim)
        _default = registry
    return _default
