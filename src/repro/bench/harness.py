"""Measurement harness for the paper's section 6 experiments.

Three optimization configurations (the columns of E1/E2):

* ``none``   — code generated straight from CPS conversion;
* ``static`` — the local compile-time optimizer (reduction + expansion per
  function; imported library bindings remain free — the abstraction
  barrier), the paper's "local program optimizations";
* ``dynamic``— runtime reflective optimization across module boundaries
  (``reflect.optimize``), the paper's "move to dynamic (link-time or
  runtime) optimization".

For every Stanford program the harness reports wall time and executed TAM
instructions per configuration, plus the dynamic/static speedups whose
geometric mean is the paper's "more than doubles the execution speed".
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable

from repro.bench.stanford import PROGRAMS
from repro.lang import CompileOptions, TycoonSystem
from repro.machine.isa import VMClosure
from repro.reflect import optimize_result
from repro.rewrite.pipeline import OptimizerConfig

__all__ = [
    "StanfordRow",
    "run_stanford",
    "format_table",
    "geometric_mean",
    "CONFIG_NONE",
    "CONFIG_STATIC",
]

CONFIG_NONE = CompileOptions(optimizer=None)
CONFIG_STATIC = CompileOptions(optimizer=OptimizerConfig())


@dataclass
class StanfordRow:
    """Per-program measurements across the three configurations."""

    program: str
    n: int
    checksum: int
    time_none: float
    time_static: float
    time_dynamic: float
    instr_none: int
    instr_static: int
    instr_dynamic: int

    @property
    def static_speedup(self) -> float:
        return self.time_none / self.time_static if self.time_static else math.inf

    @property
    def dynamic_speedup(self) -> float:
        """Dynamic over static — the paper's headline ratio."""
        return self.time_static / self.time_dynamic if self.time_dynamic else math.inf

    @property
    def instr_ratio(self) -> float:
        """Instruction-count ratio static/dynamic (noise-free speedup proxy)."""
        return self.instr_static / self.instr_dynamic if self.instr_dynamic else math.inf


def _timed_call(system: TycoonSystem, closure: VMClosure, n: int, repeats: int):
    best = math.inf
    instructions = 0
    value = None
    for _ in range(repeats):
        vm = system.vm()
        start = time.perf_counter()
        result = vm.call(closure, [n])
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        instructions = result.instructions
        value = result.value
    return value, best, instructions


def run_stanford(
    names: Iterable[str] | None = None,
    scale: float = 1.0,
    repeats: int = 1,
    verify: bool = True,
) -> list[StanfordRow]:
    """Run the Stanford suite under all three configurations."""
    selected = list(names) if names is not None else sorted(PROGRAMS)
    system_none = TycoonSystem(options=CONFIG_NONE)
    system_static = TycoonSystem(options=CONFIG_STATIC)

    rows: list[StanfordRow] = []
    for name in selected:
        program = PROGRAMS[name]
        n = max(1, int(program.bench_n * scale))

        system_none.compile(program.source)
        system_static.compile(program.source)

        closure_none = system_none.closure(name, "run")
        closure_static = system_static.closure(name, "run")
        closure_dynamic = optimize_result(system_static, name, "run").closure

        value_none, t_none, i_none = _timed_call(system_none, closure_none, n, repeats)
        value_static, t_static, i_static = _timed_call(
            system_static, closure_static, n, repeats
        )
        value_dyn, t_dyn, i_dyn = _timed_call(system_static, closure_dynamic, n, repeats)

        if verify:
            expected = program.reference(n)
            for label, value in (
                ("none", value_none),
                ("static", value_static),
                ("dynamic", value_dyn),
            ):
                if value != expected:
                    raise AssertionError(
                        f"{name}[{label}](n={n}) = {value}, expected {expected}"
                    )

        rows.append(
            StanfordRow(
                program=name,
                n=n,
                checksum=value_none,
                time_none=t_none,
                time_static=t_static,
                time_dynamic=t_dyn,
                instr_none=i_none,
                instr_static=i_static,
                instr_dynamic=i_dyn,
            )
        )
    return rows


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0 and math.isfinite(v)]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(rows: list[StanfordRow]) -> str:
    """Render the E1/E2 results in the shape the paper reports."""
    header = (
        f"{'program':<10} {'n':>5} {'t_none':>9} {'t_static':>9} {'t_dyn':>9} "
        f"{'stat x':>7} {'dyn x':>7} {'instr x':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program:<10} {row.n:>5} "
            f"{row.time_none * 1e3:>8.2f}ms {row.time_static * 1e3:>8.2f}ms "
            f"{row.time_dynamic * 1e3:>8.2f}ms "
            f"{row.static_speedup:>7.2f} {row.dynamic_speedup:>7.2f} "
            f"{row.instr_ratio:>8.2f}"
        )
    lines.append("-" * len(header))
    lines.append(
        "geometric mean speedups: "
        f"static {geometric_mean([r.static_speedup for r in rows]):.2f}x, "
        f"dynamic {geometric_mean([r.dynamic_speedup for r in rows]):.2f}x "
        f"(instructions {geometric_mean([r.instr_ratio for r in rows]):.2f}x)"
    )
    return "\n".join(lines)
