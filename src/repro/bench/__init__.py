"""Benchmark workloads and measurement harnesses for the paper's experiments."""
