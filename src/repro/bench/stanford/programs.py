"""The Stanford benchmark suite in TL.

Paper section 6 evaluates TML's optimizers on "standard benchmarks for
imperative programs (the Stanford Suite)".  This module provides TL
implementations of ten Stanford-style programs, each exporting
``run(n: Int): Int`` that returns a checksum, plus Python reference
implementations used by the test suite to verify every checksum.

The programs deliberately lean on the operations section 6 calls out as
dynamically bound — integer arithmetic, comparisons and array accesses all
go through the library modules — which is why local/static optimization
cannot speed them up but runtime optimization can (experiments E1/E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["StanfordProgram", "PROGRAMS"]


@dataclass(frozen=True)
class StanfordProgram:
    """One benchmark: TL source, scale parameters, Python reference."""

    name: str
    source: str
    #: problem size for benchmarking (milliseconds-scale on the TAM)
    bench_n: int
    #: problem size for correctness tests (fast)
    test_n: int
    #: Python reference computing the expected checksum for any n
    reference: Callable[[int], int]


# ---------------------------------------------------------------------------
# perm — permutation generation (counts permutations by exchange recursion)
# ---------------------------------------------------------------------------

_PERM_SRC = """
module perm export run
let permute(a, k: Int): Int =
  if k <= 1 then 1
  else
    var count := 0 in
    begin
      for i = 0 upto k - 1 do
        let t = a[i] in
        begin
          a[i] := a[k - 1];
          a[k - 1] := t;
          count := count + permute(a, k - 1);
          let t2 = a[i] in
          begin
            a[i] := a[k - 1];
            a[k - 1] := t2
          end
        end
      end;
      count
    end
  end
let run(n: Int): Int =
  let a = array(n, 0) in
  begin
    for i = 0 upto n - 1 do a[i] := i end;
    permute(a, n)
  end
end
"""


def _perm_ref(n: int) -> int:
    import math

    return math.factorial(max(n, 1))


# ---------------------------------------------------------------------------
# towers — Towers of Hanoi move count
# ---------------------------------------------------------------------------

_TOWERS_SRC = """
module towers export run
let movedisks(n: Int, f: Int, t: Int, u: Int): Int =
  if n == 1 then 1
  else movedisks(n - 1, f, u, t) + 1 + movedisks(n - 1, u, t, f)
  end
let run(n: Int): Int = movedisks(n, 1, 2, 3)
end
"""


def _towers_ref(n: int) -> int:
    return (1 << n) - 1


# ---------------------------------------------------------------------------
# queens — N-queens solution count
# ---------------------------------------------------------------------------

_QUEENS_SRC = """
module queens export run
let place(row: Int, n: Int, cols, d1, d2): Int =
  if row == n then 1
  else
    var count := 0 in
    begin
      for c = 0 upto n - 1 do
        if cols[c] == 0 and d1[row + c] == 0 and d2[row - c + n - 1] == 0 then
          begin
            cols[c] := 1;
            d1[row + c] := 1;
            d2[row - c + n - 1] := 1;
            count := count + place(row + 1, n, cols, d1, d2);
            cols[c] := 0;
            d1[row + c] := 0;
            d2[row - c + n - 1] := 0
          end
        end
      end;
      count
    end
  end
let run(n: Int): Int =
  place(0, n, array(n, 0), array(2 * n, 0), array(2 * n, 0))
end
"""


def _queens_ref(n: int) -> int:
    def place(row, cols, d1, d2):
        if row == n:
            return 1
        total = 0
        for c in range(n):
            if not cols[c] and not d1[row + c] and not d2[row - c + n - 1]:
                cols[c] = d1[row + c] = d2[row - c + n - 1] = 1
                total += place(row + 1, cols, d1, d2)
                cols[c] = d1[row + c] = d2[row - c + n - 1] = 0
        return total

    return place(0, [0] * n, [0] * (2 * n), [0] * (2 * n))


# ---------------------------------------------------------------------------
# intmm — integer matrix multiply
# ---------------------------------------------------------------------------

_INTMM_SRC = """
module intmm export run
let run(n: Int): Int =
  let a = array(n * n, 0) in
  let b = array(n * n, 0) in
  let c = array(n * n, 0) in
  begin
    for i = 0 upto n * n - 1 do
      begin
        a[i] := i % 10;
        b[i] := (i * 3) % 10
      end
    end;
    for i = 0 upto n - 1 do
      for j = 0 upto n - 1 do
        var s := 0 in
        begin
          for k = 0 upto n - 1 do
            s := s + a[i * n + k] * b[k * n + j]
          end;
          c[i * n + j] := s
        end
      end
    end;
    var sum := 0 in
    begin
      for i = 0 upto n * n - 1 do sum := sum + c[i] * (i % 7) end;
      sum
    end
  end
end
"""


def _intmm_ref(n: int) -> int:
    a = [i % 10 for i in range(n * n)]
    b = [(i * 3) % 10 for i in range(n * n)]
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            c[i * n + j] = sum(a[i * n + k] * b[k * n + j] for k in range(n))
    return sum(v * (i % 7) for i, v in enumerate(c))


# ---------------------------------------------------------------------------
# bubble — bubble sort with checksum
# ---------------------------------------------------------------------------

_BUBBLE_SRC = """
module bubble export run
let run(n: Int): Int =
  let a = array(n, 0) in
  begin
    for i = 0 upto n - 1 do a[i] := ((n - i) * 7) % 101 end;
    for i = 0 upto n - 2 do
      for j = 0 upto n - 2 - i do
        if a[j] > a[j + 1] then
          let t = a[j] in
          begin
            a[j] := a[j + 1];
            a[j + 1] := t
          end
        end
      end
    end;
    var check := 0 in
    begin
      for i = 0 upto n - 1 do check := check + a[i] * (i + 1) end;
      check
    end
  end
end
"""


def _bubble_ref(n: int) -> int:
    a = sorted(((n - i) * 7) % 101 for i in range(n))
    return sum(v * (i + 1) for i, v in enumerate(a))


# ---------------------------------------------------------------------------
# quick — quicksort with checksum
# ---------------------------------------------------------------------------

_QUICK_SRC = """
module quick export run
let qsort(a, lo: Int, hi: Int): Unit =
  if lo < hi then
    let pivot = a[(lo + hi) / 2] in
    var i := lo in
    var j := hi in
    begin
      while i <= j do
        begin
          while a[i] < pivot do i := i + 1 end;
          while a[j] > pivot do j := j - 1 end;
          if i <= j then
            begin
              let t = a[i] in
              begin
                a[i] := a[j];
                a[j] := t
              end;
              i := i + 1;
              j := j - 1
            end
          end
        end
      end;
      qsort(a, lo, j);
      qsort(a, i, hi)
    end
  end
let run(n: Int): Int =
  let a = array(n, 0) in
  begin
    for i = 0 upto n - 1 do a[i] := (i * 1237 + 11) % 10007 end;
    qsort(a, 0, n - 1);
    var check := 0 in
    begin
      for i = 0 upto n - 1 do check := check + a[i] * (i % 13) end;
      check
    end
  end
end
"""


def _quick_ref(n: int) -> int:
    a = sorted((i * 1237 + 11) % 10007 for i in range(n))
    return sum(v * (i % 13) for i, v in enumerate(a))


# ---------------------------------------------------------------------------
# sieve — Sieve of Eratosthenes (prime count)
# ---------------------------------------------------------------------------

_SIEVE_SRC = """
module sieve export run
let run(n: Int): Int =
  let flags = array(n + 1, 1) in
  var count := 0 in
  begin
    for i = 2 upto n do
      if flags[i] == 1 then
        begin
          count := count + 1;
          var k := i + i in
          while k <= n do
            begin
              flags[k] := 0;
              k := k + i
            end
          end
        end
      end
    end;
    count
  end
end
"""


def _sieve_ref(n: int) -> int:
    flags = [True] * (n + 1)
    count = 0
    for i in range(2, n + 1):
        if flags[i]:
            count += 1
            for k in range(i + i, n + 1, i):
                flags[k] = False
    return count


# ---------------------------------------------------------------------------
# fib — naive Fibonacci (call-overhead stress)
# ---------------------------------------------------------------------------

_FIB_SRC = """
module fib export run
let fib(n: Int): Int =
  if n < 2 then n else fib(n - 1) + fib(n - 2) end
let run(n: Int): Int = fib(n)
end
"""


def _fib_ref(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


# ---------------------------------------------------------------------------
# tak — Takeuchi function (deep mutual recursion)
# ---------------------------------------------------------------------------

_TAK_SRC = """
module tak export run
let tak(x: Int, y: Int, z: Int): Int =
  if y < x then tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
  else z
  end
let run(n: Int): Int = tak(n + 6, n, n / 2)
end
"""


def _tak_ref(n: int) -> int:
    import functools

    @functools.lru_cache(maxsize=None)
    def tak(x, y, z):
        if y < x:
            return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
        return z

    return tak(n + 6, n, n // 2)


# ---------------------------------------------------------------------------
# treesort — binary search tree via records (allocation stress)
# ---------------------------------------------------------------------------

_TREESORT_SRC = """
module treesort export run
type Node = tuple leaf: Bool, left: Node, value: Int, right: Node end
let nil(): Node = tuple leaf = true, left = 0, value = 0, right = 0 end
let insert(t: Node, v: Int): Node =
  if t.leaf then
    tuple leaf = false, left = nil(), value = v, right = nil() end
  else
    if v < t.value then
      tuple leaf = false, left = insert(t.left, v), value = t.value,
            right = t.right end
    else
      tuple leaf = false, left = t.left, value = t.value,
            right = insert(t.right, v) end
    end
  end
let total(t: Node, rank: Int): Int =
  if t.leaf then 0
  else total(t.left, rank + 1) + t.value * rank + total(t.right, rank + 1)
  end
let run(n: Int): Int =
  var t := nil() in
  begin
    for i = 0 upto n - 1 do
      t := insert(t, (i * 97 + 31) % 1009)
    end;
    total(t, 1)
  end
end
"""


def _treesort_ref(n: int) -> int:
    class Node:
        __slots__ = ("leaf", "left", "value", "right")

        def __init__(self, leaf, left=None, value=0, right=None):
            self.leaf = leaf
            self.left = left
            self.value = value
            self.right = right

    nil = Node(True)

    def insert(t, v):
        if t.leaf:
            return Node(False, nil, v, nil)
        if v < t.value:
            return Node(False, insert(t.left, v), t.value, t.right)
        return Node(False, t.left, t.value, insert(t.right, v))

    def total(t, rank):
        if t.leaf:
            return 0
        return total(t.left, rank + 1) + t.value * rank + total(t.right, rank + 1)

    t = nil
    for i in range(n):
        t = insert(t, (i * 97 + 31) % 1009)
    return total(t, 1)


# ---------------------------------------------------------------------------
# strings — byte/char handling (char conversions, comparisons)
# ---------------------------------------------------------------------------

_STRINGS_SRC = """
module strings export run
let run(n: Int): Int =
  var acc := 0 in
  begin
    for i = 0 upto n - 1 do
      let c = chr(i % 256) in
      let back = ord(c) in
      if back % 3 == 0 then acc := acc + back else acc := acc - 1 end
    end;
    acc
  end
end
"""


def _strings_ref(n: int) -> int:
    acc = 0
    for i in range(n):
        back = i % 256
        if back % 3 == 0:
            acc += back
        else:
            acc -= 1
    return acc


PROGRAMS: dict[str, StanfordProgram] = {
    program.name: program
    for program in (
        StanfordProgram("perm", _PERM_SRC, bench_n=6, test_n=4, reference=_perm_ref),
        StanfordProgram("towers", _TOWERS_SRC, bench_n=12, test_n=5, reference=_towers_ref),
        StanfordProgram("queens", _QUEENS_SRC, bench_n=7, test_n=5, reference=_queens_ref),
        StanfordProgram("intmm", _INTMM_SRC, bench_n=12, test_n=4, reference=_intmm_ref),
        StanfordProgram("bubble", _BUBBLE_SRC, bench_n=60, test_n=12, reference=_bubble_ref),
        StanfordProgram("quick", _QUICK_SRC, bench_n=180, test_n=25, reference=_quick_ref),
        StanfordProgram("sieve", _SIEVE_SRC, bench_n=600, test_n=50, reference=_sieve_ref),
        StanfordProgram("fib", _FIB_SRC, bench_n=15, test_n=10, reference=_fib_ref),
        StanfordProgram("tak", _TAK_SRC, bench_n=4, test_n=2, reference=_tak_ref),
        StanfordProgram(
            "treesort", _TREESORT_SRC, bench_n=120, test_n=20, reference=_treesort_ref
        ),
        StanfordProgram(
            "strings", _STRINGS_SRC, bench_n=500, test_n=40, reference=_strings_ref
        ),
    )
}
