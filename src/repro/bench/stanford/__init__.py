"""The Stanford benchmark suite, written in TL (paper section 6 workload)."""

from repro.bench.stanford.programs import PROGRAMS, StanfordProgram

__all__ = ["PROGRAMS", "StanfordProgram"]
