"""Benchmark artifact emission: ``BENCH_vm.json`` and ``BENCH_opt.json``.

Turns one Stanford-suite run into two machine-readable artifacts so the
performance trajectory of this repository is tracked across PRs:

* ``BENCH_vm.json`` — per-program wall times and executed TAM instruction
  counts for the none/static/dynamic configurations plus the geometric-mean
  speedups (the paper's §6 table, as data);
* ``BENCH_opt.json`` — what the optimizer did to get there: term sizes
  before/after, cost estimates, generated code size and rule-fire counts
  from the reflective (dynamic) optimization of each program.

Both artifacts share the ``repro.metrics/v1``-style envelope written by
:mod:`repro.obs.exporters` and embed a process metrics snapshot, so store
and rewrite counters ride along for free.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from repro.bench.harness import StanfordRow, geometric_mean, run_stanford
from repro.bench.stanford import PROGRAMS
from repro.lang import TycoonSystem
from repro.obs.metrics import METRICS

__all__ = ["vm_payload", "opt_payload", "write_bench_artifacts"]


def _meta(scale: float, repeats: int) -> dict:
    return {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": sys.platform,
        "scale": scale,
        "repeats": repeats,
    }


def vm_payload(rows: list[StanfordRow], scale: float, repeats: int) -> dict:
    """The BENCH_vm.json document for one suite run."""
    return {
        "schema": "repro.bench.vm/v1",
        "meta": _meta(scale, repeats),
        "programs": [
            {
                "program": row.program,
                "n": row.n,
                "checksum": row.checksum,
                "wall_s": {
                    "none": row.time_none,
                    "static": row.time_static,
                    "dynamic": row.time_dynamic,
                },
                "instructions": {
                    "none": row.instr_none,
                    "static": row.instr_static,
                    "dynamic": row.instr_dynamic,
                },
                "static_speedup": row.static_speedup,
                "dynamic_speedup": row.dynamic_speedup,
                "instr_ratio": row.instr_ratio,
            }
            for row in rows
        ],
        "geomean": {
            "static_speedup": geometric_mean([r.static_speedup for r in rows]),
            "dynamic_speedup": geometric_mean([r.dynamic_speedup for r in rows]),
            "instr_ratio": geometric_mean([r.instr_ratio for r in rows]),
        },
        "metrics": METRICS.snapshot(),
    }


def opt_payload(names: list[str] | None, scale: float, repeats: int) -> dict:
    """The BENCH_opt.json document: reflective-optimizer work per program."""
    from repro.bench.harness import CONFIG_STATIC
    from repro.reflect import optimize_result

    selected = list(names) if names is not None else sorted(PROGRAMS)
    system = TycoonSystem(options=CONFIG_STATIC)
    results = []
    for name in selected:
        system.compile(PROGRAMS[name].source)
        reflected = optimize_result(system, name, "run")
        stats = reflected.stats
        results.append(
            {
                "program": name,
                "entities": reflected.entities,
                "holes": reflected.holes,
                "term_size_before": stats.size_before,
                "term_size_after": stats.size_after,
                "cost_before": reflected.cost_before,
                "cost_after": reflected.cost_after,
                "estimated_speedup": reflected.estimated_speedup,
                "code_size": reflected.code_size,
                "rounds": stats.rounds,
                "inlined_sites": stats.inlined_sites,
                "rules": {
                    rule: stats.rule_counts[rule]
                    for rule in sorted(stats.rule_counts)
                },
            }
        )
    return {
        "schema": "repro.bench.opt/v1",
        "meta": _meta(scale, repeats),
        "programs": results,
        "metrics": METRICS.snapshot(),
    }


def write_bench_artifacts(
    out_dir: str = ".",
    names: list[str] | None = None,
    scale: float = 1.0,
    repeats: int = 1,
    rows: list[StanfordRow] | None = None,
) -> tuple[str, str]:
    """Run the suite (unless ``rows`` is given) and write both artifacts.

    Returns the two file paths (``BENCH_vm.json``, ``BENCH_opt.json``).
    """
    if rows is None:
        rows = run_stanford(names=names, scale=scale, repeats=repeats)
    os.makedirs(out_dir, exist_ok=True)
    vm_path = os.path.join(out_dir, "BENCH_vm.json")
    opt_path = os.path.join(out_dir, "BENCH_opt.json")
    with open(vm_path, "w", encoding="utf-8") as fp:
        json.dump(vm_payload(rows, scale, repeats), fp, indent=2, sort_keys=True)
        fp.write("\n")
    with open(opt_path, "w", encoding="utf-8") as fp:
        json.dump(
            opt_payload([row.program for row in rows], scale, repeats),
            fp,
            indent=2,
            sort_keys=True,
        )
        fp.write("\n")
    return vm_path, opt_path
