"""Identifiers and fresh-name generation for TML terms.

TML's *unique binding rule* (paper section 2.2, constraint 4) requires that an
identifier is bound at most once in a whole TML tree.  We enforce this by
construction: every binder introduces :class:`Name` objects drawn from a
:class:`NameSupply`, which never hands out the same ``uid`` twice.  The
pretty-printer renders a name as ``base_uid`` (e.g. ``t_12``), matching the
paper's alpha-converted listings.

Names carry a *sort* — ``"val"`` for ordinary value variables and ``"cont"``
for continuation variables.  The sort powers the purely syntactic
``proc``/``cont`` classification of abstractions (section 2.2, constraint 5)
and the "continuations may not escape" check (constraint 3).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

VAL_SORT = "val"
CONT_SORT = "cont"
_SORTS = (VAL_SORT, CONT_SORT)


@dataclass(frozen=True, slots=True)
class Name:
    """A unique identifier occurring in a TML tree.

    Two names are the same identifier iff their ``uid`` is equal; ``base`` is
    only a human-readable hint preserved from the source program.
    """

    base: str
    uid: int
    sort: str = VAL_SORT

    def __post_init__(self) -> None:
        if self.sort not in _SORTS:
            raise ValueError(f"unknown name sort {self.sort!r}")
        if not self.base:
            raise ValueError("name base must be non-empty")

    @property
    def is_cont(self) -> bool:
        """True when this identifier denotes a continuation variable."""
        return self.sort == CONT_SORT

    def __str__(self) -> str:
        return f"{self.base}_{self.uid}"

    def __repr__(self) -> str:
        return f"Name({self.base!r}, {self.uid}, {self.sort!r})"

    # Names are compared/hashes purely by uid so that renaming the base hint
    # (e.g. during pretty-printing) can never conflate two identifiers.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)


class NameSupply:
    """Thread-safe generator of fresh :class:`Name` objects.

    A supply is typically owned by a compiler front end or by the optimizer.
    Distinct supplies must not be mixed in one tree unless one is a
    :meth:`fork` of the other; :func:`fresh_supply_above` builds a supply that
    is guaranteed not to collide with any name in an existing term.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self, base: str = "t", sort: str = VAL_SORT) -> Name:
        """Return a name that has never been returned by this supply."""
        with self._lock:
            uid = next(self._counter)
        return Name(base, uid, sort)

    def fresh_val(self, base: str = "t") -> Name:
        """Return a fresh value-sorted name."""
        return self.fresh(base, VAL_SORT)

    def fresh_cont(self, base: str = "c") -> Name:
        """Return a fresh continuation-sorted name."""
        return self.fresh(base, CONT_SORT)

    def fresh_like(self, name: Name) -> Name:
        """Return a fresh name with the same base and sort as ``name``."""
        return self.fresh(name.base, name.sort)

    def fresh_many(self, names: Iterable[Name]) -> list[Name]:
        """Freshen a whole parameter list, preserving bases and sorts."""
        return [self.fresh_like(n) for n in names]

    def peek(self) -> int:
        """Return the uid the next :meth:`fresh` call would use (for tests)."""
        with self._lock:
            value = next(self._counter)
            # itertools.count cannot be rewound; rebuild it one past value.
            self._counter = itertools.count(value)
        return value


@dataclass(slots=True)
class NameMap:
    """A finite renaming used during alpha-conversion.

    Maps old names to their fresh replacements; lookups of unmapped names
    return the name unchanged, so a :class:`NameMap` can be applied to any
    subterm.
    """

    mapping: dict[Name, Name] = field(default_factory=dict)

    def bind(self, old: Name, new: Name) -> None:
        if old.sort != new.sort:
            raise ValueError(f"renaming changes sort of {old}: {old.sort} -> {new.sort}")
        self.mapping[old] = new

    def lookup(self, name: Name) -> Name:
        return self.mapping.get(name, name)

    def __contains__(self, name: Name) -> bool:
        return name in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def items(self) -> Iterator[tuple[Name, Name]]:
        return iter(self.mapping.items())


def fresh_supply_above(uids: Iterable[int]) -> NameSupply:
    """Build a supply whose names cannot collide with the given uids."""
    top = max(uids, default=-1)
    return NameSupply(start=top + 1)
