"""Parser for TML concrete syntax (the notation used throughout the paper).

Grammar (s-expressions)::

    term   ::=  lit | ident | abs | app
    abs    ::=  ('λ' | 'lambda') '(' ident* ')' app
             |  'cont' '(' ident* ')' app        ; no continuation params
             |  'proc' '(' ident* ')' app        ; last two params are conts
    app    ::=  '(' term term* ')'
    lit    ::=  integer | 'true' | 'false' | 'unit'
             |  char ("'a'") | string ("\"..\"")
             |  '<oid' hex '>' | '#oid:' integer
    ident  ::=  ['^'] name ['_' number]          ; '^' marks a continuation

Scoping: a plain identifier in a parameter list introduces a binding; the
same spelling inside the body resolves to it.  Unbound identifiers denote
free variables and are interned per parse so that repeated occurrences are
the *same* name.  Identifiers spelled ``base_N`` (as produced by the
pretty-printer with ``show_uids=True``) reuse uid ``N`` directly, making
``parse(pretty(t)) == t`` exact.

An application whose head identifier is in the ``prims`` set becomes a
:class:`~repro.core.syntax.PrimApp`; anything else is a value application.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.names import CONT_SORT, VAL_SORT, Name, NameSupply
from repro.core.syntax import (
    Abs,
    App,
    Application,
    Char,
    Lit,
    Oid,
    PrimApp,
    Term,
    UNIT,
    Var,
)

__all__ = ["ParseError", "parse_term", "parse_application"]


class ParseError(ValueError):
    """Raised on malformed TML concrete syntax."""

    def __init__(self, message: str, position: int, text: str):
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|;[^\n]*)                      # whitespace / line comment
  | (?P<oid><oid\s+0x[0-9a-fA-F]+>|\#oid:\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<int>-?\d+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<ident>\$\[\]:=|\$\[\]|\[\]:=|\[\]|\$move|\$new
      |\^?[A-Za-z_λ$][A-Za-z0-9_.!?+*/%<>=&|~^$@-]*
      |==|<=|>=|[+\-*/%<>])
    """,
    re.VERBOSE,
)

_LAMBDA_KEYWORDS = {"λ", "lambda", "cont", "proc"}
_IDENT_UID_RE = re.compile(r"^(?P<base>.+)_(?P<uid>\d+)$")


@dataclass
class _Scope:
    """Lexical environment mapping source spellings to Names."""

    bindings: dict[str, Name] = field(default_factory=dict)
    parent: "_Scope | None" = None

    def lookup(self, spelling: str) -> Name | None:
        scope: _Scope | None = self
        while scope is not None:
            if spelling in scope.bindings:
                return scope.bindings[spelling]
            scope = scope.parent
        return None


class _Parser:
    def __init__(self, text: str, prims: frozenset[str], supply: NameSupply):
        self.text = text
        self.prims = prims
        self.supply = supply
        self.tokens = self._tokenize(text)
        self.index = 0
        self.free: dict[str, Name] = {}

    def _tokenize(self, text: str) -> list[tuple[str, str, int]]:
        tokens: list[tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise ParseError(f"unexpected character {text[position]!r}", position, text)
            position = match.end()
            kind = match.lastgroup
            assert kind is not None
            if kind != "ws":
                tokens.append((kind, match.group(), match.start()))
        tokens.append(("eof", "", len(text)))
        return tokens

    # -- token stream ------------------------------------------------------

    def peek(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str, int]:
        token = self.advance()
        if token[0] != kind:
            raise ParseError(f"expected {kind}, found {token[1]!r}", token[2], self.text)
        return token

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Term:
        term = self.term(_Scope())
        token = self.peek()
        if token[0] != "eof":
            raise ParseError(f"trailing input {token[1]!r}", token[2], self.text)
        return term

    def term(self, scope: _Scope) -> Term:
        kind, value, position = self.peek()
        if kind == "int":
            self.advance()
            return Lit(int(value))
        if kind == "char":
            self.advance()
            inner = value[1:-1]
            if inner.startswith("\\"):
                inner = {"\\n": "\n", "\\t": "\t", "\\'": "'", "\\\\": "\\"}.get(
                    inner, inner[1]
                )
            return Lit(Char(inner))
        if kind == "string":
            self.advance()
            body = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            return Lit(body)
        if kind == "oid":
            self.advance()
            if value.startswith("#oid:"):
                return Lit(Oid(int(value[5:])))
            hex_part = value[value.index("0x") + 2 : -1]
            return Lit(Oid(int(hex_part, 16)))
        if kind == "ident":
            if value in _LAMBDA_KEYWORDS and self._next_is_lparen():
                return self.abstraction(scope)
            self.advance()
            if value == "true":
                return Lit(True)
            if value == "false":
                return Lit(False)
            if value == "unit":
                return Lit(UNIT)
            return Var(self._resolve(value, scope))
        if kind == "lparen":
            return self.application(scope)
        raise ParseError(f"unexpected token {value!r}", position, self.text)

    def _next_is_lparen(self) -> bool:
        return self.tokens[self.index + 1][0] == "lparen"

    def abstraction(self, scope: _Scope) -> Abs:
        _, keyword, position = self.expect("ident")
        self.expect("lparen")
        spellings: list[str] = []
        while self.peek()[0] == "ident":
            spellings.append(self.advance()[1])
        self.expect("rparen")

        params: list[Name] = []
        inner = _Scope(parent=scope)
        for offset, spelling in enumerate(spellings):
            explicit_cont = spelling.startswith("^")
            bare = spelling[1:] if explicit_cont else spelling
            if keyword == "proc" and offset >= len(spellings) - 2:
                sort = CONT_SORT
            elif keyword == "cont":
                sort = VAL_SORT
                if explicit_cont:
                    raise ParseError(
                        "cont(...) parameters cannot be continuations",
                        position,
                        self.text,
                    )
            else:
                sort = CONT_SORT if explicit_cont else VAL_SORT
            name = self._intern_binding(bare, sort)
            inner.bindings[bare] = name
            params.append(name)

        if keyword == "proc" and len(spellings) < 2:
            raise ParseError(
                "proc(...) requires at least the two continuation parameters",
                position,
                self.text,
            )

        body = self.term(inner)
        if not isinstance(body, (App, PrimApp)):
            raise ParseError(
                "abstraction body must be an application", position, self.text
            )
        return Abs(tuple(params), body)

    def application(self, scope: _Scope) -> Application:
        _, _, position = self.expect("lparen")
        kind, value, _ = self.peek()
        prim_name: str | None = None
        if kind == "ident" and value in self.prims and value not in _LAMBDA_KEYWORDS:
            # A locally-bound identifier shadows a primitive of the same name.
            bare = value[1:] if value.startswith("^") else value
            if scope.lookup(bare) is None:
                prim_name = value
                self.advance()

        head: Term | None = None
        if prim_name is None:
            head = self.term(scope)
        args: list[Term] = []
        while self.peek()[0] not in ("rparen", "eof"):
            args.append(self.term(scope))
        self.expect("rparen")

        for arg in args:
            if isinstance(arg, (App, PrimApp)):
                raise ParseError(
                    "nested application in argument position (CPS forbids it)",
                    position,
                    self.text,
                )
        if prim_name is not None:
            return PrimApp(prim_name, tuple(args))
        if isinstance(head, (App, PrimApp)):
            raise ParseError(
                "application in functional position (CPS forbids it)",
                position,
                self.text,
            )
        if isinstance(head, Lit):
            raise ParseError("literal cannot be applied", position, self.text)
        assert head is not None
        return App(head, tuple(args))

    # -- names ---------------------------------------------------------------

    def _intern_binding(self, spelling: str, sort: str) -> Name:
        match = _IDENT_UID_RE.match(spelling)
        if match:
            return Name(match.group("base"), int(match.group("uid")), sort)
        return self.supply.fresh(spelling, sort)

    def _resolve(self, spelling: str, scope: _Scope) -> Name:
        explicit_cont = spelling.startswith("^")
        bare = spelling[1:] if explicit_cont else spelling
        bound = scope.lookup(bare)
        if bound is not None:
            return bound
        if bare not in self.free:
            match = _IDENT_UID_RE.match(bare)
            sort = CONT_SORT if explicit_cont else VAL_SORT
            if match:
                self.free[bare] = Name(match.group("base"), int(match.group("uid")), sort)
            else:
                self.free[bare] = self.supply.fresh(bare, sort)
        return self.free[bare]


def parse_term(
    text: str,
    prims: frozenset[str] | set[str] | None = None,
    supply: NameSupply | None = None,
) -> Term:
    """Parse a TML term from concrete syntax.

    Args:
        text: the source text.
        prims: names treated as primitive procedures in head position.
            Defaults to the standard Fig. 2 primitive set (resolved lazily to
            avoid a hard import cycle with :mod:`repro.primitives`).
        supply: name supply for identifiers without explicit uids; a private
            supply starting above any explicit uid is used by default.
    """
    if prims is None:
        from repro.primitives.registry import default_registry

        prims = default_registry().names()
    if supply is None:
        explicit = [int(m.group(1)) for m in re.finditer(r"_(\d+)[\s)(]", text + " ")]
        supply = NameSupply(start=max(explicit, default=-1) + 1)
    return _Parser(text, frozenset(prims), supply).parse()


def parse_application(
    text: str,
    prims: frozenset[str] | set[str] | None = None,
    supply: NameSupply | None = None,
) -> Application:
    """Parse and require an application (the shape of abstraction bodies)."""
    term = parse_term(text, prims, supply)
    if not isinstance(term, (App, PrimApp)):
        raise ParseError("expected an application", 0, text)
    return term
