"""Free-variable and binding analysis on TML terms (paper section 1).

The introduction lists the common tool tasks TML unifies:

* *Binding analysis* — which binder does an identifier occurrence refer to,
  and are there multiple references to the same entity?
* *Free variable analysis* — does a variable appear in a query predicate,
  does a procedure depend on globals, are there independent subexpressions?

Thanks to the unique binding rule these analyses are one-pass set
computations: a variable is free in ``term`` iff it occurs but is not bound
by any abstraction *inside* ``term``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.names import Name
from repro.core.syntax import Abs, App, PrimApp, Term, Var, iter_subterms

__all__ = [
    "free_names",
    "free_in",
    "is_closed",
    "BindingInfo",
    "binding_analysis",
    "independent_of",
    "applications_of",
    "escaping_uses",
]


def free_names(term: Term) -> set[Name]:
    """The set of names occurring free in ``term``.

    With unique binding, free = occurring − bound-inside, computed in one
    traversal.
    """
    occurring: set[Name] = set()
    bound: set[Name] = set()
    for node in iter_subterms(term):
        if isinstance(node, Var):
            occurring.add(node.name)
        elif isinstance(node, Abs):
            bound.update(node.params)
    return occurring - bound


def free_in(name: Name, term: Term) -> bool:
    """True iff ``name`` occurs free in ``term``.

    This is the precondition form used by query rewrite rules such as
    *trivial-exists* (section 4.2): ``|p|_x = 0`` means the range variable is
    not free in the predicate.
    """
    return name in free_names(term)


def is_closed(term: Term) -> bool:
    """True iff ``term`` has no free variables."""
    return not free_names(term)


@dataclass(slots=True)
class BindingInfo:
    """Result of :func:`binding_analysis` over one term.

    Attributes:
        binder_of: maps each bound name to the abstraction that binds it.
        occurrences: occurrence count per name (free names included).
        free: names with no binder inside the analyzed term.
        multiply_referenced: bound names with more than one occurrence —
            candidates where substitution of an abstraction is inhibited
            (the ``subst`` precondition) and inlining must copy.
    """

    binder_of: dict[Name, Abs] = field(default_factory=dict)
    occurrences: dict[Name, int] = field(default_factory=dict)
    free: set[Name] = field(default_factory=set)

    @property
    def multiply_referenced(self) -> set[Name]:
        return {name for name, n in self.occurrences.items() if n > 1}

    @property
    def unreferenced(self) -> set[Name]:
        """Bound names that never occur — dead bindings (``remove`` targets)."""
        return {name for name in self.binder_of if self.occurrences.get(name, 0) == 0}


def binding_analysis(term: Term) -> BindingInfo:
    """One-pass binding analysis: binders, occurrence counts, free names."""
    info = BindingInfo()
    for node in iter_subterms(term):
        if isinstance(node, Abs):
            for param in node.params:
                info.binder_of[param] = node
        elif isinstance(node, Var):
            info.occurrences[node.name] = info.occurrences.get(node.name, 0) + 1
    info.free = {
        name for name in info.occurrences if name not in info.binder_of
    }
    return info


def independent_of(term: Term, names: set[Name]) -> bool:
    """True iff ``term`` references none of ``names``.

    The "independent subexpressions" question from section 1: e.g. a
    selection predicate is independent of an outer loop variable, enabling
    hoisting.
    """
    for node in iter_subterms(term):
        if isinstance(node, Var) and node.name in names:
            return False
    return True


def applications_of(term: Term, name: Name) -> list[App]:
    """All value applications whose functional position is ``name``.

    Used by the expansion pass to find the call sites of a bound procedure.
    """
    sites: list[App] = []
    for node in iter_subterms(term):
        if isinstance(node, App) and isinstance(node.fn, Var) and node.fn.name == name:
            sites.append(node)
    return sites


def escaping_uses(term: Term, name: Name) -> list[Term]:
    """Occurrences of ``name`` outside functional position.

    A procedure whose every use is a direct call can be inlined and its
    binding removed; an *escaping* use (passed as an argument) forces the
    closure to be materialized.  Returns the application nodes in which the
    escaping occurrences appear.
    """
    sites: list[Term] = []
    for node in iter_subterms(term):
        if isinstance(node, App):
            for arg in node.args:
                if isinstance(arg, Var) and arg.name == name:
                    sites.append(node)
        elif isinstance(node, PrimApp):
            for arg in node.args:
                if isinstance(arg, Var) and arg.name == name:
                    sites.append(node)
    return sites
