"""Capture-free substitution — the E[val/v] operation of paper section 3.

The paper defines substitution inductively::

    v[val/v]                    = val
    v'[val/v]                   = v'                      (v != v')
    lit[val/v]                  = lit
    prim[val/v]                 = prim
    (λ(v1..vn) app)[val/v]      = λ(v1..vn) (app[val/v])
    (val0 val1..valn)[val/v]    = (val0[val/v] .. valn[val/v])

Because of the unique binding rule, no capture can occur and no binder check
is needed.  The single caveat the paper notes: when the substituted value is
an *abstraction*, its parameters momentarily occur at two places in the tree;
the original binding site is removed immediately afterwards by the ``remove``
rule, restoring the invariant.  The expansion pass, which substitutes an
abstraction into *several* use sites, must instead alpha-rename each inserted
copy — :func:`alpha_rename` provides that.

Implementations are iterative (explicit work stack) so that the megabyte-deep
CPS chains produced for large TL programs do not hit Python's recursion
limit.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.names import Name, NameMap, NameSupply
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Value, Var

__all__ = ["substitute", "substitute_many", "alpha_rename", "rename_free"]


def substitute(term: Term, value: Value, name: Name) -> Term:
    """Return ``term[value/name]``.

    ``value`` must be a TML value (Lit/Var/Abs); substituting an application
    would violate the CPS argument discipline, so it is rejected.
    """
    return substitute_many(term, {name: value})


def substitute_many(term: Term, bindings: Mapping[Name, Value]) -> Term:
    """Simultaneously substitute several variables in one traversal."""
    if not bindings:
        return term
    for value in bindings.values():
        if not isinstance(value, (Lit, Var, Abs)):
            raise TypeError(
                f"cannot substitute a {type(value).__name__}; "
                "only values may replace variables in CPS"
            )
    return _rebuild(term, lambda var: bindings.get(var.name))


def alpha_rename(term: Term, supply: NameSupply) -> Term:
    """Return an alpha-equivalent copy of ``term`` with all-fresh binders.

    Every name bound inside ``term`` is replaced by a fresh name from
    ``supply``; free variables are left untouched.  This is the operation the
    expansion pass applies to each inlined copy of a procedure body so the
    unique binding rule survives multi-site inlining, and the operation the
    PTML decoder applies when splicing stored terms into a live tree.
    """
    renaming = NameMap()

    def fresh_params(params: tuple[Name, ...]) -> tuple[Name, ...]:
        fresh = tuple(supply.fresh_like(p) for p in params)
        for old, new in zip(params, fresh):
            renaming.bind(old, new)
        return fresh

    # Parameters are freshened on the way down, so by the time a Var is
    # visited its binder (an ancestor in the preorder walk) is already mapped.
    return _rebuild(
        term,
        lambda var: Var(renaming.lookup(var.name)) if var.name in renaming else None,
        on_params=fresh_params,
    )


def rename_free(term: Term, renaming: Mapping[Name, Name]) -> Term:
    """Rename free-variable occurrences according to ``renaming``.

    Used when wrapping a decoded PTML body in a fresh binder list: the stored
    free names are remapped onto the parameters of the wrapper abstraction.
    """
    if not renaming:
        return term
    return _rebuild(
        term,
        lambda var: Var(renaming[var.name]) if var.name in renaming else None,
    )


# ---------------------------------------------------------------------------
# Iterative tree rebuilding
# ---------------------------------------------------------------------------

# The rebuild engine walks the tree with an explicit stack.  Each frame is
# (node, phase): phase 0 pushes children, phase 1 pops rebuilt children from
# the result stack and reassembles the node.  Nodes that are unchanged are
# reused (pointer equality), keeping rewrites cheap on large trees.


def _rebuild(term, var_hook, on_params=None):
    EXPAND, BUILD = 0, 1
    work: list[tuple[Term, int]] = [(term, EXPAND)]
    results: list[Term] = []
    # Parameter tuples must be freshened on the way *down* (so occurrences
    # below see the renaming), hence this side table filled during EXPAND.
    new_params: dict[int, tuple[Name, ...]] = {}

    while work:
        node, phase = work.pop()
        if phase == EXPAND:
            if isinstance(node, Lit):
                results.append(node)
            elif isinstance(node, Var):
                replacement = var_hook(node)
                results.append(node if replacement is None else replacement)
            elif isinstance(node, Abs):
                if on_params is not None:
                    new_params[id(node)] = on_params(node.params)
                work.append((node, BUILD))
                work.append((node.body, EXPAND))
            elif isinstance(node, App):
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
                work.append((node.fn, EXPAND))
            elif isinstance(node, PrimApp):
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
            else:  # pragma: no cover - defensive
                raise TypeError(f"not a TML term: {node!r}")
        else:  # BUILD
            if isinstance(node, Abs):
                body = results.pop()
                params = new_params.pop(id(node), node.params)
                if body is node.body and params is node.params:
                    results.append(node)
                else:
                    results.append(Abs(params, body))
            elif isinstance(node, App):
                count = 1 + len(node.args)
                parts = results[-count:]
                del results[-count:]
                fn, args = parts[0], tuple(parts[1:])
                if fn is node.fn and all(a is b for a, b in zip(args, node.args)):
                    results.append(node)
                else:
                    results.append(App(fn, args))
            else:  # PrimApp
                count = len(node.args)
                if count:
                    args = tuple(results[-count:])
                    del results[-count:]
                else:
                    args = ()
                if all(a is b for a, b in zip(args, node.args)):
                    results.append(node)
                else:
                    results.append(PrimApp(node.prim, args))

    assert len(results) == 1
    return results[0]
