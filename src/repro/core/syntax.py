"""Abstract syntax of TML, the Tycoon Machine Language (paper Fig. 1).

The grammar is deliberately minimal — six node kinds suffice::

    app  ::=  (val0 val1 .. valn)          value application        -> App
           |  (prim val1 .. valn)          primitive application    -> PrimApp
    val  ::=  lit                          literal constant         -> Lit
           |  var                          identifier occurrence    -> Var
           |  abs                          lambda abstraction       -> Abs
    lit  ::=  int | char | bool | unit | string | oid

Literal constants include *object identifiers* (:class:`Oid`) denoting
arbitrarily complex objects in the persistent Tycoon object store (paper
section 2.2), which is what makes TML a *persistent* intermediate
representation rather than a plain compiler IR.

All nodes are immutable; rewriting builds new trees.  The body of an
abstraction must itself be an application — this syntactic restriction is
what makes the CPS rewrite rules sound in the presence of side effects
(actual parameters can only be constants, variables or abstractions, never
nested calls; paper section 2.1).

Abstractions are classified *syntactically* as ``cont`` (no continuation
parameters) or ``proc`` (value parameters followed by exception and normal
continuation parameters) per section 2.2, constraint 5.  Both are plain
lambda abstractions semantically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.names import Name

__all__ = [
    "Oid",
    "Unit",
    "UNIT",
    "Char",
    "LitValue",
    "Lit",
    "Var",
    "Abs",
    "App",
    "PrimApp",
    "Value",
    "Application",
    "Term",
    "is_value",
    "is_application",
    "term_size",
    "iter_subterms",
    "iter_applications",
    "iter_abstractions",
    "bound_names",
    "max_uid",
]


@dataclass(frozen=True, slots=True)
class Oid:
    """An object identifier referencing the persistent object store.

    The integer payload is the store-assigned identity.  The paper prints
    these as ``<oid 0x005b4780>``; :meth:`__str__` follows that format.
    """

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("oid must be non-negative")

    def __str__(self) -> str:
        return f"<oid 0x{self.value:08x}>"

    def __index__(self) -> int:
        return self.value


class Unit:
    """The unit value (result of statements evaluated for effect)."""

    _instance: "Unit | None" = None

    def __new__(cls) -> "Unit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "unit"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unit)

    def __hash__(self) -> int:
        return hash(Unit)


UNIT = Unit()


@dataclass(frozen=True, slots=True)
class Char:
    """A single byte/character literal, kept distinct from 1-char strings."""

    value: str

    def __post_init__(self) -> None:
        if len(self.value) != 1:
            raise ValueError("Char must hold exactly one character")

    def __str__(self) -> str:
        return f"'{self.value}'"

    @property
    def code(self) -> int:
        return ord(self.value)


#: Python types admissible as TML literal payloads.
LitValue = Union[int, bool, str, Char, Oid, Unit]

_LIT_TYPES = (bool, int, str, Char, Oid, Unit)


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal constant: simple value or persistent object identifier."""

    value: LitValue

    def __post_init__(self) -> None:
        if not isinstance(self.value, _LIT_TYPES):
            raise TypeError(f"invalid literal payload: {type(self.value).__name__}")

    @property
    def is_oid(self) -> bool:
        return isinstance(self.value, Oid)


@dataclass(frozen=True, slots=True)
class Var:
    """An occurrence of a bound identifier."""

    name: Name

    @property
    def is_cont(self) -> bool:
        return self.name.is_cont


@dataclass(frozen=True, slots=True)
class Abs:
    """A lambda abstraction ``λ(v1 .. vn) app``.

    The body must be an application (App or PrimApp).  Parameter names must
    be pairwise distinct; the global unique-binding rule across a whole tree
    is checked by :mod:`repro.core.wellformed`.
    """

    params: tuple[Name, ...]
    body: "Application"

    def __post_init__(self) -> None:
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))
        for param in self.params:
            if not isinstance(param, Name):
                raise TypeError(f"abstraction parameter must be a Name, got {param!r}")
        if len(set(self.params)) != len(self.params):
            raise ValueError("duplicate parameter in abstraction")
        if not isinstance(self.body, (App, PrimApp)):
            raise TypeError("abstraction body must be an application")

    @property
    def cont_params(self) -> tuple[Name, ...]:
        """The continuation-sorted parameters (suffix for proc abstractions)."""
        return tuple(p for p in self.params if p.is_cont)

    @property
    def value_params(self) -> tuple[Name, ...]:
        return tuple(p for p in self.params if not p.is_cont)

    @property
    def is_cont_abs(self) -> bool:
        """A *continuation* abstraction takes no continuation parameters."""
        return not self.cont_params

    @property
    def is_proc_abs(self) -> bool:
        """A *procedure* abstraction takes continuation parameters.

        Well-formed user-level procedures take exactly two (exception and
        normal continuation, in that order); see constraint 5 of section 2.2.
        """
        return bool(self.cont_params)

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True, slots=True)
class App:
    """A value application ``(val0 val1 .. valn)``.

    ``fn`` is the functional position; arguments are values only — by the CPS
    discipline there are no nested calls, so evaluation order is fully
    explicit.
    """

    fn: "Value"
    args: tuple["Value", ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if isinstance(self.fn, Lit):
            raise TypeError("literal in functional position can never be applied")
        _check_values(self.args)

    @property
    def arity(self) -> int:
        return len(self.args)


@dataclass(frozen=True, slots=True)
class PrimApp:
    """An application of a primitive procedure ``(prim val1 .. valn)``.

    Primitives are referenced by name and resolved against the
    :class:`repro.primitives.registry.PrimitiveRegistry`; they are *not*
    values and cannot be bound to variables (paper section 2.3).
    """

    prim: str
    args: tuple["Value", ...]

    def __post_init__(self) -> None:
        if not isinstance(self.prim, str) or not self.prim:
            raise TypeError("primitive name must be a non-empty string")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        _check_values(self.args)

    @property
    def arity(self) -> int:
        return len(self.args)


Value = Union[Lit, Var, Abs]
Application = Union[App, PrimApp]
Term = Union[Lit, Var, Abs, App, PrimApp]

_VALUE_TYPES = (Lit, Var, Abs)


def _check_values(args: tuple["Value", ...]) -> None:
    for arg in args:
        if not isinstance(arg, _VALUE_TYPES):
            raise TypeError(
                "application argument must be a value (Lit/Var/Abs), "
                f"got {type(arg).__name__} — CPS forbids nested calls"
            )


def is_value(term: Term) -> bool:
    """True for literals, variables and abstractions."""
    return isinstance(term, _VALUE_TYPES)


def is_application(term: Term) -> bool:
    """True for value and primitive applications."""
    return isinstance(term, (App, PrimApp))


def term_size(term: Term) -> int:
    """Number of abstract-syntax nodes in ``term``.

    The reduction rules of section 3 strictly decrease this measure, which is
    the paper's termination argument for the reduction pass.
    """
    total = 0
    for _ in iter_subterms(term):
        total += 1
    return total


def iter_subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every subterm, preorder, iteratively.

    Deeply nested CPS chains (one application per source statement) would
    overflow Python's recursion limit, so all core traversals are explicit-
    stack based.
    """
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Abs):
            stack.append(node.body)
        elif isinstance(node, App):
            for arg in reversed(node.args):
                stack.append(arg)
            stack.append(node.fn)
        elif isinstance(node, PrimApp):
            for arg in reversed(node.args):
                stack.append(arg)


def iter_applications(term: Term) -> Iterator[Application]:
    """Yield every application node in ``term`` (preorder)."""
    for node in iter_subterms(term):
        if isinstance(node, (App, PrimApp)):
            yield node


def iter_abstractions(term: Term) -> Iterator[Abs]:
    """Yield every abstraction node in ``term`` (preorder)."""
    for node in iter_subterms(term):
        if isinstance(node, Abs):
            yield node


def bound_names(term: Term) -> list[Name]:
    """All names bound by abstractions inside ``term`` (with duplicates)."""
    names: list[Name] = []
    for abs_node in iter_abstractions(term):
        names.extend(abs_node.params)
    return names


def max_uid(term: Term) -> int:
    """Largest name uid occurring in ``term`` (-1 if none).

    Used to build non-colliding fresh-name supplies over existing terms, e.g.
    when the runtime optimizer decodes a PTML blob from the store.
    """
    top = -1
    for node in iter_subterms(term):
        if isinstance(node, Var):
            top = max(top, node.name.uid)
        elif isinstance(node, Abs):
            for param in node.params:
                top = max(top, param.uid)
    return top
