"""Programmatic construction helpers for TML trees.

Front ends and tests build TML with these combinators instead of spelling
out ``Abs``/``App`` nodes.  The builder owns a :class:`NameSupply`, so every
binder it creates is automatically fresh — constructing code through a
builder can never violate the unique binding rule.

The central idiom is :meth:`TmlBuilder.let`: CPS has no `let` form, a binding
is the immediate application of a continuation abstraction::

    let v = val in app     ===     (cont(v) app  val)   i.e.  (λ(v) app  val)
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.names import Name, NameSupply
from repro.core.syntax import (
    Abs,
    App,
    Application,
    Char,
    Lit,
    LitValue,
    Oid,
    PrimApp,
    UNIT,
    Value,
    Var,
)

__all__ = ["TmlBuilder", "lit", "int_lit", "char_lit", "oid_lit", "unit_lit"]


def lit(value: LitValue) -> Lit:
    """Wrap a Python value as a TML literal."""
    return Lit(value)


def int_lit(value: int) -> Lit:
    return Lit(int(value))


def char_lit(char: str) -> Lit:
    return Lit(Char(char))


def oid_lit(oid: int | Oid) -> Lit:
    return Lit(oid if isinstance(oid, Oid) else Oid(oid))


def unit_lit() -> Lit:
    return Lit(UNIT)


class TmlBuilder:
    """Stateful TML constructor bound to a fresh-name supply."""

    def __init__(self, supply: NameSupply | None = None) -> None:
        self.supply = supply or NameSupply()

    # -- names ---------------------------------------------------------------

    def val_name(self, base: str = "t") -> Name:
        return self.supply.fresh_val(base)

    def cont_name(self, base: str = "c") -> Name:
        return self.supply.fresh_cont(base)

    # -- values ---------------------------------------------------------------

    def var(self, name: Name) -> Var:
        return Var(name)

    def cont(self, params: Sequence[Name], body: Application) -> Abs:
        """A continuation abstraction ``cont(params) body``."""
        abs_node = Abs(tuple(params), body)
        if not abs_node.is_cont_abs:
            raise ValueError("continuation abstraction may not take cont params")
        return abs_node

    def cont1(self, base: str, make_body: Callable[[Var], Application]) -> Abs:
        """One-parameter continuation; the callback receives the parameter."""
        param = self.val_name(base)
        return Abs((param,), make_body(Var(param)))

    def cont0(self, body: Application) -> Abs:
        """A nullary continuation ``cont() body``."""
        return Abs((), body)

    def proc(
        self,
        value_params: Sequence[Name],
        make_body: Callable[[Name, Name], Application],
    ) -> Abs:
        """A user-level procedure ``proc(v1..vn ce cc) body``.

        The callback receives the freshly created exception and normal
        continuation parameters (in that order).
        """
        ce = self.cont_name("ce")
        cc = self.cont_name("cc")
        body = make_body(ce, cc)
        return Abs(tuple(value_params) + (ce, cc), body)

    # -- applications ----------------------------------------------------------

    def app(self, fn: Value, *args: Value) -> App:
        return App(fn, tuple(args))

    def prim(self, name: str, *args: Value) -> PrimApp:
        return PrimApp(name, tuple(args))

    def let(
        self, value: Value, base: str, make_body: Callable[[Var], Application]
    ) -> App:
        """Bind ``value`` to a fresh variable visible in the body.

        ``let v = value in body``  ≡  ``(λ(v) body  value)``.
        """
        name = self.val_name(base)
        return App(Abs((name,), make_body(Var(name))), (value,))

    def let_many(
        self,
        values: Sequence[Value],
        bases: Sequence[str],
        make_body: Callable[[list[Var]], Application],
    ) -> App:
        """Bind several values at once with a single abstraction."""
        if len(values) != len(bases):
            raise ValueError("values and bases must have equal length")
        names = [self.val_name(base) for base in bases]
        body = make_body([Var(n) for n in names])
        return App(Abs(tuple(names), body), tuple(values))

    def call(self, fn: Value, args: Sequence[Value], ce: Value, cc: Value) -> App:
        """A user procedure call ``(fn a1..an ce cc)``."""
        return App(fn, tuple(args) + (ce, cc))

    def fix(
        self,
        entry: Abs,
        bindings: Sequence[tuple[Name, Abs]],
    ) -> PrimApp:
        """Apply the Y fixpoint primitive (paper section 2.3).

        ``(Y λ(c0 v1..vn c) (c cont() entry-app  abs1..absn))`` —
        the n abstractions become mutually recursive under the names
        ``v1..vn`` and the entry continuation runs once the bindings are
        established.  ``entry`` must be a nullary continuation.
        """
        if entry.params:
            raise ValueError("Y entry continuation must be nullary")
        c0 = self.cont_name("c0")
        c = self.cont_name("c")
        names = tuple(name for name, _ in bindings)
        abses = tuple(abs_node for _, abs_node in bindings)
        body = App(Var(c), (entry,) + abses)
        fixfun = Abs((c0,) + names + (c,), body)
        return PrimApp("Y", (fixfun,))
