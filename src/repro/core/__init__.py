"""Core TML intermediate representation (paper section 2).

Abstract syntax, unique-binding names, occurrence counting, capture-free
substitution, free-variable/binding analysis, well-formedness checking, and
concrete syntax (parser + pretty-printer).
"""

from repro.core.builder import TmlBuilder
from repro.core.names import CONT_SORT, VAL_SORT, Name, NameSupply
from repro.core.parser import ParseError, parse_term
from repro.core.pretty import PrettyOptions, pretty, pretty_compact
from repro.core.syntax import (
    Abs,
    App,
    Application,
    Char,
    Lit,
    Oid,
    PrimApp,
    Term,
    UNIT,
    Unit,
    Value,
    Var,
    is_application,
    is_value,
    iter_abstractions,
    iter_applications,
    iter_subterms,
    max_uid,
    term_size,
)
from repro.core.wellformed import WellFormednessError, check, is_well_formed, violations

__all__ = [
    "TmlBuilder",
    "CONT_SORT",
    "VAL_SORT",
    "Name",
    "NameSupply",
    "ParseError",
    "parse_term",
    "PrettyOptions",
    "pretty",
    "pretty_compact",
    "Abs",
    "App",
    "Application",
    "Char",
    "Lit",
    "Oid",
    "PrimApp",
    "Term",
    "UNIT",
    "Unit",
    "Value",
    "Var",
    "is_application",
    "is_value",
    "iter_abstractions",
    "iter_applications",
    "iter_subterms",
    "max_uid",
    "term_size",
    "WellFormednessError",
    "check",
    "is_well_formed",
    "violations",
]
