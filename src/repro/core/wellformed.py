"""Well-formedness checking for TML trees (paper section 2.2, constraints 1-5).

The paper's constraints:

1. The functional position of an application evaluates to an abstraction of
   matching arity — statically enforced by the (typed) front end; here we
   check the cases decidable on the raw tree (direct Abs application).
2. Primitive applications obey the primitive's calling convention — checked
   against the primitive registry's signatures when one is supplied.
3. Continuations may not escape (not first-class): continuation-sorted
   variables and continuation abstractions may only appear in functional
   position or in argument positions that expect a continuation.
4. Unique binding: an identifier is bound by at most one parameter list in
   the whole tree.
5. Abstractions used as values take exactly two continuation parameters —
   exception continuation then normal continuation — as a suffix of the
   parameter list.  The abstraction handed to the ``Y`` fixpoint primitive is
   the sanctioned exception: its shape is ``λ(c0 v1..vn c) app``.

The checker is used pervasively in the test suite as a rewrite-soundness
oracle: section 3 promises the constraints "are never violated by any of the
TML rewrite rules", and we assert exactly that after every pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.names import Name
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.primitives.registry import PrimitiveRegistry

__all__ = ["Violation", "WellFormednessError", "check", "violations", "is_well_formed"]

Y_PRIM = "Y"


@dataclass(frozen=True, slots=True)
class Violation:
    """One well-formedness violation, tagged with the paper's constraint number."""

    constraint: int
    message: str
    subject: Term | Name | None = None

    def __str__(self) -> str:
        return f"[constraint {self.constraint}] {self.message}"


class WellFormednessError(ValueError):
    """Raised by :func:`check` when a tree violates the TML constraints."""

    def __init__(self, found: list[Violation]):
        self.violations = found
        lines = "\n  ".join(str(v) for v in found)
        super().__init__(f"TML tree is not well-formed:\n  {lines}")


def check(term: Term, registry: "PrimitiveRegistry | None" = None) -> None:
    """Raise :class:`WellFormednessError` unless ``term`` is well-formed."""
    found = violations(term, registry)
    if found:
        raise WellFormednessError(found)


def is_well_formed(term: Term, registry: "PrimitiveRegistry | None" = None) -> bool:
    """Boolean form of :func:`check`."""
    return not violations(term, registry)


def violations(
    term: Term, registry: "PrimitiveRegistry | None" = None
) -> list[Violation]:
    """Collect all well-formedness violations in ``term``."""
    found: list[Violation] = []
    _check_unique_binding(term, found)
    _check_structure(term, registry, found)
    return found


# ---------------------------------------------------------------------------
# Constraint 4 — unique binding
# ---------------------------------------------------------------------------


def _check_unique_binding(term: Term, found: list[Violation]) -> None:
    seen: set[Name] = set()
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Abs):
            for param in node.params:
                if param in seen:
                    found.append(
                        Violation(4, f"identifier {param} bound more than once", param)
                    )
                seen.add(param)
            stack.append(node.body)
        elif isinstance(node, App):
            stack.append(node.fn)
            stack.extend(node.args)
        elif isinstance(node, PrimApp):
            stack.extend(node.args)


# ---------------------------------------------------------------------------
# Constraints 1, 2, 3, 5 — one context-aware walk
# ---------------------------------------------------------------------------

#: Context flags describing how the node is used by its parent.
_CTX_ROOT = "root"
_CTX_FN = "fn"  # functional position of an App
_CTX_VALUE_ARG = "value-arg"  # argument position expecting a value
_CTX_CONT_ARG = "cont-arg"  # argument position expecting a continuation
_CTX_Y_FN = "y-fn"  # the abstraction argument of the Y primitive
_CTX_BODY = "body"  # body of an abstraction


def _is_cont_value(node: Term) -> bool:
    """Continuation-sorted variable or continuation abstraction."""
    if isinstance(node, Var):
        return node.name.is_cont
    if isinstance(node, Abs):
        return node.is_cont_abs
    return False


def _check_structure(term, registry, found: list[Violation]) -> None:
    stack: list[tuple[Term, str]] = [(term, _CTX_ROOT)]
    while stack:
        node, ctx = stack.pop()

        if isinstance(node, Var):
            if node.name.is_cont and ctx == _CTX_VALUE_ARG:
                found.append(
                    Violation(
                        3,
                        f"continuation variable {node.name} escapes into a "
                        "value position",
                        node,
                    )
                )
        elif isinstance(node, Abs):
            _check_abs_shape(node, ctx, found)
            stack.append((node.body, _CTX_BODY))
        elif isinstance(node, App):
            if isinstance(node.fn, Abs) and node.fn.arity != len(node.args):
                found.append(
                    Violation(
                        1,
                        f"direct application of a {node.fn.arity}-ary abstraction "
                        f"to {len(node.args)} arguments",
                        node,
                    )
                )
            stack.append((node.fn, _CTX_FN))
            for arg in node.args:
                # For a user application the callee's signature is unknown at
                # the IR level (the typed front end guarantees it); we accept
                # continuation values in any argument position but still
                # require continuation *suffix* discipline below.
                ctx_arg = _CTX_CONT_ARG if _is_cont_value(arg) else _CTX_VALUE_ARG
                stack.append((arg, ctx_arg))
            _check_cont_suffix(node.args, found)
        elif isinstance(node, PrimApp):
            cont_positions = _prim_cont_positions(node, registry, found)
            for index, arg in enumerate(node.args):
                if cont_positions is None:
                    ctx_arg = _CTX_CONT_ARG if _is_cont_value(arg) else _CTX_VALUE_ARG
                elif index in cont_positions:
                    ctx_arg = _CTX_CONT_ARG
                    if not _is_cont_value(arg) and not isinstance(arg, Var):
                        found.append(
                            Violation(
                                2,
                                f"primitive {node.prim!r} expects a continuation "
                                f"at argument {index}",
                                node,
                            )
                        )
                else:
                    ctx_arg = _CTX_VALUE_ARG
                if node.prim == Y_PRIM and index == 0:
                    ctx_arg = _CTX_Y_FN
                stack.append((arg, ctx_arg))
        elif isinstance(node, Lit):
            pass
        else:  # pragma: no cover - defensive
            found.append(Violation(1, f"foreign object in tree: {node!r}", node))


def _check_abs_shape(node: Abs, ctx: str, found: list[Violation]) -> None:
    """Constraint 5 (proc shape) and constraint 3 (no cont params stored)."""
    cont_params = node.cont_params
    if not cont_params:
        return  # a continuation abstraction; any value parameters are fine

    if ctx == _CTX_Y_FN:
        # λ(c0 v1..vn c): leading and trailing continuation params.
        if not (node.params[0].is_cont and node.params[-1].is_cont):
            found.append(
                Violation(
                    5,
                    "Y fixpoint function must have shape λ(c0 v1..vn c)",
                    node,
                )
            )
        # The middle parameters v1..vn name the recursive bindings; the Y
        # combinator binds "procedures and/or continuations" (section 2.3) —
        # a while-loop binds a nullary continuation, for example — so any
        # sort is legal there.
        return

    # Constraint 5 restricts abstractions *used as values* ("not as
    # continuations and not in functional position of applications"): those
    # must take exactly two continuation parameters, exception then normal,
    # as the parameter-list suffix.  A λ in functional position of a direct
    # application may bind any mix (e.g. binding a handler continuation).
    if len(cont_params) != 2 and ctx not in (_CTX_FN, _CTX_BODY, _CTX_ROOT):
        found.append(
            Violation(
                5,
                f"procedure abstraction takes {len(cont_params)} continuation "
                "parameters; exactly 2 (exception, normal) are required",
                node,
            )
        )
    if ctx not in (_CTX_FN, _CTX_BODY, _CTX_ROOT) and any(
        p.is_cont for p in node.params[: len(node.params) - len(cont_params)]
    ):
        found.append(
            Violation(
                5,
                "continuation parameters must form the suffix of a procedure's "
                "parameter list",
                node,
            )
        )


def _check_cont_suffix(args: Iterable[Term], found: list[Violation]) -> None:
    """Continuation arguments of a user application must be a suffix.

    This is the tree-level shadow of constraint 1: the typed front end
    arranges calls as ``(f v1..vn ce cc)``.  A value argument following a
    continuation argument indicates a mangled call.
    """
    seen_cont = False
    for arg in args:
        if _is_cont_value(arg):
            seen_cont = True
        elif seen_cont and not isinstance(arg, Var):
            # Abs values after a continuation are definitely mangled; plain
            # value vars after a cont var cannot occur for sorted names, and
            # literals cannot be continuations.
            found.append(
                Violation(
                    1,
                    "value argument follows a continuation argument in an "
                    "application",
                    arg,
                )
            )
        elif seen_cont and isinstance(arg, Lit):
            found.append(
                Violation(
                    1,
                    "literal argument follows a continuation argument in an "
                    "application",
                    arg,
                )
            )


def _prim_cont_positions(node: PrimApp, registry, found: list[Violation]):
    """Return the set of continuation argument indices for this primitive call.

    ``None`` when no registry is supplied (positions unknown).  Also emits
    constraint-2 arity violations.
    """
    if registry is None:
        return None
    try:
        prim = registry.lookup(node.prim)
    except KeyError:
        found.append(Violation(2, f"unknown primitive {node.prim!r}", node))
        return None
    sig = prim.signature
    if not sig.accepts_arity(len(node.args)):
        found.append(
            Violation(
                2,
                f"primitive {node.prim!r} called with {len(node.args)} arguments; "
                f"signature is {sig.describe()}",
                node,
            )
        )
        return None
    return sig.cont_positions(len(node.args))
