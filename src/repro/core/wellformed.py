"""Well-formedness checking for TML trees (paper section 2.2, constraints 1-5).

The paper's constraints:

1. The functional position of an application evaluates to an abstraction of
   matching arity — statically enforced by the (typed) front end; here we
   check the cases decidable on the raw tree (direct Abs application).
2. Primitive applications obey the primitive's calling convention — checked
   against the primitive registry's signatures when one is supplied.
3. Continuations may not escape (not first-class): continuation-sorted
   variables and continuation abstractions may only appear in functional
   position or in argument positions that expect a continuation.
4. Unique binding: an identifier is bound by at most one parameter list in
   the whole tree.
5. Abstractions used as values take exactly two continuation parameters —
   exception continuation then normal continuation — as a suffix of the
   parameter list.  The abstraction handed to the ``Y`` fixpoint primitive is
   the sanctioned exception: its shape is ``λ(c0 v1..vn c) app``.

The checker is used pervasively in the test suite as a rewrite-soundness
oracle: section 3 promises the constraints "are never violated by any of the
TML rewrite rules", and we assert exactly that after every pass.

The constraint walkers themselves live in :mod:`repro.analysis.linearity`,
which reports path-carrying :class:`~repro.analysis.diagnostics.Diagnostic`
records; this module maps them back to the historical :class:`Violation`
records (keyed by the paper's constraint number) so existing callers keep
their raising/boolean API while both views see exactly the same findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.names import Name
from repro.core.syntax import Term

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.diagnostics import Diagnostic
    from repro.primitives.registry import PrimitiveRegistry

__all__ = ["Violation", "WellFormednessError", "check", "violations", "is_well_formed"]

Y_PRIM = "Y"


@dataclass(frozen=True, slots=True)
class Violation:
    """One well-formedness violation, tagged with the paper's constraint number."""

    constraint: int
    message: str
    subject: Term | Name | None = None

    def __str__(self) -> str:
        return f"[constraint {self.constraint}] {self.message}"


class WellFormednessError(ValueError):
    """Raised by :func:`check` when a tree violates the TML constraints."""

    def __init__(self, found: list[Violation]):
        self.violations = found
        lines = "\n  ".join(str(v) for v in found)
        super().__init__(f"TML tree is not well-formed:\n  {lines}")


def check(term: Term, registry: "PrimitiveRegistry | None" = None) -> None:
    """Raise :class:`WellFormednessError` unless ``term`` is well-formed."""
    found = violations(term, registry)
    if found:
        raise WellFormednessError(found)


def is_well_formed(term: Term, registry: "PrimitiveRegistry | None" = None) -> bool:
    """Boolean form of :func:`check`."""
    return not violations(term, registry)


def violations(
    term: Term, registry: "PrimitiveRegistry | None" = None
) -> list[Violation]:
    """Collect all well-formedness violations in ``term``."""
    return [_to_violation(d) for d in diagnostics(term, registry)]


def diagnostics(
    term: Term, registry: "PrimitiveRegistry | None" = None
) -> "list[Diagnostic]":
    """The same findings as :func:`violations`, as rich diagnostics.

    Each record carries a stable code (``TML001``..), the term path, a fix
    hint and ``data["constraint"]``; see ``repro.analysis.diagnostics``.
    """
    # Imported lazily: repro.analysis pulls in the machine layer for the
    # bytecode verifier, which repro.core must not depend on at import time.
    from repro.analysis.linearity import analyze

    return analyze(term, registry)


def _to_violation(diagnostic: "Diagnostic") -> Violation:
    return Violation(
        constraint=diagnostic.data.get("constraint", 0),
        message=diagnostic.message,
        subject=diagnostic.subject,
    )
