"""Occurrence counting — the |E|_v function of paper section 3.

Control and data dependencies in CPS are captured uniformly by bound
variables, so most rewrite preconditions are phrased as occurrence counts:
``subst`` requires ``|app|_v = 1`` for abstractions, ``remove`` requires
``|app|_v = 0``, ``Y-remove`` requires the recursive binding to be globally
unreferenced, and so on.

The paper defines |E|_v inductively::

    |v|_v               = 1
    |lit|_v             = 0
    |prim|_v            = 0
    |v'|_v              = 0                    (v' != v)
    |λ(v1..vn) app|_v   = |app|_v
    |(val0 val1..valn)|_v = Σ |vali|_v

Note the abstraction case does *not* stop at shadowing binders — it does not
need to, because the unique binding rule guarantees ``v`` is never rebound.

Besides the single-variable count we provide :func:`count_all`, a one-pass
census of every variable in a term, which the reduction pass uses to avoid
quadratic re-counting.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.names import Name
from repro.core.syntax import Term, Var, iter_subterms

__all__ = ["count", "count_all", "count_many", "OccurrenceCensus"]


def count(term: Term, name: Name) -> int:
    """Return |term|_name, the number of occurrences of ``name`` in ``term``."""
    total = 0
    for node in iter_subterms(term):
        if isinstance(node, Var) and node.name == name:
            total += 1
    return total


def count_many(term: Term, names: Iterable[Name]) -> dict[Name, int]:
    """Count several variables in one traversal."""
    wanted = set(names)
    counts: dict[Name, int] = {name: 0 for name in wanted}
    for node in iter_subterms(term):
        if isinstance(node, Var) and node.name in wanted:
            counts[node.name] += 1
    return counts


def count_all(term: Term) -> Counter[Name]:
    """Census of every variable occurrence in ``term``."""
    counts: Counter[Name] = Counter()
    for node in iter_subterms(term):
        if isinstance(node, Var):
            counts[node.name] += 1
    return counts


class OccurrenceCensus:
    """An incrementally-maintained occurrence census.

    The reduction pass repeatedly asks "how often is v referenced *now*?"
    while it rewrites the tree.  Recounting from the root after each rewrite
    is O(n) per query; the census instead starts from :func:`count_all` and is
    patched by the driver as subtrees are removed or substituted in.
    """

    def __init__(self, term: Term) -> None:
        self._counts = count_all(term)

    def occurrences(self, name: Name) -> int:
        return self._counts.get(name, 0)

    def forget_subtree(self, term: Term) -> None:
        """Subtract every occurrence inside a subtree being deleted."""
        for node in iter_subterms(term):
            if isinstance(node, Var):
                self._counts[node.name] -= 1
                if self._counts[node.name] <= 0:
                    del self._counts[node.name]

    def add_subtree(self, term: Term) -> None:
        """Add every occurrence inside a subtree being inserted."""
        for node in iter_subterms(term):
            if isinstance(node, Var):
                self._counts[node.name] += 1

    def snapshot(self) -> Counter[Name]:
        return Counter(self._counts)

    def zero(self, name: Name) -> None:
        """Forget all occurrences of ``name`` (its binding was eliminated)."""
        self._counts.pop(name, None)

    def add(self, name: Name, amount: int) -> None:
        """Adjust the count of ``name`` by ``amount`` (may be negative)."""
        new_value = self._counts.get(name, 0) + amount
        if new_value <= 0:
            self._counts.pop(name, None)
        else:
            self._counts[name] = new_value
