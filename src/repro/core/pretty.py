"""Pretty-printer for TML terms in the paper's concrete notation.

Renders abstractions with the ``proc``/``cont`` sugar of section 2.2 (both
are λ-abstractions internally; the distinction is purely syntactic), literals
in the paper's style (``<oid 0x005b4780>``, ``'a'``), and applications as
parenthesized s-expressions with the operator on the first line and long
argument lists indented beneath — mirroring the TML pretty-printer listing in
section 4.1.

The output round-trips through :mod:`repro.core.parser` modulo alpha
conversion (exactly, when ``show_uids=True``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.names import Name
from repro.core.syntax import (
    Abs,
    App,
    Char,
    Lit,
    Oid,
    PrimApp,
    Term,
    Unit,
    Var,
)

__all__ = ["PrettyOptions", "pretty", "pretty_compact"]

#: Maximum rendered width before an application is split across lines.
_DEFAULT_WIDTH = 72


@dataclass(frozen=True, slots=True)
class PrettyOptions:
    """Rendering options.

    Attributes:
        show_uids: print names as ``base_uid`` (paper's alpha-converted
            style).  With ``False``, bases alone are printed — readable but
            only unambiguous if bases are unique.
        width: soft line-width limit before switching to multi-line layout.
        sugar: use ``proc``/``cont`` keywords instead of ``λ``.
        mark_conts: prefix continuation-sorted names with ``^`` where the
            proc/cont sugar does not already determine the sort (needed for
            lossless round-tripping of Y fixpoint functions).
    """

    show_uids: bool = True
    width: int = _DEFAULT_WIDTH
    sugar: bool = True
    mark_conts: bool = True


def pretty(term: Term, options: PrettyOptions | None = None) -> str:
    """Render ``term`` as indented concrete syntax."""
    import sys

    opts = options or PrettyOptions()
    # CPS chains are one application deep per source statement; give the
    # renderer room for large compiled programs.
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        return _render(term, opts, indent=0)
    finally:
        sys.setrecursionlimit(old_limit)


def pretty_compact(term: Term, show_uids: bool = True) -> str:
    """Render ``term`` on a single line (used in error messages and logs)."""
    opts = PrettyOptions(show_uids=show_uids, width=1 << 30)
    return _render(term, opts, indent=0)


# ---------------------------------------------------------------------------


def _name(name: Name, opts: PrettyOptions, sort_known: bool) -> str:
    text = f"{name.base}_{name.uid}" if opts.show_uids else name.base
    if opts.mark_conts and name.is_cont and not sort_known:
        return "^" + text
    return text


def _lit(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Char):
        return f"'{value.value}'"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, Oid):
        return str(value)
    if isinstance(value, Unit):
        return "unit"
    raise TypeError(f"unprintable literal {value!r}")  # pragma: no cover


def _abs_header(node: Abs, opts: PrettyOptions) -> str:
    if opts.sugar:
        if node.is_cont_abs:
            keyword = "cont"
            # cont sugar implies every parameter is value-sorted
            params = " ".join(_name(p, opts, sort_known=True) for p in node.params)
            return f"{keyword}({params})"
        cont_suffix = node.cont_params
        is_standard_proc = (
            len(cont_suffix) == 2
            and node.params[-2:] == cont_suffix
        )
        if is_standard_proc:
            # proc sugar implies the last two parameters are continuations
            params = " ".join(_name(p, opts, sort_known=True) for p in node.params)
            return f"proc({params})"
    params = " ".join(_name(p, opts, sort_known=False) for p in node.params)
    return f"λ({params})"


def _render(term: Term, opts: PrettyOptions, indent: int) -> str:
    compact = _render_compact(term, opts)
    if len(compact) + indent <= opts.width:
        return compact

    pad = " " * (indent + 2)
    if isinstance(term, Abs):
        header = _abs_header(term, opts)
        body = _render(term.body, opts, indent + 2)
        return f"{header}\n{pad}{body}"
    if isinstance(term, (App, PrimApp)):
        head = (
            term.prim
            if isinstance(term, PrimApp)
            else _render(term.fn, opts, indent + 1)
        )
        parts = [f"({head}"]
        for arg in term.args:
            parts.append(pad + _render(arg, opts, indent + 2))
        return "\n".join(parts) + ")"
    return compact  # Lit / Var never exceed the width on their own


def _render_compact(term: Term, opts: PrettyOptions) -> str:
    if isinstance(term, Lit):
        return _lit(term.value)
    if isinstance(term, Var):
        return _name(term.name, opts, sort_known=False)
    if isinstance(term, Abs):
        return f"{_abs_header(term, opts)} {_render_compact(term.body, opts)}"
    if isinstance(term, App):
        inner = " ".join(
            [_render_compact(term.fn, opts)]
            + [_render_compact(arg, opts) for arg in term.args]
        )
        return f"({inner})"
    if isinstance(term, PrimApp):
        inner = " ".join([term.prim] + [_render_compact(a, opts) for a in term.args])
        return f"({inner})"
    raise TypeError(f"not a TML term: {term!r}")  # pragma: no cover
