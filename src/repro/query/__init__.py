"""Integrated query processing on TML (paper section 4.2).

Relations and indexes in the persistent store, relational-algebra extension
primitives, embedded ``select``/``exists`` in TL, algebraic rewrite rules in
CPS notation, and the integrated program/query optimizer of Fig. 4.
"""

from repro.query.algebra import QUERY_PRIMITIVES, query_registry, register_query_primitives
from repro.query.index import HashIndex, OrderedIndex
from repro.query.optimizer import IntegratedResult, integrated_optimize
from repro.query.relation import QueryError, Relation
from repro.query.rules import QueryRewriteStats, QueryRewriter, is_effect_safe

__all__ = [
    "QUERY_PRIMITIVES",
    "query_registry",
    "register_query_primitives",
    "HashIndex",
    "OrderedIndex",
    "IntegratedResult",
    "integrated_optimize",
    "QueryError",
    "Relation",
    "QueryRewriteStats",
    "QueryRewriter",
    "is_effect_safe",
    "optimize_query_function",
]


def optimize_query_function(system, module: str, function: str, config=None):
    """Reflectively optimize a TL function *including* its embedded queries.

    The runtime counterpart of Fig. 4: the reflective optimizer collects the
    contributing declarations, and the integrated program/query optimizer
    rewrites the combined scope with access to the running store's bindings
    (e.g. indexes).  Returns a :class:`repro.reflect.ReflectResult`.
    """
    from repro.reflect.optimize import optimize_closure

    closure = system.closure(module, function)

    def pipeline(term, registry, cfg):
        return integrated_optimize(term, registry, heap=system.heap, config=cfg)

    return optimize_closure(
        closure,
        heap=system.heap,
        registry=system.registry,
        config=config,
        name=f"{module}.{function}'",
        pipeline=pipeline,
    )
