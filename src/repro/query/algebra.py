"""Relational-algebra primitives as TML primitive procedures (paper §4.2).

"CPS ... leaves much freedom in the choice of the particular primitive
procedures to be used for the representation of declarative queries."  This
module chooses classic algebra operators and registers them as *extension
primitives* — the adaptability mechanism of section 2.3: each comes with a
calling convention, optimizer attributes, an interpreter handler and a code
generation hook, without touching the core language.

Conventions (higher-order arguments are user-level procedures ``proc(x ce cc)``)::

    (select pred rel ce cc)        σ_pred(rel)        — new temp relation
    (project fn rel ce cc)         π_fn(rel)
    (join pred rel1 rel2 ce cc)    rel1 ⋈_pred rel2   — nested loops
    (exists pred rel ce cc)        ∃x∈rel: pred(x)    — short-circuiting
    (empty rel cc)                 rel = ∅ ?
    (count rel cc)                 |rel|
    (and a b cc) (or a b cc) (not a cc)    boolean connectives (foldable)
    (insert rel row ce cc)         side-effecting insert
    (indexscan rel field v ce cc)  index point lookup  — the access path
    (rangescan rel field lo hi ce cc)   ordered-index range lookup

Predicates raising (through their exception continuation) surface at the
operator's ``ce`` — exception control flow stays explicit end to end.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.syntax import Application, Lit, PrimApp
from repro.machine.runtime import ExtRaise, TmlVector, UncaughtTmlException
from repro.machine.vm import EXT_OPS
from repro.primitives._util import invoke
from repro.primitives.effects import EffectClass
from repro.primitives.registry import Attributes, Primitive, PrimitiveRegistry, Signature
from repro.query.relation import QueryError, Relation

__all__ = [
    "QUERY_PRIMITIVES",
    "register_query_primitives",
    "query_registry",
]

_temp_counter = [0]


def _temp_name(kind: str) -> str:
    _temp_counter[0] += 1
    return f"__{kind}_{_temp_counter[0]}"


def _need_relation(value: Any) -> Relation:
    if not isinstance(value, Relation):
        raise ExtRaise("queryTypeError: not a relation")
    return value


def _call_proc(machine, closure, args: list[Any]) -> Any:
    """Call back into the machine to run a higher-order query argument."""
    try:
        return machine.call(closure, args).value
    except UncaughtTmlException as exc:
        # the predicate invoked its exception continuation: propagate to the
        # operator's ce
        raise ExtRaise(exc.value) from None


def _need_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ExtRaise("queryTypeError: predicate did not return a boolean")
    return value


# ---------------------------------------------------------------------------
# operator implementations (machine-agnostic: `machine` has .call)
# ---------------------------------------------------------------------------


def _op_select(machine, args: list[Any]) -> Relation:
    pred, rel = args
    relation = _need_relation(rel)
    out = Relation(_temp_name("select"), relation.fields)
    for row in relation.scan():
        if _need_bool(_call_proc(machine, pred, [row])):
            out.insert(row)
    return out


def _op_project(machine, args: list[Any]) -> Relation:
    fn, rel = args
    relation = _need_relation(rel)
    results = [_call_proc(machine, fn, [row]) for row in relation.scan()]
    if results and all(
        isinstance(r, TmlVector) and len(r.slots) == len(results[0].slots)
        for r in results
        if isinstance(results[0], TmlVector)
    ) and isinstance(results[0], TmlVector):
        fields = tuple(f"c{i}" for i in range(len(results[0].slots)))
        rows = results
    else:
        fields = ("value",)
        rows = [TmlVector([r]) for r in results]
    out = Relation(_temp_name("project"), fields)
    for row in rows:
        out.insert(row)
    return out


def _op_join(machine, args: list[Any]) -> Relation:
    pred, left, right = args
    left_rel, right_rel = _need_relation(left), _need_relation(right)
    fields = list(left_rel.fields)
    for field in right_rel.fields:
        fields.append(f"r_{field}" if field in left_rel.fields else field)
    out = Relation(_temp_name("join"), fields)
    for lrow in left_rel.scan():
        for rrow in right_rel.scan():
            if _need_bool(_call_proc(machine, pred, [lrow, rrow])):
                out.insert(TmlVector(list(lrow.slots) + list(rrow.slots)))
    return out


def _op_exists(machine, args: list[Any]) -> bool:
    pred, rel = args
    relation = _need_relation(rel)
    for row in relation.scan():
        if _need_bool(_call_proc(machine, pred, [row])):
            return True
    return False


def _op_empty(machine, args: list[Any]) -> bool:
    return len(_need_relation(args[0])) == 0


def _op_count(machine, args: list[Any]) -> int:
    return len(_need_relation(args[0]))


def _op_and(machine, args: list[Any]) -> bool:
    return _need_bool(args[0]) and _need_bool(args[1])


def _op_or(machine, args: list[Any]) -> bool:
    return _need_bool(args[0]) or _need_bool(args[1])


def _op_not(machine, args: list[Any]) -> bool:
    return not _need_bool(args[0])


def _op_insert(machine, args: list[Any]) -> Any:
    from repro.core.syntax import UNIT

    rel, row = args
    relation = _need_relation(rel)
    if not isinstance(row, TmlVector):
        raise ExtRaise("queryTypeError: row must be a record")
    try:
        relation.insert(row)
    except QueryError as error:
        raise ExtRaise(f"queryError: {error}") from None
    return UNIT


def _op_indexscan(machine, args: list[Any]) -> Relation:
    rel, field, value = args
    relation = _need_relation(rel)
    if not isinstance(field, str):
        raise ExtRaise("queryTypeError: field name must be a string")
    try:
        rows = relation.index_lookup(field, value)
    except (QueryError, TypeError) as error:
        raise ExtRaise(f"queryError: {error}") from None
    out = Relation(_temp_name("iscan"), relation.fields)
    for row in rows:
        out.insert(row)
    return out


def _op_rangescan(machine, args: list[Any]) -> Relation:
    rel, field, low, high = args
    relation = _need_relation(rel)
    if not isinstance(field, str):
        raise ExtRaise("queryTypeError: field name must be a string")
    try:
        rows = relation.index_range(field, low, high)
    except (QueryError, TypeError) as error:
        raise ExtRaise(f"queryError: {error}") from None
    out = Relation(_temp_name("rscan"), relation.fields)
    for row in rows:
        out.insert(row)
    return out


# ---------------------------------------------------------------------------
# folds for the boolean connectives (meta-evaluation, section 2.3 item 2)
# ---------------------------------------------------------------------------


def _lit_bool(value) -> bool | None:
    if isinstance(value, Lit) and isinstance(value.value, bool):
        return value.value
    return None


def _fold_and(call: PrimApp) -> Application | None:
    a, b, cont = call.args
    left, right = _lit_bool(a), _lit_bool(b)
    if left is False or right is False:
        return invoke(cont, Lit(False))
    if left is True:
        return invoke(cont, b)
    if right is True:
        return invoke(cont, a)
    return None


def _fold_or(call: PrimApp) -> Application | None:
    a, b, cont = call.args
    left, right = _lit_bool(a), _lit_bool(b)
    if left is True or right is True:
        return invoke(cont, Lit(True))
    if left is False:
        return invoke(cont, b)
    if right is False:
        return invoke(cont, a)
    return None


def _fold_not(call: PrimApp) -> Application | None:
    a, cont = call.args
    value = _lit_bool(a)
    if value is not None:
        return invoke(cont, Lit(not value))
    return None


# ---------------------------------------------------------------------------
# registration: interpreter handlers, VM extcall handlers, codegen emitters
# ---------------------------------------------------------------------------


def _interp_handler(impl: Callable, n_args: int, has_exc: bool):
    """Adapt a direct-style operator to the interpreter's prim protocol."""

    def handler(machine, args):
        from repro.machine.runtime import Trap

        values = args[:n_args]
        if has_exc:
            ce, cc = args[n_args], args[n_args + 1]
            try:
                return cc, [impl(machine, list(values))]
            except ExtRaise as ext:
                return ce, [ext.value]
        cont = args[n_args]
        try:
            return cont, [impl(machine, list(values))]
        except ExtRaise as ext:
            # no exception continuation in the signature: route to the
            # dynamic handler stack like any runtime trap
            raise Trap(ext.value) from None

    return handler


def _vm_emitter(name: str, n_args: int, has_exc: bool):
    """Generate the ``extcall`` instruction for one operator."""

    def emit(c, app: PrimApp) -> None:
        values = app.args[:n_args]
        regs = tuple(c.value_reg(v) for v in values)
        dst, err = c.fresh_reg(), c.fresh_reg()
        if has_exc:
            ce, cc = app.args[n_args], app.args[n_args + 1]
            exc = c.block(ce, [err])
            c.emit("extcall", name, dst, regs, exc, err)
            c.continue_with(cc, [dst])
        else:
            cont = app.args[n_args]
            c.emit("extcall", name, dst, regs, None, err)
            c.continue_with(cont, [dst])

    return emit


def _make_primitive(
    name: str,
    impl: Callable,
    n_args: int,
    has_exc: bool,
    effect: EffectClass,
    cost: int,
    fold=None,
    commutative: bool = False,
    bulk: bool = False,
) -> Primitive:
    EXT_OPS[name] = impl
    return Primitive(
        name,
        Signature(value_args=n_args, cont_args=2 if has_exc else 1),
        Attributes(effect=effect, commutative=commutative, bulk=bulk),
        fold=fold,
        cost=cost,
        interp=_interp_handler(impl, n_args, has_exc),
        emit=_vm_emitter(name, n_args, has_exc),
    )


QUERY_PRIMITIVES = [
    _make_primitive("select", _op_select, 2, True, EffectClass.READ, 50, bulk=True),
    _make_primitive("project", _op_project, 2, True, EffectClass.READ, 50, bulk=True),
    _make_primitive("join", _op_join, 3, True, EffectClass.READ, 200, bulk=True),
    _make_primitive("exists", _op_exists, 2, True, EffectClass.READ, 30, bulk=True),
    _make_primitive("empty", _op_empty, 1, False, EffectClass.READ, 3),
    _make_primitive("count", _op_count, 1, False, EffectClass.READ, 3),
    _make_primitive(
        "and", _op_and, 2, False, EffectClass.PURE, 1, fold=_fold_and, commutative=True
    ),
    _make_primitive(
        "or", _op_or, 2, False, EffectClass.PURE, 1, fold=_fold_or, commutative=True
    ),
    _make_primitive("not", _op_not, 1, False, EffectClass.PURE, 1, fold=_fold_not),
    _make_primitive("insert", _op_insert, 2, True, EffectClass.WRITE, 10),
    _make_primitive("indexscan", _op_indexscan, 3, True, EffectClass.READ, 10),
    _make_primitive("rangescan", _op_rangescan, 4, True, EffectClass.READ, 12),
]


def register_query_primitives(registry: PrimitiveRegistry) -> PrimitiveRegistry:
    """Register the relational primitives into a registry (idempotent)."""
    for prim in QUERY_PRIMITIVES:
        if prim.name not in registry:
            registry.register(prim)
    return registry


_query_registry: PrimitiveRegistry | None = None


def query_registry() -> PrimitiveRegistry:
    """The default registry extended with the relational algebra (shared)."""
    global _query_registry
    if _query_registry is None:
        from repro.primitives.registry import default_registry

        _query_registry = register_query_primitives(default_registry().copy())
    return _query_registry
