"""Index structures for relations.

Two access paths:

* :class:`HashIndex` — point lookups, O(1);
* :class:`OrderedIndex` — point and range lookups over a sorted key list.

Whether a relation has an index on a field is a *runtime binding*: it is
precisely the information the paper says forces query optimization to be
delayed until runtime (section 4.2), and what experiment E9 varies.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

__all__ = ["HashIndex", "OrderedIndex", "index_key"]


def index_key(value: Any):
    """Normalize a runtime value into a hashable, comparable index key."""
    from repro.core.syntax import Char, Oid, Unit

    if isinstance(value, Char):
        return ("char", value.value)
    if isinstance(value, Oid):
        return ("oid", value.value)
    if isinstance(value, Unit):
        return ("unit",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, str):
        return ("str", value)
    raise TypeError(f"value {value!r} cannot be an index key")


class HashIndex:
    """Hash index: key -> rows (duplicates kept, bag semantics)."""

    def __init__(self) -> None:
        self._buckets: dict[Any, list] = {}
        self.lookups = 0

    def add(self, key: Any, row) -> None:
        self._buckets.setdefault(index_key(key), []).append(row)

    def lookup(self, key: Any) -> list:
        self.lookups += 1
        return list(self._buckets.get(index_key(key), ()))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._buckets.values())

    def keys(self) -> Iterable:
        return self._buckets.keys()


class OrderedIndex:
    """Sorted index supporting point and closed-range lookups.

    Keys must be mutually comparable (TL relations index ints, strings or
    chars — one type per field in practice).
    """

    def __init__(self) -> None:
        self._keys: list = []
        self._rows: list = []
        self.lookups = 0

    def add(self, key: Any, row) -> None:
        normalized = index_key(key)
        position = bisect.bisect_right(self._keys, normalized)
        self._keys.insert(position, normalized)
        self._rows.insert(position, row)

    def lookup(self, key: Any) -> list:
        self.lookups += 1
        normalized = index_key(key)
        left = bisect.bisect_left(self._keys, normalized)
        right = bisect.bisect_right(self._keys, normalized)
        return self._rows[left:right]

    def range(self, low: Any, high: Any) -> list:
        """All rows with low <= key <= high."""
        self.lookups += 1
        left = bisect.bisect_left(self._keys, index_key(low))
        right = bisect.bisect_right(self._keys, index_key(high))
        return self._rows[left:right]

    def __len__(self) -> int:
        return len(self._rows)
