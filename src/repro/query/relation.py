"""Relations: the bulk data objects of the persistent store.

A relation is a named collection of *record rows* (TML vectors, the same
representation TL record values use, so query predicates written in TL work
on rows unchanged).  Relations live in the object heap and are referenced
from TML terms as OID literals — "references (object identifiers, OIDs) to
complex objects in the persistent object store ... (tables, indices, ADT
values)" (section 2.2).

Indexes (hash for point lookups, ordered for ranges) hang off the relation
and are maintained on insert; whether an index exists is exactly the
*runtime binding* that makes delaying query optimization worthwhile
(section 4.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.machine.runtime import TmlVector
from repro.query.index import HashIndex, OrderedIndex
from repro.store.serialize import register_codec

__all__ = ["QueryError", "Relation"]


class QueryError(Exception):
    """Schema violation or invalid query-engine operation."""


class Relation:
    """A named, optionally indexed bag of record rows."""

    def __init__(self, name: str, fields: Iterable[str], rows: Iterable = ()):
        self.name = name
        self.fields: tuple[str, ...] = tuple(fields)
        if len(set(self.fields)) != len(self.fields):
            raise QueryError(f"duplicate field names in relation {name!r}")
        self._field_index = {field: i for i, field in enumerate(self.fields)}
        self.rows: list[TmlVector] = []
        self.indexes: dict[str, HashIndex | OrderedIndex] = {}
        #: number of full scans started (the E5 access-cost metric)
        self.scans = 0
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------- schema

    @property
    def arity(self) -> int:
        return len(self.fields)

    def field_position(self, field: str) -> int:
        try:
            return self._field_index[field]
        except KeyError:
            raise QueryError(
                f"relation {self.name!r} has no field {field!r}"
            ) from None

    def field_at(self, position: int) -> str | None:
        if 0 <= position < len(self.fields):
            return self.fields[position]
        return None

    # --------------------------------------------------------------- rows

    def insert(self, row) -> TmlVector:
        """Insert a row (a TmlVector or any sequence of field values)."""
        if isinstance(row, TmlVector):
            vector = row
        else:
            vector = TmlVector(row)
        if len(vector.slots) != self.arity:
            raise QueryError(
                f"row arity {len(vector.slots)} != relation arity {self.arity}"
            )
        self.rows.append(vector)
        for field, index in self.indexes.items():
            index.add(vector.slots[self.field_position(field)], vector)
        return vector

    def insert_many(self, rows: Iterable) -> None:
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TmlVector]:
        return iter(self.rows)

    def scan(self) -> Iterator[TmlVector]:
        """Full scan (counts as one pass for the E5 scan-count metric)."""
        self.scans += 1
        return iter(self.rows)

    # ------------------------------------------------------------- indexes

    def create_index(self, field: str, ordered: bool = False) -> None:
        """Build (or rebuild) an index on a field."""
        position = self.field_position(field)
        index: HashIndex | OrderedIndex = OrderedIndex() if ordered else HashIndex()
        for row in self.rows:
            index.add(row.slots[position], row)
        self.indexes[field] = index

    def has_index(self, field: str) -> bool:
        return field in self.indexes

    def index_lookup(self, field: str, value: Any) -> list[TmlVector]:
        index = self.indexes.get(field)
        if index is None:
            raise QueryError(f"no index on {self.name}.{field}")
        return index.lookup(value)

    def index_range(self, field: str, low: Any, high: Any) -> list[TmlVector]:
        index = self.indexes.get(field)
        if not isinstance(index, OrderedIndex):
            raise QueryError(f"no ordered index on {self.name}.{field}")
        return index.range(low, high)

    # ---------------------------------------------------------- conversion

    def project_fields(self, wanted: Iterable[str]) -> "Relation":
        """Schema-level projection helper (python-side, used by tools)."""
        wanted = tuple(wanted)
        positions = [self.field_position(f) for f in wanted]
        out = Relation(f"{self.name}_proj", wanted)
        for row in self.rows:
            out.insert(TmlVector([row.slots[p] for p in positions]))
        return out

    def to_tuples(self) -> list[tuple]:
        return [tuple(row.slots) for row in self.rows]

    def __repr__(self) -> str:
        return f"<relation {self.name}({', '.join(self.fields)}) rows={len(self.rows)}>"


# ---------------------------------------------------------------------------
# store codec
# ---------------------------------------------------------------------------


def _encode_relation(rel: Relation, enc) -> None:
    enc.value(rel.name)
    enc.value(tuple(rel.fields))
    enc.uvarint(len(rel.rows))
    for row in rel.rows:
        enc.value(row)
    enc.value(tuple((f, isinstance(ix, OrderedIndex)) for f, ix in rel.indexes.items()))


def _decode_relation(dec) -> Relation:
    name = dec.value()
    fields = dec.value()
    count = dec.uvarint()
    rel = Relation(name, fields)
    for _ in range(count):
        rel.insert(dec.value())
    for field, ordered in dec.value():
        rel.create_index(field, ordered=ordered)
    return rel


register_codec("relation", Relation, _encode_relation, _decode_relation)
