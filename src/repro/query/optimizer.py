"""Integrated program and query optimization (paper section 4.2, Fig. 4).

"Whenever the program optimizer encounters an embedded query construct ...
it invokes the query optimizer on the respective TML subtree ...  Similarly,
the query optimizer invokes the program optimizer to analyze and optimize
nested programming language expressions which appear in query constructs."

Because both optimizers work on the *same* representation, the interaction
is simply an alternation to a fixpoint: the program optimizer (reduction +
expansion) simplifies predicates and dissolves abstraction barriers, which
exposes algebraic patterns to the query rewriter (e.g. an inlined library
``int.eq`` call becomes the bare equality shape the index-select rule
matches); query rewrites in turn create new β-redexes for the program
optimizer.

With a heap attached, the runtime-binding rules (index access paths) fire —
the reason the paper delays query optimization until runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import Term, term_size
from repro.obs.trace import TRACER
from repro.primitives.registry import PrimitiveRegistry
from repro.query.algebra import query_registry
from repro.query.rules import QueryRewriter, QueryRewriteStats
from repro.rewrite.pipeline import OptimizerConfig, optimize
from repro.rewrite.stats import RewriteStats

__all__ = ["IntegratedResult", "integrated_optimize"]

_MAX_ROUNDS = 6


@dataclass
class IntegratedResult:
    """Outcome of the alternating program/query optimization."""

    term: Term
    program_stats: RewriteStats
    query_stats: QueryRewriteStats
    rounds: int

    @property
    def size(self) -> int:
        return term_size(self.term)

    @property
    def stats(self) -> RewriteStats:
        """Alias so this result is interchangeable with OptimizeResult."""
        return self.program_stats


def integrated_optimize(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    heap=None,
    config: OptimizerConfig | None = None,
    query_rules: frozenset[str] | None = None,
    check: bool = False,
) -> IntegratedResult:
    """Alternate the program optimizer and the query rewriter to a fixpoint.

    With ``check=True`` the program phases run in checked mode (see
    :func:`repro.rewrite.pipeline.optimize`) and the tree is re-verified for
    well-formedness after every query-rewriter round, so an unsound algebraic
    rule is caught before the next program phase can consume its output.
    """
    registry = registry or query_registry()
    config = config or OptimizerConfig()
    program_stats = RewriteStats()
    query_stats = QueryRewriteStats()
    rounds = 0

    for rounds in range(1, _MAX_ROUNDS + 1):
        with TRACER.span(
            "query.round", round=rounds, runtime=heap is not None
        ) as span:
            program_result = optimize(term, registry, config, check=check)
            program_stats.merge(program_result.stats)
            term = program_result.term

            rewriter = QueryRewriter(registry, heap=heap, enabled=query_rules)
            term = rewriter.rewrite(term)
            query_stats.counts.update(rewriter.stats.counts)
            span.set(
                program_rewrites=program_result.stats.total_rewrites,
                query_rewrites=rewriter.stats.total,
                query_rules={
                    name: rewriter.stats.counts[name]
                    for name in sorted(rewriter.stats.counts)
                    if rewriter.stats.counts[name]
                },
                size=term_size(term),
            )
        if check and rewriter.stats.total > 0:
            _check_query_round(term, registry, rewriter.stats)
        if rewriter.stats.total == 0:
            break

    program_stats.size_after = term_size(term)
    return IntegratedResult(
        term=term,
        program_stats=program_stats,
        query_stats=query_stats,
        rounds=rounds,
    )


def _check_query_round(term, registry, stats: QueryRewriteStats) -> None:
    """Raise RewriteCheckError if a query-rewriter round broke constraints 1-5."""
    from repro.analysis.checked import RewriteCheckError
    from repro.analysis.diagnostics import Diagnostic, Severity
    from repro.analysis.linearity import analyze

    errors = [d for d in analyze(term, registry) if d.is_error]
    if not errors:
        return
    rules = tuple(sorted(rule for rule, n in stats.counts.items() if n))
    detail = "; ".join(f"{d.code} {d.path}: {d.message}" for d in errors[:5])
    raise RewriteCheckError(
        [
            Diagnostic(
                code="TML040",
                severity=Severity.ERROR,
                message=f"query rewriter round (rules fired: "
                f"{', '.join(rules) or 'none'}) broke well-formedness: {detail}",
                subject=term,
                data={"rules": rules},
            )
        ],
        context="integrated_optimize",
        rules=rules,
    )
