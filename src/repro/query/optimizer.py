"""Integrated program and query optimization (paper section 4.2, Fig. 4).

"Whenever the program optimizer encounters an embedded query construct ...
it invokes the query optimizer on the respective TML subtree ...  Similarly,
the query optimizer invokes the program optimizer to analyze and optimize
nested programming language expressions which appear in query constructs."

Because both optimizers work on the *same* representation, the interaction
is simply an alternation to a fixpoint: the program optimizer (reduction +
expansion) simplifies predicates and dissolves abstraction barriers, which
exposes algebraic patterns to the query rewriter (e.g. an inlined library
``int.eq`` call becomes the bare equality shape the index-select rule
matches); query rewrites in turn create new β-redexes for the program
optimizer.

With a heap attached, the runtime-binding rules (index access paths) fire —
the reason the paper delays query optimization until runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import Term, term_size
from repro.primitives.registry import PrimitiveRegistry
from repro.query.algebra import query_registry
from repro.query.rules import QueryRewriter, QueryRewriteStats
from repro.rewrite.pipeline import OptimizerConfig, optimize
from repro.rewrite.stats import RewriteStats

__all__ = ["IntegratedResult", "integrated_optimize"]

_MAX_ROUNDS = 6


@dataclass
class IntegratedResult:
    """Outcome of the alternating program/query optimization."""

    term: Term
    program_stats: RewriteStats
    query_stats: QueryRewriteStats
    rounds: int

    @property
    def size(self) -> int:
        return term_size(self.term)

    @property
    def stats(self) -> RewriteStats:
        """Alias so this result is interchangeable with OptimizeResult."""
        return self.program_stats


def integrated_optimize(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    heap=None,
    config: OptimizerConfig | None = None,
    query_rules: frozenset[str] | None = None,
) -> IntegratedResult:
    """Alternate the program optimizer and the query rewriter to a fixpoint."""
    registry = registry or query_registry()
    config = config or OptimizerConfig()
    program_stats = RewriteStats()
    query_stats = QueryRewriteStats()
    rounds = 0

    for rounds in range(1, _MAX_ROUNDS + 1):
        program_result = optimize(term, registry, config)
        program_stats.merge(program_result.stats)
        term = program_result.term

        rewriter = QueryRewriter(registry, heap=heap, enabled=query_rules)
        term = rewriter.rewrite(term)
        query_stats.counts.update(rewriter.stats.counts)
        if rewriter.stats.total == 0:
            break

    program_stats.size_after = term_size(term)
    return IntegratedResult(
        term=term,
        program_stats=program_stats,
        query_stats=query_stats,
        rounds=rounds,
    )
