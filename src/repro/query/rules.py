"""Algebraic query rewrite rules on CPS terms (paper section 4.2).

The rules are expressed directly on TML — "for a given set of primitive
procedures, algebraic and implementation-oriented query optimization rules
can be expressed quite naturally in CPS":

* **merge-select** — the paper's worked example σp(σq(R)) ≡ σp∧q(R)::

      (select q R ce cont(tempRel)               (select proc(x ce' cc')
         (select p tempRel ce cc))        →           (q x ce' cont(b)
                                                        (== b true
                                                           cont()(p x ce' cc')
                                                           cont()(cc' false)))
                                                    R ce cc)

  One scan instead of two and no temporary relation; the merged predicate
  evaluates p only on q-passing rows, preserving σ semantics exactly.

* **merge-project** — π_f(π_g(R)) ≡ π_{f∘g}(R), same shape.

* **trivial-exists** — the paper's scoping-restricted rule: when the
  correlation variable does not occur in the predicate (``|p|_x = 0``) and
  the predicate is effect-safe, ``∃x∈R: p`` reduces to evaluating ``p`` once
  guarded by non-emptiness.  We generate the short-circuit form
  ``(empty R ...)`` first so the predicate runs at most once, which the
  paper's ``p ∧ ¬empty(R)`` form reduces to after boolean folding.

* **index-select** — access-path selection: a selection whose predicate is
  an equality on a field of a relation *that has an index at runtime*
  becomes an ``indexscan``.  This rule needs the object store (the relation
  behind the OID literal), which is exactly why the paper delays query
  optimization until runtime (section 4.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.names import Name, NameSupply, fresh_supply_above
from repro.core.occurrences import count as count_occurrences
from repro.core.syntax import (
    Abs,
    App,
    Application,
    Lit,
    Oid,
    PrimApp,
    Term,
    Value,
    Var,
    max_uid,
)
from repro.obs.trace import TRACER
from repro.primitives.effects import EffectClass
from repro.primitives.registry import PrimitiveRegistry
from repro.query.relation import Relation

__all__ = ["QueryRewriteStats", "QueryRewriter", "is_effect_safe"]

_SAFE_EFFECTS = {EffectClass.PURE, EffectClass.READ}


def is_effect_safe(term: Term, registry: PrimitiveRegistry) -> bool:
    """May this term be evaluated a different number of times than written?

    True when every primitive is PURE/READ and every call target is a
    continuation (unknown user procedures are conservatively unsafe) —
    the worst-case-assumption discipline of section 2.3.
    """
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, PrimApp):
            prim = registry.get(node.prim)
            if prim is None or prim.attrs.effect not in _SAFE_EFFECTS:
                return False
            stack.extend(node.args)
        elif isinstance(node, App):
            if isinstance(node.fn, Var) and not node.fn.name.is_cont:
                return False
            stack.append(node.fn)
            stack.extend(node.args)
        elif isinstance(node, Abs):
            stack.append(node.body)
    return True


@dataclass
class QueryRewriteStats:
    """Per-rule application counts for one query-rewrite run."""

    counts: Counter = field(default_factory=Counter)

    def fired(self, rule: str) -> None:
        self.counts[rule] += 1

    def count(self, rule: str) -> int:
        return self.counts.get(rule, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class QueryRewriter:
    """Applies the query rules bottom-up to a fixpoint.

    ``heap`` enables the runtime-binding rules (index-select); without it
    only the purely algebraic rules fire — the static/dynamic split of
    section 4.2.
    """

    def __init__(
        self,
        registry: PrimitiveRegistry,
        heap=None,
        supply: NameSupply | None = None,
        enabled: frozenset[str] | None = None,
    ):
        self.registry = registry
        self.heap = heap
        self.supply = supply
        self.enabled = enabled  # None = all
        self.stats = QueryRewriteStats()

    def allows(self, rule: str) -> bool:
        return self.enabled is None or rule in self.enabled

    def _fired(self, rule: str, relation=None, **attrs) -> None:
        """Count a rule application and, when tracing, explain the choice.

        The emitted ``query.rule`` event carries the cardinality/cost
        estimates behind the decision (e.g. scan-vs-index cost for
        index-select), so a trace answers *why* a plan was chosen.
        """
        self.stats.fired(rule)
        if TRACER.enabled:
            if relation is not None:
                attrs["relation"] = self._describe_rel(relation)
            TRACER.event("query.rule", rule=rule, **attrs)

    def _describe_rel(self, rel) -> str:
        """A compact label for the relation operand of a fired rule."""
        if isinstance(rel, Lit) and isinstance(rel.value, Oid):
            return f"oid:{int(rel.value)}"
        if isinstance(rel, Var):
            return str(rel.name)
        return type(rel).__name__

    def _cardinality(self, rel) -> int | None:
        """Runtime row count of a relation operand, when resolvable."""
        if self.heap is None:
            return None
        if not (isinstance(rel, Lit) and isinstance(rel.value, Oid)):
            return None
        try:
            relation = self.heap.load(rel.value)
        except Exception:
            return None
        return len(relation) if isinstance(relation, Relation) else None

    # ------------------------------------------------------------- driver

    def rewrite(self, term: Term) -> Term:
        if self.supply is None:
            self.supply = fresh_supply_above([max_uid(term)])
        for _ in range(64):  # fixpoint bound; each pass strictly simplifies
            new_term, changed = self._pass(term)
            term = new_term
            if not changed:
                break
        return term

    def _pass(self, term: Term) -> tuple[Term, bool]:
        EXPAND, BUILD = 0, 1
        work: list[tuple[Term, int]] = [(term, EXPAND)]
        results: list[Term] = []
        changed = False

        while work:
            node, phase = work.pop()
            if phase == EXPAND:
                if isinstance(node, (Lit, Var)):
                    results.append(node)
                elif isinstance(node, Abs):
                    work.append((node, BUILD))
                    work.append((node.body, EXPAND))
                elif isinstance(node, App):
                    work.append((node, BUILD))
                    for arg in reversed(node.args):
                        work.append((arg, EXPAND))
                    work.append((node.fn, EXPAND))
                else:
                    work.append((node, BUILD))
                    for arg in reversed(node.args):
                        work.append((arg, EXPAND))
            else:
                if isinstance(node, Abs):
                    body = results.pop()
                    results.append(node if body is node.body else Abs(node.params, body))
                elif isinstance(node, App):
                    count = 1 + len(node.args)
                    parts = results[-count:]
                    del results[-count:]
                    fn, args = parts[0], tuple(parts[1:])
                    rebuilt = (
                        node
                        if fn is node.fn and all(a is b for a, b in zip(args, node.args))
                        else App(fn, args)
                    )
                    results.append(rebuilt)
                else:
                    count = len(node.args)
                    args = tuple(results[-count:]) if count else ()
                    if count:
                        del results[-count:]
                    rebuilt = (
                        node
                        if all(a is b for a, b in zip(args, node.args))
                        else PrimApp(node.prim, args)
                    )
                    rewritten = self._rewrite_prim(rebuilt)
                    if rewritten is not rebuilt:
                        changed = True
                    results.append(rewritten)

        assert len(results) == 1
        return results[0], changed

    # -------------------------------------------------------------- rules

    def _rewrite_prim(self, node: PrimApp) -> Application:
        if node.prim == "select":
            out = self._merge_select(node)
            if out is not node:
                return out
            return self._index_select(node)
        if node.prim == "project":
            return self._merge_project(node)
        if node.prim == "exists":
            return self._trivial_exists(node)
        if node.prim == "join":
            return self._push_select_left(node)
        return node

    def _merge_select(self, node: PrimApp) -> Application:
        """σp(σq(R)) → σ(q∧p)(R) — the paper's merge-select."""
        if not self.allows("merge-select") or len(node.args) != 4:
            return node
        q, rel, ce, k = node.args
        if not isinstance(k, Abs) or len(k.params) != 1:
            return node
        temp = k.params[0]
        inner = k.body
        if not (isinstance(inner, PrimApp) and inner.prim == "select"):
            return node
        if len(inner.args) != 4:
            return node
        p, inner_rel, ce2, cc2 = inner.args
        if not (isinstance(inner_rel, Var) and inner_rel.name == temp):
            return node
        # the temporary relation must not be referenced anywhere else
        if count_occurrences(inner, temp) != 1:
            return node
        # both selections must share the exception continuation
        if not (
            isinstance(ce, Var) and isinstance(ce2, Var) and ce.name == ce2.name
        ):
            return node

        merged = self._conjoin(q, p)
        self._fired(
            "merge-select",
            relation=rel,
            scans_before=2,
            scans_after=1,
            materializes_temp=False,
        )
        return PrimApp("select", (merged, rel, ce2, cc2))

    def _conjoin(self, q: Value, p: Value) -> Abs:
        """proc(x ce cc): q(x) and then p(x), short-circuiting on false."""
        x = self.supply.fresh_val("x")
        ce = self.supply.fresh_cont("ce")
        cc = self.supply.fresh_cont("cc")
        b = self.supply.fresh_val("b")
        miss = Abs((), App(Var(cc), (Lit(False),)))
        hit = Abs((), App(p, (Var(x), Var(ce), Var(cc))))
        test = PrimApp("==", (Var(b), Lit(True), hit, miss))
        body = App(q, (Var(x), Var(ce), Abs((b,), test)))
        return Abs((x, ce, cc), body)

    def _merge_project(self, node: PrimApp) -> Application:
        """π_f(π_g(R)) → π_{f∘g}(R)."""
        if not self.allows("merge-project") or len(node.args) != 4:
            return node
        g, rel, ce, k = node.args
        if not isinstance(k, Abs) or len(k.params) != 1:
            return node
        temp = k.params[0]
        inner = k.body
        if not (isinstance(inner, PrimApp) and inner.prim == "project"):
            return node
        if len(inner.args) != 4:
            return node
        f, inner_rel, ce2, cc2 = inner.args
        if not (isinstance(inner_rel, Var) and inner_rel.name == temp):
            return node
        if count_occurrences(inner, temp) != 1:
            return node
        if not (
            isinstance(ce, Var) and isinstance(ce2, Var) and ce.name == ce2.name
        ):
            return node

        x = self.supply.fresh_val("x")
        ce_n = self.supply.fresh_cont("ce")
        cc_n = self.supply.fresh_cont("cc")
        t = self.supply.fresh_val("t")
        inner_call = App(f, (Var(t), Var(ce_n), Var(cc_n)))
        body = App(g, (Var(x), Var(ce_n), Abs((t,), inner_call)))
        composed = Abs((x, ce_n, cc_n), body)
        self._fired(
            "merge-project",
            relation=rel,
            scans_before=2,
            scans_after=1,
            materializes_temp=False,
        )
        return PrimApp("project", (composed, rel, ce2, cc2))

    def _trivial_exists(self, node: PrimApp) -> Application:
        """(|p|_x = 0): ∃x∈R: p  →  ¬empty(R) ∧ p (paper's trivial-exists)."""
        if not self.allows("trivial-exists") or len(node.args) != 4:
            return node
        pred, rel, ce, cc = node.args
        if not isinstance(pred, Abs) or len(pred.params) != 3:
            return node
        x = pred.params[0]
        if count_occurrences(pred.body, x) != 0:
            return node
        if not is_effect_safe(pred.body, self.registry):
            return node

        e = self.supply.fresh_val("e")
        on_empty = Abs((), self._apply_cont(cc, Lit(False)))
        on_nonempty = Abs((), App(pred, (Lit(0), ce, cc)))
        # cc may be an abstraction; it is placed twice, so λ-bind it first
        if isinstance(cc, Abs):
            j = self.supply.fresh_cont("j")
            test = PrimApp("==", (Var(e), Lit(True),
                                  Abs((), App(Var(j), (Lit(False),))),
                                  Abs((), App(pred, (Lit(0), ce, Var(j))))))
            body = PrimApp("empty", (rel, Abs((e,), test)))
            self._fired(
                "trivial-exists", relation=rel, predicate_evals_after=1
            )
            return App(Abs((j,), body), (cc,))
        test = PrimApp("==", (Var(e), Lit(True), on_empty, on_nonempty))
        self._fired("trivial-exists", relation=rel, predicate_evals_after=1)
        return PrimApp("empty", (rel, Abs((e,), test)))

    @staticmethod
    def _apply_cont(cc: Value, value: Value) -> Application:
        return App(cc, (value,))

    def _push_select_left(self, node: PrimApp) -> Application:
        """σp(R ⋈ S) → σp(R) ⋈ S when p touches only R's columns.

        CPS pattern::

            (join jp R S ce cont(t) (select p t ce cc))
              →
            (select p' R ce cont(t2) (join jp t2 S ce cc))

        Join rows are the left row's fields followed by the right row's, so
        a predicate whose every access of its row variable is a direct
        indexed load below ``arity(R)`` applies unchanged to bare R rows.
        ``arity(R)`` is a *runtime binding* (the relation behind the OID
        literal), which is why this, too, only fires in the runtime
        optimizer (section 4.2).
        """
        if not self.allows("push-select-join") or self.heap is None:
            return node
        if len(node.args) != 5:
            return node
        jp, left_rel, right_rel, ce, k = node.args
        if not isinstance(k, Abs) or len(k.params) != 1:
            return node
        temp = k.params[0]
        inner = k.body
        if not (isinstance(inner, PrimApp) and inner.prim == "select"):
            return node
        if len(inner.args) != 4:
            return node
        p, inner_rel, ce2, cc2 = inner.args
        if not (isinstance(inner_rel, Var) and inner_rel.name == temp):
            return node
        if count_occurrences(inner, temp) != 1:
            return node
        if not (
            isinstance(ce, Var) and isinstance(ce2, Var) and ce.name == ce2.name
        ):
            return node
        if not (isinstance(left_rel, Lit) and isinstance(left_rel.value, Oid)):
            return node
        try:
            relation = self.heap.load(left_rel.value)
        except Exception:
            return node
        if not isinstance(relation, Relation):
            return node
        if not isinstance(p, Abs) or len(p.params) != 3:
            return node
        if not _accesses_only_below(p, relation.arity):
            return node
        if not is_effect_safe(p.body, self.registry):
            return node

        temp2 = self.supply.fresh_val("tempRel")
        new_join = PrimApp("join", (jp, Var(temp2), right_rel, ce2, cc2))
        left_rows = len(relation)
        self._fired(
            "push-select-join",
            relation=left_rel,
            left_rows=left_rows,
            right=self._cardinality(right_rel),
            est_join_input_before=left_rows,
        )
        return PrimApp("select", (p, left_rel, ce, Abs((temp2,), new_join)))

    def _index_select(self, node: PrimApp) -> Application:
        """Equality selection on an indexed field → indexscan (runtime rule)."""
        if not self.allows("index-select") or self.heap is None:
            return node
        if len(node.args) != 4:
            return node
        pred, rel, ce, cc = node.args
        if not (isinstance(rel, Lit) and isinstance(rel.value, Oid)):
            return node
        match = _match_equality_pred(pred)
        if match is None:
            return node
        field_position, key_value = match
        try:
            relation = self.heap.load(rel.value)
        except Exception:
            return node
        if not isinstance(relation, Relation):
            return node
        field_name = relation.field_at(field_position)
        if field_name is None or not relation.has_index(field_name):
            return node
        rows = len(relation)
        self._fired(
            "index-select",
            relation=rel,
            field=field_name,
            rows=rows,
            est_scan_cost=rows,
            est_index_cost=1,
        )
        return PrimApp("indexscan", (rel, Lit(field_name), key_value, ce, cc))


def _accesses_only_below(pred: Abs, limit: int) -> bool:
    """Every use of the predicate's row variable is ``([] x i)`` with i < limit."""
    x = pred.params[0]
    stack: list = [pred.body]
    found_access = False
    while stack:
        node = stack.pop()
        if isinstance(node, PrimApp):
            if node.prim == "[]" and len(node.args) == 3:
                target, index, k = node.args
                if isinstance(target, Var) and target.name == x:
                    if not (
                        isinstance(index, Lit)
                        and isinstance(index.value, int)
                        and not isinstance(index.value, bool)
                        and 0 <= index.value < limit
                    ):
                        return False
                    found_access = True
                    stack.append(k)
                    stack.append(index)
                    continue
            for arg in node.args:
                if isinstance(arg, Var) and arg.name == x:
                    return False  # x escapes into an unknown position
                stack.append(arg)
        elif isinstance(node, App):
            for part in (node.fn,) + node.args:
                if isinstance(part, Var) and part.name == x:
                    return False
                stack.append(part)
        elif isinstance(node, Abs):
            stack.append(node.body)
    return True


def _match_equality_pred(pred: Value):
    """Match ``proc(x ce cc)(([] x IDX) == V ? true : false)``.

    Returns (field position, key value) or None.  ``V`` may be a literal or
    a variable bound outside the predicate.
    """
    if not isinstance(pred, Abs) or len(pred.params) != 3:
        return None
    x, ce, cc = pred.params
    body = pred.body
    if not (isinstance(body, PrimApp) and body.prim == "[]" and len(body.args) == 3):
        return None
    target, index, k = body.args
    if not (isinstance(target, Var) and target.name == x):
        return None
    if not (isinstance(index, Lit) and isinstance(index.value, int)):
        return None
    if not (isinstance(k, Abs) and len(k.params) == 1):
        return None
    t = k.params[0]
    cmp = k.body
    if not (isinstance(cmp, PrimApp) and cmp.prim == "==" and len(cmp.args) == 4):
        return None
    a, b, hit, miss = cmp.args
    if isinstance(a, Var) and a.name == t:
        key = b
    elif isinstance(b, Var) and b.name == t:
        key = a
    else:
        return None
    if isinstance(key, Var) and key.name in (x, t):
        return None
    if isinstance(key, Abs):
        return None
    if not _is_bool_return(hit, cc, True) or not _is_bool_return(miss, cc, False):
        return None
    return index.value, key


def _is_bool_return(branch: Value, cc: Name, expected: bool) -> bool:
    return (
        isinstance(branch, Abs)
        and not branch.params
        and isinstance(branch.body, App)
        and isinstance(branch.body.fn, Var)
        and branch.body.fn.name == cc
        and len(branch.body.args) == 1
        and branch.body.args[0] == Lit(expected)
    )
