"""Checked rewriting: re-verify invariants after every optimizer pass.

Section 3 promises that the rewrite rules preserve well-formedness, that
reduction strictly decreases term size (the termination argument), and that
fold only discards effect-free work (section 2.3).  ``optimize(...,
check=True)`` enforces all three *dynamically*:

* after every reduction pass that changed the tree: well-formedness
  (``TML040``), strict size decrease (``TML041``) and effect preservation
  (``TML042``), attributing the failure to the rules that fired in that pass;
* after every expansion pass: well-formedness and effect preservation
  (growth is the point of expansion, so no size check);
* around every *individual* fold: :func:`checked_registry` wraps each
  primitive's meta-evaluation function so a fold that fires on a
  non-discardable primitive (``TML043``) or fails to shrink the call
  (``TML044``) is caught at the exact application, naming the rule and the
  primitive.

Failures raise :class:`RewriteCheckError` carrying diagnostics with the
offending rule name and before/after pretty-printed terms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import AnalysisError, Diagnostic, Severity
from repro.analysis.effects import effect_le, infer_effect
from repro.analysis.linearity import analyze as linearity_analyze
from repro.core.pretty import pretty_compact
from repro.core.syntax import Term, term_size
from repro.primitives.effects import is_discardable
from repro.primitives.registry import Primitive, PrimitiveRegistry

if TYPE_CHECKING:  # pragma: no cover
    from collections import Counter

__all__ = ["RewriteCheckError", "PassChecker", "checked_registry"]

#: Cap on embedded pretty-printed terms inside diagnostics.
_PRETTY_LIMIT = 1500


class RewriteCheckError(AnalysisError):
    """A rewrite violated a section 2.2/2.3/3 invariant.

    ``rule`` names the offending rule when a single rule is implicated
    (e.g. ``"fold"``); ``rules`` lists every rule that fired in the
    offending pass otherwise.
    """

    def __init__(
        self,
        diagnostics: list[Diagnostic],
        context: str = "",
        rule: str | None = None,
        rules: tuple[str, ...] = (),
    ):
        super().__init__(diagnostics, context)
        self.rule = rule
        self.rules = rules or ((rule,) if rule else ())


def _clip(term: Term) -> str:
    text = pretty_compact(term)
    if len(text) > _PRETTY_LIMIT:
        text = text[:_PRETTY_LIMIT] + f"... [{len(text) - _PRETTY_LIMIT} more chars]"
    return text


class PassChecker:
    """Per-pass invariant checks for the optimizer's checked mode."""

    def __init__(self, registry: PrimitiveRegistry, context: str = "optimize"):
        self.registry = registry
        self.context = context

    # hook signature expected by reduce_to_fixpoint(on_pass=...)
    def reduction_pass_hook(self, before: Term, after: Term, fired: "Counter") -> None:
        rules = tuple(sorted(fired))
        label = ", ".join(f"{rule}x{fired[rule]}" for rule in rules) or "none"
        self._check(
            before,
            after,
            rules=rules,
            stage=f"reduction pass (rules fired: {label})",
            require_shrink=True,
        )

    def expansion_check(self, before: Term, after: Term) -> None:
        self._check(
            before,
            after,
            rules=("expand",),
            stage="expansion pass",
            require_shrink=False,
        )

    def _check(
        self,
        before: Term,
        after: Term,
        rules: tuple[str, ...],
        stage: str,
        require_shrink: bool,
    ) -> None:
        found: list[Diagnostic] = []
        data = {"rules": rules, "before": _clip(before), "after": _clip(after)}

        wf_errors = [d for d in linearity_analyze(after, self.registry) if d.is_error]
        if wf_errors:
            detail = "; ".join(f"{d.code} {d.path}: {d.message}" for d in wf_errors[:5])
            found.append(
                Diagnostic(
                    code="TML040",
                    severity=Severity.ERROR,
                    message=f"{stage} broke well-formedness: {detail}",
                    subject=after,
                    hint="one of the rules that fired in this pass rewrote "
                    "the tree into an ill-formed shape",
                    data=data,
                )
            )

        if require_shrink:
            size_before, size_after = term_size(before), term_size(after)
            if size_after >= size_before:
                found.append(
                    Diagnostic(
                        code="TML041",
                        severity=Severity.ERROR,
                        message=f"{stage} changed the tree but did not shrink "
                        f"it: {size_before} -> {size_after} nodes; the "
                        "termination argument of section 3 is void",
                        subject=after,
                        data=data,
                    )
                )

        effect_before = infer_effect(before, self.registry)
        effect_after = infer_effect(after, self.registry)
        if not effect_le(effect_after, effect_before):
            found.append(
                Diagnostic(
                    code="TML042",
                    severity=Severity.ERROR,
                    message=f"{stage} increased the inferred effect class: "
                    f"{effect_before.value} -> {effect_after.value}",
                    subject=after,
                    data={
                        **data,
                        "effect_before": effect_before.value,
                        "effect_after": effect_after.value,
                    },
                )
            )

        if found:
            raise RewriteCheckError(found, context=self.context, rules=rules)


# ---------------------------------------------------------------------------
# per-fold guard
# ---------------------------------------------------------------------------


def checked_registry(registry: PrimitiveRegistry) -> PrimitiveRegistry:
    """A registry whose fold functions verify their own preconditions.

    Every successful fold must (a) be on a discardable primitive — replacing
    the call with its meta-evaluated result discards the call's effect — and
    (b) strictly shrink the application (section 3's termination measure).
    """
    clone = PrimitiveRegistry()
    for prim in registry:
        if prim.fold is None:
            clone.register(prim)
            continue
        clone.register(
            Primitive(
                name=prim.name,
                signature=prim.signature,
                attrs=prim.attrs,
                fold=_guarded_fold(prim),
                cost=prim.cost,
                interp=prim.interp,
                emit=prim.emit,
            )
        )
    return clone


def _guarded_fold(prim: Primitive):
    original = prim.fold

    def guarded(call):
        result = original(call)
        if result is None:
            return None
        if not is_discardable(prim.attrs.effect):
            raise RewriteCheckError(
                [
                    Diagnostic(
                        code="TML043",
                        severity=Severity.ERROR,
                        message=f"rule 'fold' discarded a call of primitive "
                        f"{prim.name!r} with non-discardable effect class "
                        f"{prim.attrs.effect.value!r}",
                        subject=call,
                        hint="only PURE/READ/ALLOC primitives may be "
                        "meta-evaluated away (section 2.3)",
                        data={
                            "rule": "fold",
                            "prim": prim.name,
                            "before": _clip(call),
                            "after": _clip(result),
                        },
                    )
                ],
                context=f"fold {prim.name}",
                rule="fold",
            )
        if term_size(result) >= term_size(call):
            raise RewriteCheckError(
                [
                    Diagnostic(
                        code="TML044",
                        severity=Severity.ERROR,
                        message=f"rule 'fold' on primitive {prim.name!r} did "
                        f"not shrink the call: {term_size(call)} -> "
                        f"{term_size(result)} nodes",
                        subject=call,
                        hint="a meta-evaluation function must return a "
                        "strictly smaller replacement or None",
                        data={
                            "rule": "fold",
                            "prim": prim.name,
                            "before": _clip(call),
                            "after": _clip(result),
                        },
                    )
                ],
                context=f"fold {prim.name}",
                rule="fold",
            )
        return result

    return guarded
