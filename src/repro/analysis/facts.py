"""The image-resident analysis-fact cache, keyed by PTML content hash.

The mirror image of the server's compiled-code cache
(:mod:`repro.server.codecache`): where that cache maps ``sha256(PTML)`` to
ready-to-run code, this one maps the same key to *analysis facts* — the
interprocedural :class:`~repro.analysis.absint.Summary` plus a verification
bit — persisted under heap root ``analysis:facts``.  PTML identity makes
the keying sound: two functions with byte-identical PTML have identical
summaries, whatever session computed them.

Staleness is interprocedural: a summary for ``A`` computed when ``A`` calls
``B`` calls ``C`` depends on all three bodies, so each record carries the
PTML hashes of every *transitive* callee at computation time.  A record is
valid only while its own hash and every dependency hash still name the
current stored code — redefining ``C`` invalidates ``A``'s fact even though
``A``'s own PTML is unchanged.

Invalidation mirrors the code cache's: when background PGO or ``run``
redefines a function, the daemon drops the old hash's record; the next
audit (or PGO round) recomputes facts only for the invalidated slice of the
graph.  Records serialize as plain dicts, so no codec registration is
needed and older readers skip unknown fields.
"""

from __future__ import annotations

import threading

from repro.analysis.absint import Summary
from repro.obs.metrics import METRICS

__all__ = ["FactRecord", "FactStore", "FACTS_ROOT", "FACTS_SCHEMA"]

FACTS_ROOT = "analysis:facts"
FACTS_SCHEMA = "repro.analysis.facts/v1"

_HITS = METRICS.counter("analysis.facts.hits", "analysis-fact cache hits")
_MISSES = METRICS.counter("analysis.facts.misses", "analysis-fact cache misses")
_STALE = METRICS.counter(
    "analysis.facts.stale", "records rejected because a dependency hash moved"
)
_INVALIDATIONS = METRICS.counter(
    "analysis.facts.invalidations", "records dropped after redefinition"
)
_ENTRIES = METRICS.gauge("analysis.facts.entries", "live analysis-fact records")


class FactRecord:
    """One persisted analysis fact for one PTML hash."""

    __slots__ = ("key", "name", "summary", "verified", "deps")

    def __init__(
        self,
        key: str,
        name: str,
        summary: Summary,
        verified: bool = False,
        deps: tuple = (),
    ):
        self.key = key
        self.name = name
        self.summary = summary
        self.verified = verified
        #: ((qualified callee, its PTML hash), ...) over *transitive* callees
        self.deps = tuple(deps)

    def valid_for(self, current: dict[str, str | None]) -> bool:
        """True while every dependency still names the current stored code.

        ``current`` maps qualified names to their present PTML hashes; a
        dependency whose function vanished or whose hash moved makes the
        record stale.
        """
        for qualified, dep_hash in self.deps:
            if current.get(qualified) != dep_hash:
                return False
        return True

    def as_dict(self) -> dict:
        return {
            "schema": FACTS_SCHEMA,
            "key": self.key,
            "name": self.name,
            "summary": self.summary.as_dict(),
            "verified": self.verified,
            "deps": tuple((qualified, dep_hash) for qualified, dep_hash in self.deps),
        }

    @staticmethod
    def from_dict(data: dict) -> "FactRecord | None":
        if not isinstance(data, dict) or data.get("schema") != FACTS_SCHEMA:
            return None
        try:
            return FactRecord(
                key=str(data["key"]),
                name=str(data.get("name", "?")),
                summary=Summary.from_dict(data["summary"]),
                verified=bool(data.get("verified", False)),
                deps=tuple(
                    (str(qualified), str(dep_hash) if dep_hash is not None else None)
                    for qualified, dep_hash in data.get("deps", ())
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def __repr__(self) -> str:
        return f"<fact {self.name} {self.key[:12]} deps={len(self.deps)}>"


class FactStore:
    """Shared analysis-fact cache over one persistent image."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, FactRecord] = {}
        self._dirty = False

    # ------------------------------------------------------------- lookup

    def lookup(self, key: str, current: dict[str, str | None] | None = None
               ) -> FactRecord | None:
        """Fetch a record; with ``current`` hashes, reject stale ones."""
        with self._lock:
            record = self._records.get(key)
        if record is None:
            _MISSES.inc()
            return None
        if current is not None and not record.valid_for(current):
            _STALE.inc()
            _MISSES.inc()
            return None
        _HITS.inc()
        return record

    def install(self, record: FactRecord) -> None:
        with self._lock:
            self._records[record.key] = record
            self._dirty = True
            _ENTRIES.set(len(self._records))

    def invalidate(self, key: str) -> bool:
        """Drop a record (its function was redefined); True when present."""
        with self._lock:
            dropped = self._records.pop(key, None) is not None
            if dropped:
                self._dirty = True
            _ENTRIES.set(len(self._records))
        if dropped:
            _INVALIDATIONS.inc()
        return dropped

    def prune(self, current: dict[str, str | None]) -> list[str]:
        """Drop every record made stale by the given current hashes.

        Returns the names of the pruned records (for TAM112 reporting).
        """
        pruned: list[str] = []
        live_keys = set(current.values())
        with self._lock:
            for key in list(self._records):
                record = self._records[key]
                if key not in live_keys or not record.valid_for(current):
                    pruned.append(record.name)
                    del self._records[key]
            if pruned:
                self._dirty = True
            _ENTRIES.set(len(self._records))
        return pruned

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def stats(self) -> dict:
        return {
            "entries": len(self._records),
            "hits": _HITS.value,
            "misses": _MISSES.value,
            "stale": _STALE.value,
            "invalidations": _INVALIDATIONS.value,
        }

    # -------------------------------------------------------- image resident

    def attach(self, heap) -> int:
        """Load persisted records from the image (warm start)."""
        oid = heap.root(FACTS_ROOT)
        if oid is None:
            return 0
        try:
            stored = heap.load(oid)
        except Exception:
            return 0
        if not isinstance(stored, dict):
            return 0
        loaded = 0
        with self._lock:
            for key, data in stored.items():
                record = FactRecord.from_dict(data)
                if isinstance(key, str) and record is not None:
                    self._records.setdefault(key, record)
                    loaded += 1
            self._dirty = False
            _ENTRIES.set(len(self._records))
        return loaded

    def flush(self, heap) -> None:
        """Persist all records under ``analysis:facts``.

        Must run inside a write transaction when used through the daemon —
        it marks the heap dirty; the surrounding commit publishes it.
        """
        with self._lock:
            if not self._dirty:
                return
            snapshot = {key: record.as_dict() for key, record in self._records.items()}
            self._dirty = False
        oid = heap.root(FACTS_ROOT)
        if oid is None:
            oid = heap.store(snapshot)
            heap.set_root(FACTS_ROOT, oid)
        else:
            heap.update(oid, snapshot)
